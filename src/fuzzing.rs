//! Fuzzing entry points for the toolkit's untrusted-input surfaces.
//!
//! Each `check_*` function takes arbitrary bytes and drives one front-door
//! parser under [`Limits::strict`]: tight caps on declared lengths,
//! allocations, record counts, and decode bytes, plus a wall-clock
//! deadline. The contract under fuzzing is:
//!
//! * **Errors are fine.** Malformed input must produce a typed error.
//! * **Panics are bugs.** No input may panic, overflow, or OOM.
//!
//! The same functions back both the `cargo fuzz` targets under `fuzz/`
//! (libFuzzer, nightly, coverage-guided — for deep local sessions) and the
//! deterministic `fuzz-smoke` binary (stable Rust, fixed seed — run in CI
//! on every push). Keeping the harness in the library means the smoke
//! runner and the coverage-guided fuzzer can never drift apart.

use paragraph_core::{AnalysisConfig, LiveWell, WindowSize};
use paragraph_trace::binary::TraceReader;
use paragraph_trace::govern::{Limits, ResourceGovernor};
use paragraph_trace::ingest;

/// A strict governor for one fuzz iteration.
fn governor() -> ResourceGovernor {
    ResourceGovernor::new(Limits::strict())
}

/// Feeds `data` to the v2/v1 trace decoder (strict mode: damage is an
/// error, not recoverable) and drains every record it will yield.
pub fn check_v2_decoder(data: &[u8]) {
    let Ok(reader) = TraceReader::new(data) else {
        return;
    };
    let mut reader = reader.with_governor(governor());
    let mut block = Vec::new();
    loop {
        match reader.read_block(&mut block) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Feeds `data` to the recovery-mode reader, which resynchronizes past
/// damage — the mode with the most state to confuse.
pub fn check_resync_reader(data: &[u8]) {
    let Ok(reader) = TraceReader::with_recovery(data) else {
        return;
    };
    let mut reader = reader.with_governor(governor());
    let mut block = Vec::new();
    loop {
        match reader.read_block(&mut block) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let _ = reader.recovery_stats();
}

/// Feeds `data` to the checkpoint loader under two configurations: the
/// plain dataflow limit, and a full-featured one so the predictor and
/// issue-ledger decode paths are reachable.
pub fn check_checkpoint_loader(data: &[u8]) {
    use paragraph_core::branch::{BranchPolicy, PredictorKind};
    let mut g = governor();
    let _ = LiveWell::resume_from_governed(data, AnalysisConfig::dataflow_limit(), &mut g);
    let full = AnalysisConfig::dataflow_limit()
        .with_window(WindowSize::bounded(64))
        .with_issue_limit(4)
        .with_branch_policy(BranchPolicy::Predict(PredictorKind::Gshare {
            index_bits: 8,
        }))
        .with_value_stats(true);
    let mut g = governor();
    let _ = LiveWell::resume_from_governed(data, full, &mut g);
}

/// Feeds `data` to the external-text-trace ingest parser, writing the
/// converted trace into a sink.
pub fn check_ingest_parser(data: &[u8]) {
    let mut g = governor();
    let _ = ingest::ingest_text(data, std::io::sink(), &mut g);
}

/// Feeds `data` (when it is UTF-8) to the assembler under strict limits.
pub fn check_asm_parser(data: &[u8]) {
    let Ok(source) = std::str::from_utf8(data) else {
        return;
    };
    let _ = paragraph_asm::assemble_with_limits(
        source,
        paragraph_asm::DEFAULT_DATA_BASE,
        &paragraph_asm::AsmLimits::strict(),
    );
}

/// Differentially checks the SWAR varint kernel against the scalar one on
/// arbitrary bytes, starting a decode at every offset of `data`. The two
/// kernels must agree exactly: same value and same cursor advance on
/// success, same error kind on failure — including truncation at the
/// buffer tail (where SWAR must fall back to the scalar loop) and 10-byte
/// overflow encodings.
pub fn check_varint_swar(data: &[u8]) {
    use paragraph_trace::wire::{read_varint_slice, read_varint_swar};
    for start in 0..=data.len() {
        let mut swar_pos = start;
        let mut scalar_pos = start;
        let swar = read_varint_swar(data, &mut swar_pos);
        let scalar = read_varint_slice(data, &mut scalar_pos);
        match (swar, scalar) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "varint value diverged at offset {start}");
                assert_eq!(
                    swar_pos, scalar_pos,
                    "varint cursor diverged at offset {start}"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    a.kind(),
                    b.kind(),
                    "varint error kind diverged at offset {start}"
                );
            }
            (a, b) => panic!("varint outcome diverged at offset {start}: SWAR {a:?}, scalar {b:?}"),
        }
    }
}

/// Every fuzz target by name, for runners that iterate over all of them.
pub const TARGETS: &[(&str, fn(&[u8]))] = &[
    ("v2_decoder", check_v2_decoder),
    ("resync_reader", check_resync_reader),
    ("checkpoint_loader", check_checkpoint_loader),
    ("ingest_parser", check_ingest_parser),
    ("asm_parser", check_asm_parser),
    ("varint_swar", check_varint_swar),
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Every target must shrug off trivial adversarial inputs without
    /// panicking — the smoke runner exercises the real corpus.
    #[test]
    fn targets_survive_trivial_inputs() {
        let inputs: &[&[u8]] = &[
            b"",
            b"\x00",
            b"PGTR",
            b"PGTR\x02\x00\x00",
            b"PGCP\x02\xff\xff\xff\xff",
            b"!segments heap=9 stack=1\n",
            b".data\nx: .space 99999999999\n",
            &[0xff; 512],
        ];
        for (name, check) in TARGETS {
            for input in inputs {
                check(input);
                let _ = name;
            }
        }
    }
}

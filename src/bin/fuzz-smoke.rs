//! Deterministic structure-aware mutational smoke fuzzer (stable Rust).
//!
//! CI cannot run libFuzzer (nightly-only), but it can run this: a fixed
//! seed, a fixed iteration budget, built-in structure-aware seeds plus the
//! committed corpus under `fuzz/corpus/<target>/`, and the same `check_*`
//! entry points the real fuzz targets use (`paragraph::fuzzing`). Any
//! panic aborts the run with a nonzero exit and prints the seed and
//! iteration so the failure reproduces exactly.
//!
//! ```text
//! fuzz-smoke [--seed N] [--iters N] [--target NAME] [--corpus DIR]
//! ```
//!
//! Mutations are built on the trace crate's own fault-injection machinery:
//! `FaultPlan` (bit flips, garbage runs, chunk duplication, truncation)
//! over `frame_spans`-aware inputs, plus varint-boundary length
//! distortions — the mutations most likely to produce a *plausible but
//! hostile* declared length.

use paragraph::fuzzing;
use paragraph::trace::faultinject::{frame_spans, FaultPlan, SplitMix64};
use std::process::ExitCode;

const DEFAULT_SEED: u64 = 0x00C0_FFEE;
const DEFAULT_ITERS: u64 = 400;

fn usage() -> ! {
    eprintln!(
        "usage: fuzz-smoke [--seed N] [--iters N] [--target NAME] [--corpus DIR] [--write-seeds]"
    );
    eprintln!(
        "targets: {} (default: all)",
        fuzzing::TARGETS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

/// Parses a decimal or `0x`-prefixed hex number (the final banner prints
/// the seed in hex, so the reproduction command accepts it back).
fn parse_num(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Built-in seeds per target: one well-formed input each, so mutations
/// start from structure the parser actually accepts, plus a handful of
/// adversarial declared-length shapes.
fn builtin_seeds(target: &str) -> Vec<Vec<u8>> {
    use paragraph::trace::binary::TraceWriter;
    use paragraph::trace::{synthetic, SegmentMap};
    match target {
        "v2_decoder" | "resync_reader" => {
            let records = synthetic::random_trace(600, 17);
            let mut bytes = Vec::new();
            let mut writer = TraceWriter::with_chunk_records(
                &mut bytes,
                SegmentMap::all_data(),
                128,
            )
            .expect("in-memory writer");
            for record in &records {
                writer.write_record(record).expect("in-memory write");
            }
            writer.finish().expect("in-memory finish");
            vec![bytes]
        }
        "checkpoint_loader" => {
            use paragraph::core::{AnalysisConfig, LiveWell};
            let mut analyzer = LiveWell::new(AnalysisConfig::dataflow_limit());
            analyzer.process_all(&synthetic::random_trace(400, 23));
            let mut bytes = Vec::new();
            analyzer.save_checkpoint(&mut bytes).expect("in-memory save");
            vec![bytes]
        }
        "ingest_parser" => {
            let records = synthetic::random_trace(120, 29);
            let text = paragraph::trace::ingest::render_trace(&records, SegmentMap::all_data());
            vec![
                text.into_bytes(),
                b"# comment only\n".to_vec(),
                b"!segments heap=4096 stack=1048576\n0x40 int-alu r1 -> r2\n".to_vec(),
            ]
        }
        "asm_parser" => vec![
            b".data\nv: .word 1, 2, 3\nbuf: .space 16\n.text\nmain: li r8, 4\nloop: addi r8, r8, -1\nbne r8, r0, loop\nhalt\n"
                .to_vec(),
            b".text\nnop\nhalt\n".to_vec(),
        ],
        "varint_swar" => {
            // A run of canonical encodings across every length class, then
            // shapes the SWAR kernel must punt on: continuation runs into
            // the buffer tail and maximal/overflowing 10-byte encodings.
            let mut stream = Vec::new();
            for v in [
                0u64,
                1,
                127,
                128,
                300,
                (1 << 14) - 1,
                1 << 14,
                (1 << 21) - 1,
                (1 << 28) + 7,
                (1 << 35) + 12_345,
                (1 << 49) - 1,
                (1 << 56) - 1,
                1 << 56,
                u64::MAX,
            ] {
                paragraph::trace::wire::write_varint(&mut stream, v).expect("in-memory write");
            }
            vec![stream, vec![0x80; 12], vec![0xff; 16], vec![0xff, 0xff, 0x7f]]
        }
        _ => Vec::new(),
    }
}

/// Committed corpus entries, read in sorted order for determinism.
fn corpus_seeds(dir: &std::path::Path) -> Vec<Vec<u8>> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| std::fs::read(&p).ok())
        .collect()
}

/// One deterministic mutation of `seed_input`: structure-aware corruption
/// via `FaultPlan`, frame splicing, or a varint-boundary length distortion.
fn mutate(rng: &mut SplitMix64, seed_input: &[u8]) -> Vec<u8> {
    match rng.below(5) {
        // Bit flips + garbage runs at a rate scaled by the draw.
        0 => {
            let plan = FaultPlan::new(rng.next_u64())
                .bit_flip_rate(0.001 + rng.next_f64() * 0.05)
                .garbage_rate(rng.next_f64() * 0.01);
            plan.apply(seed_input).0
        }
        // Chunk duplication and truncation (mid-frame cuts included).
        1 => {
            let plan = FaultPlan::new(rng.next_u64())
                .chunk_dup_rate(rng.next_f64() * 0.5)
                .truncate_to(rng.next_f64());
            plan.apply(seed_input).0
        }
        // Frame splicing: drop or swap whole sync-marker frames.
        2 => {
            let spans = frame_spans(seed_input);
            if spans.len() < 2 {
                return seed_input.to_vec();
            }
            let drop = rng.below(spans.len() as u64) as usize;
            let mut out = Vec::with_capacity(seed_input.len());
            for (i, &(start, len)) in spans.iter().enumerate() {
                if i != drop {
                    out.extend_from_slice(&seed_input[start..start + len]);
                }
            }
            out
        }
        // Length distortion: overwrite a few bytes with maximal varint
        // continuation patterns, manufacturing huge declared lengths.
        3 => {
            let mut out = seed_input.to_vec();
            if out.is_empty() {
                return out;
            }
            for _ in 0..1 + rng.below(4) {
                let at = rng.below(out.len() as u64) as usize;
                let run = (1 + rng.below(9)) as usize;
                for i in 0..run.min(out.len() - at) {
                    out[at + i] = 0x80 | (rng.next_u64() as u8 & 0x7f);
                }
                if at + run < out.len() {
                    out[at + run] = rng.next_u64() as u8 & 0x7f;
                }
            }
            out
        }
        // Random tail: valid prefix, garbage suffix.
        _ => {
            let keep = rng.below(seed_input.len() as u64 + 1) as usize;
            let mut out = seed_input[..keep].to_vec();
            for _ in 0..rng.below(256) {
                out.push(rng.next_u64() as u8);
            }
            out
        }
    }
}

fn main() -> ExitCode {
    let mut seed = DEFAULT_SEED;
    let mut iters = DEFAULT_ITERS;
    let mut only: Option<String> = None;
    let mut corpus = std::path::PathBuf::from("fuzz/corpus");
    let mut write_seeds = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => seed = parse_num(&value()).unwrap_or_else(|| usage()),
            "--iters" => iters = parse_num(&value()).unwrap_or_else(|| usage()),
            "--target" => only = Some(value()),
            "--corpus" => corpus = value().into(),
            "--write-seeds" => write_seeds = true,
            _ => usage(),
        }
    }

    if write_seeds {
        // Regenerate the generated portion of the committed corpus. Files
        // are named `builtin-N` so hand-written adversarial entries beside
        // them are never overwritten.
        for (name, _) in fuzzing::TARGETS {
            let dir = corpus.join(name);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("fuzz-smoke: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (i, bytes) in builtin_seeds(name).iter().enumerate() {
                let path = dir.join(format!("builtin-{i}"));
                if let Err(e) = std::fs::write(&path, bytes) {
                    eprintln!("fuzz-smoke: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "fuzz-smoke: wrote {} ({} bytes)",
                    path.display(),
                    bytes.len()
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    let targets: Vec<_> = fuzzing::TARGETS
        .iter()
        .filter(|(name, _)| only.as_deref().is_none_or(|t| t == *name))
        .collect();
    if targets.is_empty() {
        eprintln!("fuzz-smoke: no such target `{}`", only.unwrap_or_default());
        usage();
    }

    let mut total = 0u64;
    for (name, check) in &targets {
        let mut seeds = builtin_seeds(name);
        seeds.extend(corpus_seeds(&corpus.join(name)));
        if seeds.is_empty() {
            eprintln!("fuzz-smoke: target {name} has no seeds");
            return ExitCode::FAILURE;
        }
        // Every seed runs unmutated first: the corpus is a regression suite.
        for (i, s) in seeds.iter().enumerate() {
            eprintln!("fuzz-smoke: {name} corpus[{i}] ({} bytes)", s.len());
            check(s);
            total += 1;
        }
        let mut rng = SplitMix64::new(seed ^ name.len() as u64);
        for i in 0..iters {
            let which = rng.below(seeds.len() as u64) as usize;
            let input = mutate(&mut rng, &seeds[which]);
            // The banner precedes the call so a panic names the exact
            // (target, seed, iteration) that reproduces it.
            if i.is_multiple_of(100) {
                eprintln!("fuzz-smoke: {name} iter {i}/{iters} (seed {seed:#x})");
            }
            check(&input);
            total += 1;
        }
    }
    println!(
        "fuzz-smoke: {} target(s), {total} iterations, 0 panics (seed {seed:#x})",
        targets.len()
    );
    ExitCode::SUCCESS
}

//! # Paragraph — dynamic dependency analysis of ordinary programs
//!
//! A reproduction of Austin & Sohi, *Dynamic Dependency Analysis of Ordinary
//! Programs* (ISCA 1992). This umbrella crate re-exports the whole toolkit:
//!
//! * [`isa`] — the MIPS-like instruction set (registers, operation classes,
//!   the Table 1 latency model).
//! * [`asm`] — a two-pass assembler for the toolkit's assembly language.
//! * [`vm`] — the interpreting virtual machine and tracer (the Pixie
//!   substitute).
//! * [`trace`] — dynamic trace records, sources/sinks, the binary trace
//!   format and trace statistics.
//! * [`core`] — **the paper's contribution**: the live-well streaming
//!   analyzer, analysis configuration (renaming switches, syscall policy,
//!   instruction window), parallelism profiles, and the explicit DDG with
//!   lifetime/sharing/scheduling analyses.
//! * [`workloads`] — the ten SPEC89 benchmark analogues used by the
//!   reproduction study.
//!
//! # Quickstart
//!
//! ```
//! use paragraph::core::{AnalysisConfig, LiveWell};
//! use paragraph::trace::{Loc, TraceRecord};
//! use paragraph::isa::OpClass;
//!
//! // Analyze a tiny hand-built trace at the dataflow limit.
//! let mut analyzer = LiveWell::new(AnalysisConfig::dataflow_limit());
//! analyzer.process(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(4)));
//! analyzer.process(&TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(4)], Loc::int(5)));
//! let report = analyzer.finish();
//! assert_eq!(report.critical_path_length(), 2);
//! assert_eq!(report.placed_ops(), 2);
//! ```
//!
//! See `examples/quickstart.rs` for the full pipeline: assemble a program,
//! run it on the VM, and analyze the captured trace under several machine
//! models.

pub mod fuzzing;

pub use paragraph_asm as asm;
pub use paragraph_core as core;
pub use paragraph_isa as isa;
pub use paragraph_trace as trace;
pub use paragraph_vm as vm;
pub use paragraph_workloads as workloads;

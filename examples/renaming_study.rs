//! A miniature Table 4: how much parallelism each renaming condition
//! exposes, for three workloads with very different storage behaviour.
//!
//! ```sh
//! cargo run --release --example renaming_study
//! ```

use paragraph::core::{analyze_refs, AnalysisConfig, RenameSet};
use paragraph::workloads::{Workload, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>12}",
        "workload", "none", "regs", "regs+stack", "reg/mem"
    );
    println!("{:-<64}", "");
    // matrix300: stack-resident arrays — the stack column is the story.
    // espresso: shared data-segment buffers — the memory column matters.
    // nasker: true recurrences — renaming-insensitive beyond registers.
    for (id, size) in [
        (WorkloadId::Matrix300, 16),
        (WorkloadId::Espresso, 24),
        (WorkloadId::Nasker, 64),
    ] {
        let workload = Workload::new(id).with_size(size);
        let (trace, segments) = workload.collect_trace(20_000_000)?;
        print!("{:<11}", id.name());
        for renames in RenameSet::table4_conditions() {
            let config = AnalysisConfig::dataflow_limit()
                .with_segments(segments)
                .with_renames(renames);
            let report = analyze_refs(&trace, &config);
            print!(" {:>12.2}", report.available_parallelism());
        }
        println!();
    }
    println!(
        "\nReading the rows: without renaming nothing is parallel; registers\n\
         recover most workloads; matrix300 needs its stack arrays renamed;\n\
         espresso needs full memory renaming; nasker's true recurrences can't\n\
         be renamed away at all."
    );
    Ok(())
}

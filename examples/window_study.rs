//! A miniature Figure 8: how the instruction window gates the parallelism
//! a sequential processor can expose, for one high-ILP and one low-ILP
//! workload.
//!
//! ```sh
//! cargo run --release --example window_study
//! ```

use paragraph::core::{analyze_refs, AnalysisConfig, WindowSize};
use paragraph::workloads::{Workload, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (id, size) in [(WorkloadId::Eqntott, 48), (WorkloadId::Xlisp, 16)] {
        let workload = Workload::new(id).with_size(size);
        let (trace, segments) = workload.collect_trace(20_000_000)?;
        let base = AnalysisConfig::dataflow_limit().with_segments(segments);
        let full = analyze_refs(&trace, &base);
        println!(
            "\n{id}: {} instructions, dataflow-limit parallelism {:.2}",
            trace.len(),
            full.available_parallelism()
        );
        println!(
            "{:>10} {:>14} {:>12} {:>9}",
            "window", "crit path", "par", "% max"
        );
        for exp in 0..=14u32 {
            let window = 1usize << exp;
            let report = analyze_refs(
                &trace,
                &base.clone().with_window(WindowSize::bounded(window)),
            );
            println!(
                "{window:>10} {:>14} {:>12.2} {:>8.2}%",
                report.critical_path_length(),
                report.available_parallelism(),
                100.0 * report.available_parallelism() / full.available_parallelism()
            );
        }
        println!(
            "{:>10} {:>14} {:>12.2} {:>8.2}%",
            "inf",
            full.critical_path_length(),
            full.available_parallelism(),
            100.0
        );
    }
    println!(
        "\nThe paper's conclusion holds: the interpreter-style workload saturates \
         with a window of a few dozen instructions, while the compare-heavy one \
         keeps gaining parallelism past tens of thousands."
    );
    Ok(())
}

//! Run one workload across the ladder of machine models — from a scalar
//! in-order pipeline to the abstract dataflow machine — and watch where its
//! parallelism goes.
//!
//! ```sh
//! cargo run --release --example machine_models
//! ```

use paragraph::core::machine::Machine;
use paragraph::core::{analyze_refs, AnalysisConfig};
use paragraph::workloads::{Workload, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::new(WorkloadId::Espresso).with_size(24);
    let (trace, segments) = workload.collect_trace(20_000_000)?;
    let dataflow = analyze_refs(
        &trace,
        &AnalysisConfig::dataflow_limit().with_segments(segments),
    );
    println!(
        "espresso analogue: {} instructions, dataflow limit {:.1} ops/cycle\n",
        trace.len(),
        dataflow.available_parallelism()
    );
    println!(
        "{:<9} {:>10} {:>14} {:>10}  configuration",
        "machine", "ops/cycle", "crit path", "% of limit"
    );
    println!("{:-<88}", "");
    for machine in Machine::generations() {
        let config = machine.configure().with_segments(segments);
        let report = analyze_refs(&trace, &config);
        println!(
            "{:<9} {:>10.2} {:>14} {:>9.2}%  {}",
            machine.name(),
            report.available_parallelism(),
            report.critical_path_length(),
            100.0 * report.available_parallelism() / dataflow.available_parallelism(),
            machine.description()
        );
    }
    println!(
        "\nEvery knob matters, but no practical machine approaches the dataflow\n\
         column — the paper's conclusion in one table."
    );
    Ok(())
}

//! Quickstart: assemble a program, execute and trace it on the VM, and
//! analyze its dynamic dependency graph under a few machine models.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use paragraph::asm::assemble;
use paragraph::core::{analyze_refs, AnalysisConfig, RenameSet, WindowSize};
use paragraph::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program: sum the squares of 1..=20 with a memory-resident
    // accumulator, then print the result.
    let program = assemble(
        "
        .data
    acc:    .word 0
        .text
    main:
        li   r8, 1              # i
        li   r9, 20             # n
        la   r10, acc
    loop:
        mul  r11, r8, r8        # i^2
        lw   r12, 0(r10)
        add  r12, r12, r11
        sw   r12, 0(r10)        # acc += i^2
        addi r8, r8, 1
        ble  r8, r9, loop
        lw   r4, 0(r10)
        li   r2, 1              # print_int
        syscall
        halt
    ",
    )?;

    // Execute, capturing one trace record per dynamic instruction — the
    // paper captured the same serial traces with Pixie on a DECstation.
    let mut vm = Vm::new(program);
    let (trace, outcome) = vm.run_collect(1_000_000)?;
    println!("program output : {}", vm.output().trim());
    println!("instructions   : {}", outcome.executed());

    // The dataflow limit: only true dependencies constrain execution.
    let segments = vm.segment_map();
    let dataflow = AnalysisConfig::dataflow_limit().with_segments(segments);
    let report = analyze_refs(&trace, &dataflow);
    println!("\n== dataflow limit (all renaming, infinite window) ==");
    print!("{report}");

    // No renaming: WAR/WAW storage reuse constrains the graph too.
    let report = analyze_refs(&trace, &dataflow.clone().with_renames(RenameSet::none()));
    println!("\n== no renaming ==");
    print!("{report}");

    // A small superscalar-style instruction window.
    let report = analyze_refs(
        &trace,
        &dataflow.clone().with_window(WindowSize::bounded(16)),
    );
    println!("\n== 16-instruction window ==");
    print!("{report}");

    Ok(())
}

//! Bring your own workload: write assembly, trace it, analyze it, and
//! inspect the explicit DDG — lifetimes, sharing, storage occupancy, a
//! resource-constrained schedule, and a DOT rendering.
//!
//! ```sh
//! cargo run --example custom_workload
//! ```

use paragraph::asm::assemble;
use paragraph::core::schedule::{schedule, ResourceModel};
use paragraph::core::{AnalysisConfig, Ddg, LatencyModel};
use paragraph::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A polynomial evaluation with a deliberately parallel shape: four
    // independent Horner chains combined at the end.
    let program = assemble(
        "
        .data
    coeffs: .float 1.5, -2.0, 0.75, 3.25, -1.0, 0.5, 2.0, -0.25
    x:      .float 1.0625
        .text
    main:
        la   r8, coeffs
        la   r9, x
        flw  f10, 0(r9)         # x
        # four chains, one per pair of coefficients
        flw  f1, 0(r8)
        flw  f2, 1(r8)
        fmul f1, f1, f10
        fadd f1, f1, f2
        flw  f3, 2(r8)
        flw  f4, 3(r8)
        fmul f3, f3, f10
        fadd f3, f3, f4
        flw  f5, 4(r8)
        flw  f6, 5(r8)
        fmul f5, f5, f10
        fadd f5, f5, f6
        flw  f7, 6(r8)
        flw  f8, 7(r8)
        fmul f7, f7, f10
        fadd f7, f7, f8
        # combine
        fadd f1, f1, f3
        fadd f5, f5, f7
        fadd f1, f1, f5
        li   r11, 1000
        cvtif f9, r11
        fmul f1, f1, f9
        cvtfi r4, f1
        li   r2, 1
        syscall
        halt
    ",
    )?;

    let mut vm = Vm::new(program);
    let (trace, _) = vm.run_collect(10_000)?;
    println!("program printed: {}", vm.output().trim());

    let config = AnalysisConfig::dataflow_limit().with_segments(vm.segment_map());
    let ddg = Ddg::from_records(&trace, &config);

    println!("\nexplicit DDG:");
    println!("  nodes              : {}", ddg.len());
    println!("  height (crit path) : {}", ddg.height());
    println!("  width              : {}", ddg.width());
    println!("  parallelism        : {:.2}", ddg.available_parallelism());
    let (true_e, storage_e, control_e) = ddg.edge_counts();
    println!("  edges              : {true_e} true, {storage_e} storage, {control_e} control");

    let lifetimes = ddg.value_lifetimes();
    println!(
        "  value lifetimes    : mean {:.1} levels, max {} (p90 {})",
        lifetimes.mean(),
        lifetimes.max().unwrap(),
        lifetimes.percentile(0.9).unwrap()
    );
    let sharing = ddg.sharing_degrees();
    println!(
        "  degree of sharing  : mean {:.2} consumers/value, max {}",
        sharing.mean(),
        sharing.max().unwrap()
    );
    println!("  storage occupancy  : {:?}", ddg.storage_occupancy());

    println!("\ncritical path (trace indices):");
    for id in ddg.critical_path() {
        let node = ddg.node(id);
        println!(
            "  level {:>3}  #{:<3} {}",
            node.level, node.trace_index, node.class
        );
    }

    for units in [1, 2, 4] {
        let result = schedule(&ddg, ResourceModel::units(units), &LatencyModel::paper());
        println!(
            "\nschedule on {units} unit(s): {} cycles, {:.2} ops/cycle, {:.0}% utilization",
            result.cycles(),
            result.ops_per_cycle(),
            100.0 * result.utilization()
        );
    }

    println!("\nDOT (pipe into `dot -Tsvg`):\n{}", ddg.to_dot());
    Ok(())
}

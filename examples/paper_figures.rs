//! Reproduces the paper's worked examples (Figures 1-5) exactly.
//!
//! The running example is the statement `S := A + B + C + D`, compiled two
//! ways: with a fresh register for every value (Figure 1) and with `r0`/`r1`
//! reused (Figure 2). The example prints each DDG's parallelism profile and
//! critical path, the live-well state of Figure 5, the control-dependency
//! effect of a system-call firewall (Figure 3's mechanism), and the
//! two-functional-unit schedule of Figure 4 — all checked against the
//! numbers printed in the paper.
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use paragraph::core::schedule::{schedule, ResourceModel};
use paragraph::core::{analyze, AnalysisConfig, Ddg, LatencyModel, LiveWell, RenameSet};
use paragraph::isa::OpClass;
use paragraph::trace::{synthetic, Loc, TraceRecord};

fn main() {
    let unit = AnalysisConfig::dataflow_limit().with_latency(LatencyModel::unit());

    // ---- Figure 1: true dependencies only --------------------------------
    let fig1 = synthetic::figure1();
    let report = analyze(fig1.clone(), &unit);
    println!("Figure 1 — S := A + B + C + D, fresh registers");
    println!("  critical path length : {}", report.critical_path_length());
    println!(
        "  parallelism profile  : {:?}",
        report.profile().exact_counts().unwrap()
    );
    assert_eq!(report.critical_path_length(), 4);
    assert_eq!(report.profile().exact_counts().unwrap(), vec![4, 2, 1, 1]);

    // ---- Figure 2: storage dependencies from register reuse --------------
    let fig2 = synthetic::figure2();
    let no_rename = unit.clone().with_renames(RenameSet::none());
    let report = analyze(fig2.clone(), &no_rename);
    println!("\nFigure 2 — same computation, r0/r1 reused, no renaming");
    println!("  critical path length : {}", report.critical_path_length());
    println!(
        "  parallelism profile  : {:?}",
        report.profile().exact_counts().unwrap()
    );
    assert_eq!(report.critical_path_length(), 6);

    // Renaming registers removes the storage dependencies again:
    let renamed = analyze(
        fig2.clone(),
        &unit.clone().with_renames(RenameSet::registers_only()),
    );
    println!(
        "  ... with register renaming the critical path returns to {}",
        renamed.critical_path_length()
    );
    assert_eq!(renamed.critical_path_length(), 4);

    // ---- Figure 5: the live well after processing the Figure 1 trace -----
    let mut well = LiveWell::new(unit.clone());
    for record in &fig1 {
        well.process(record);
    }
    println!("\nFigure 5 — live-well state after the Figure 1 trace");
    println!("  live values          : {}", well.live_well_size());
    println!("  deepest level used   : {}", well.deepest_level().unwrap());
    // 8 created values + the 4 preexisting DATA words A..D.
    assert_eq!(well.live_well_size(), 12);
    assert_eq!(well.deepest_level(), Some(3));

    // ---- Figure 3: control dependency via a firewall ----------------------
    // The paper's read r1 is a system call whose outcome gates the rest of
    // the program; under the conservative policy it firewalls the DDG.
    let gated = vec![
        TraceRecord::load(0, 0, None, Loc::int(10)), // load r0,A
        TraceRecord::compute(1, OpClass::IntDiv, &[Loc::int(10)], Loc::int(9)), // deep work
        TraceRecord::syscall(2, &[Loc::int(9)], Some(Loc::int(11))), // read r1
        TraceRecord::compute(
            3,
            OpClass::IntAlu,
            &[Loc::int(10), Loc::int(11)],
            Loc::int(12),
        ),
        TraceRecord::store(4, 4, Loc::int(12), None), // store r2,S
        TraceRecord::load(5, 2, None, Loc::int(13)),  // load r3,C
        TraceRecord::load(6, 3, None, Loc::int(14)),  // load r4,D
        TraceRecord::compute(
            7,
            OpClass::IntAlu,
            &[Loc::int(13), Loc::int(14)],
            Loc::int(15),
        ),
    ];
    let paper_latencies = AnalysisConfig::dataflow_limit();
    let report = analyze(gated.clone(), &paper_latencies);
    println!("\nFigure 3 — conservative system call gates C + D");
    println!("  critical path length : {}", report.critical_path_length());
    let optimistic = analyze(
        gated,
        &paper_latencies.with_syscall_policy(paragraph::core::SyscallPolicy::Optimistic),
    );
    println!(
        "  ... ignoring the call it shrinks to {}",
        optimistic.critical_path_length()
    );
    assert!(report.critical_path_length() > optimistic.critical_path_length());

    // ---- Figure 4: resource dependencies (two functional units) ----------
    let ddg = Ddg::from_records(&fig1, &unit);
    let two_units = schedule(&ddg, ResourceModel::units(2), &LatencyModel::unit());
    println!("\nFigure 4 — Figure 1 on a machine with two functional units");
    println!("  dataflow height      : {}", ddg.height());
    println!("  2-unit schedule      : {} steps", two_units.cycles());
    println!("  issue profile        : {:?}", two_units.issue_profile());
    assert_eq!(two_units.cycles(), 5);

    // The explicit graph can also be rendered for the paper's diagrams:
    println!("\nGraphviz DOT of the Figure 1 DDG:\n{}", ddg.to_dot());
}

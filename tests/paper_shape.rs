//! Integration tests asserting the *shape* of the paper's evaluation
//! results at reduced problem sizes: who wins, by roughly what factor, and
//! which renaming switch matters where. These are the claims EXPERIMENTS.md
//! records at full scale.

use paragraph::core::{analyze_refs, AnalysisConfig, RenameSet, SyscallPolicy, WindowSize};
use paragraph::trace::{SegmentMap, TraceRecord};
use paragraph::workloads::{Workload, WorkloadId};

fn capture(id: WorkloadId, size: u32) -> (Vec<TraceRecord>, SegmentMap) {
    Workload::new(id)
        .with_size(size)
        .collect_trace(30_000_000)
        .unwrap()
}

fn parallelism(records: &[TraceRecord], config: &AnalysisConfig) -> f64 {
    analyze_refs(records, config).available_parallelism()
}

fn dataflow(segments: SegmentMap) -> AnalysisConfig {
    AnalysisConfig::dataflow_limit().with_segments(segments)
}

#[test]
fn xlisp_is_the_least_parallel_benchmark() {
    // Table 3: xlisp's interpreter recurrence pins it at the bottom
    // (13.28 in the paper) while every array/compare workload is far above.
    let (xlisp, seg_x) = capture(WorkloadId::Xlisp, 8);
    let x_par = parallelism(&xlisp, &dataflow(seg_x));
    assert!(x_par < 20.0, "xlisp should be low, got {x_par}");
    for id in [
        WorkloadId::Eqntott,
        WorkloadId::Matrix300,
        WorkloadId::Fpppp,
    ] {
        let (trace, seg) = capture(id, 10);
        let par = parallelism(&trace, &dataflow(seg));
        assert!(
            par > 3.0 * x_par,
            "{id} ({par:.1}) should dwarf xlisp ({x_par:.1})"
        );
    }
}

#[test]
fn no_renaming_collapses_every_workload() {
    // Table 4, column 1: "Without register renaming, very little
    // parallelism is detected" — single digits for every benchmark.
    for id in [
        WorkloadId::Cc1,
        WorkloadId::Matrix300,
        WorkloadId::Eqntott,
        WorkloadId::Tomcatv,
    ] {
        let (trace, seg) = capture(id, 6);
        let none = parallelism(&trace, &dataflow(seg).with_renames(RenameSet::none()));
        assert!(
            none < 8.0,
            "{id} without renaming should be tiny, got {none}"
        );
        let full = parallelism(&trace, &dataflow(seg));
        assert!(
            full > 4.0 * none,
            "{id}: renaming should multiply parallelism ({none} -> {full})"
        );
    }
}

#[test]
fn register_renaming_alone_recovers_most_workloads() {
    // "In most cases, renaming registers is enough to expose a sizable
    // fraction of the parallelism in the trace."
    for id in [WorkloadId::Cc1, WorkloadId::Nasker, WorkloadId::Eqntott] {
        let (trace, seg) = capture(id, 6);
        let regs = parallelism(
            &trace,
            &dataflow(seg).with_renames(RenameSet::registers_only()),
        );
        let full = parallelism(&trace, &dataflow(seg));
        assert!(
            regs > 0.8 * full,
            "{id}: registers alone should land within 20% of the limit ({regs} vs {full})"
        );
    }
}

#[test]
fn matrix300_needs_stack_renaming() {
    // "The exception being matrix300 and tomcatv where many of the values
    // (vectors) used are not allocated to registers."
    let (trace, seg) = capture(WorkloadId::Matrix300, 16);
    let regs = parallelism(
        &trace,
        &dataflow(seg).with_renames(RenameSet::registers_only()),
    );
    let stack = parallelism(
        &trace,
        &dataflow(seg).with_renames(RenameSet::registers_and_stack()),
    );
    assert!(
        stack > 2.0 * regs,
        "stack renaming must unlock matrix300 ({regs:.1} -> {stack:.1})"
    );
}

#[test]
fn tomcatv_needs_stack_renaming() {
    let (trace, seg) = capture(WorkloadId::Tomcatv, 24);
    let regs = parallelism(
        &trace,
        &dataflow(seg).with_renames(RenameSet::registers_only()),
    );
    let stack = parallelism(
        &trace,
        &dataflow(seg).with_renames(RenameSet::registers_and_stack()),
    );
    assert!(
        stack > 2.0 * regs,
        "stack renaming must unlock tomcatv ({regs:.1} -> {stack:.1})"
    );
}

#[test]
fn espresso_and_fpppp_need_memory_renaming() {
    for (id, size) in [(WorkloadId::Espresso, 24), (WorkloadId::Fpppp, 12)] {
        let (trace, seg) = capture(id, size);
        let stack = parallelism(
            &trace,
            &dataflow(seg).with_renames(RenameSet::registers_and_stack()),
        );
        let full = parallelism(&trace, &dataflow(seg));
        assert!(
            full > 1.2 * stack,
            "{id}: memory renaming must add parallelism ({stack:.1} -> {full:.1})"
        );
    }
}

#[test]
fn nasker_is_renaming_insensitive_beyond_registers() {
    // Table 4: nasker 50.84 / 50.85 / 50.97 — true recurrences dominate.
    let (trace, seg) = capture(WorkloadId::Nasker, 48);
    let regs = parallelism(
        &trace,
        &dataflow(seg).with_renames(RenameSet::registers_only()),
    );
    let full = parallelism(&trace, &dataflow(seg));
    assert!(
        (full - regs).abs() / full < 0.05,
        "nasker should barely move past register renaming ({regs:.2} vs {full:.2})"
    );
}

#[test]
fn window_size_gates_exposed_parallelism() {
    // Figure 8: monotone growth; small windows expose only a few ops/cycle;
    // high-ILP workloads need huge windows.
    let (trace, seg) = capture(WorkloadId::Eqntott, 24);
    let base = dataflow(seg);
    let full = parallelism(&trace, &base);
    let mut last = 0.0;
    for exp in [0u32, 2, 4, 6, 8, 10, 12] {
        let par = parallelism(
            &trace,
            &base.clone().with_window(WindowSize::bounded(1 << exp)),
        );
        assert!(par >= last - 1e-9, "window growth must be monotone");
        last = par;
    }
    let w32 = parallelism(&trace, &base.clone().with_window(WindowSize::bounded(32)));
    assert!(
        w32 < 0.2 * full,
        "a 32-instruction window must expose only a sliver of eqntott ({w32:.1} of {full:.1})"
    );
    // xlisp, by contrast, saturates with a small window.
    let (xtrace, xseg) = capture(WorkloadId::Xlisp, 6);
    let xbase = dataflow(xseg);
    let xfull = parallelism(&xtrace, &xbase);
    let xw256 = parallelism(
        &xtrace,
        &xbase.clone().with_window(WindowSize::bounded(256)),
    );
    assert!(
        xw256 > 0.9 * xfull,
        "xlisp should saturate by window 256 ({xw256:.1} of {xfull:.1})"
    );
}

#[test]
fn issue_width_caps_and_releases() {
    // Resource dependencies (Figure 4, streaming): K units cap the rate at
    // K; enough units recover the dataflow limit.
    let (trace, seg) = capture(WorkloadId::Eqntott, 12);
    let full = parallelism(&trace, &dataflow(seg));
    let narrow = parallelism(&trace, &dataflow(seg).with_issue_limit(2));
    assert!(narrow <= 2.0 + 1e-9);
    let wide = parallelism(&trace, &dataflow(seg).with_issue_limit(1 << 14));
    assert!(wide > 0.9 * full);
}

#[test]
fn machine_ladder_is_sane_on_real_traces() {
    use paragraph::core::machine::Machine;
    let (trace, seg) = capture(WorkloadId::Cc1, 6);
    let scalar = analyze_refs(&trace, &Machine::scalar().configure().with_segments(seg));
    let dataflow_report = analyze_refs(&trace, &Machine::dataflow().configure().with_segments(seg));
    // The scalar pipeline sustains at most 1 op/cycle; the dataflow machine
    // is far above it.
    assert!(scalar.available_parallelism() <= 1.0 + 1e-9);
    assert!(dataflow_report.available_parallelism() > 10.0 * scalar.available_parallelism());
}

#[test]
fn misprediction_firewalls_bound_real_workloads() {
    use paragraph::core::branch::{BranchPolicy, PredictorKind};
    let (trace, seg) = capture(WorkloadId::Eqntott, 10);
    let perfect = parallelism(&trace, &dataflow(seg));
    let stall = parallelism(
        &trace,
        &dataflow(seg).with_branch_policy(BranchPolicy::StallAlways),
    );
    let predicted = parallelism(
        &trace,
        &dataflow(seg).with_branch_policy(BranchPolicy::Predict(PredictorKind::Gshare {
            index_bits: 12,
        })),
    );
    assert!(stall < predicted, "prediction must beat serial fetch");
    assert!(
        predicted < 0.5 * perfect,
        "even a good predictor must sit far below perfect control flow          ({predicted:.1} vs {perfect:.1})"
    );
}

#[test]
fn conservative_syscalls_do_not_hide_much_parallelism() {
    // Table 3's conclusion: the firewall assumption costs little for most
    // benchmarks because system calls are rare.
    for id in [WorkloadId::Cc1, WorkloadId::Eqntott, WorkloadId::Xlisp] {
        let (trace, seg) = capture(id, 6);
        let cons = parallelism(&trace, &dataflow(seg));
        let opt = parallelism(
            &trace,
            &dataflow(seg).with_syscall_policy(SyscallPolicy::Optimistic),
        );
        let error = (opt - cons).abs() / opt.max(1e-9);
        assert!(
            error < 0.35,
            "{id}: measurement error should be small, got {error:.2}"
        );
        assert!(opt + 1e-9 >= cons, "{id}: optimistic can only help");
    }
}

//! Differential testing against an independent oracle.
//!
//! `LiveWell` and `DdgBuilder` share design decisions, so agreeing with
//! each other does not rule out a shared misunderstanding of the paper.
//! This oracle is a third implementation written from the paper's prose in
//! the most naive possible way — per-record O(n) backward scans over the
//! raw trace, no live well, no incremental state beyond the firewall floor
//! — and the production analyzer must reproduce its placements exactly.

use paragraph::core::{analyze_refs, AnalysisConfig, LatencyModel, RenameSet, SyscallPolicy};
use paragraph::isa::OpClass;
use paragraph::trace::{Loc, SegmentMap, TraceRecord};
use proptest::prelude::*;

/// Completion level of every record (None when not placed), computed by
/// brute force.
fn oracle_levels(
    records: &[TraceRecord],
    renames: RenameSet,
    segments: &SegmentMap,
    latency: &LatencyModel,
    syscalls: SyscallPolicy,
) -> Vec<Option<i64>> {
    let mut levels: Vec<Option<i64>> = Vec::with_capacity(records.len());
    let mut floor = -1i64;

    // The completion level of the value held by `loc` just before record
    // `i`: the level of the last earlier record writing `loc`, or -1 if the
    // value is preexisting.
    let avail = |levels: &[Option<i64>], i: usize, loc: Loc| -> i64 {
        for j in (0..i).rev() {
            if records[j].dest() == Some(loc) {
                if let Some(level) = levels[j] {
                    return level;
                }
            }
        }
        -1
    };

    for (i, record) in records.iter().enumerate() {
        let class = record.class();
        let placed = class.creates_value()
            && !(class == OpClass::Syscall && syscalls == SyscallPolicy::Optimistic);
        if !placed {
            levels.push(None);
            continue;
        }

        let mut base = floor;
        for &src in record.srcs() {
            base = base.max(avail(&levels, i, src));
        }
        if let Some(dest) = record.dest() {
            if !renames.renames(dest, segments) {
                // Ddest: the deepest level at which the previous value in
                // `dest` was used — its creation (WAW) and every read of it
                // since the last write (WAR).
                let last_write = (0..i)
                    .rev()
                    .find(|&j| records[j].dest() == Some(dest) && levels[j].is_some());
                let scan_from = last_write.map_or(0, |j| j + 1);
                let mut ddest = last_write.and_then(|j| levels[j]).unwrap_or(-1);
                for j in scan_from..i {
                    if records[j].srcs().contains(&dest) {
                        if let Some(level) = levels[j] {
                            ddest = ddest.max(level);
                        }
                    }
                }
                base = base.max(ddest);
            }
        }
        let level = base + i64::from(latency.latency(class));
        levels.push(Some(level));

        if class == OpClass::Syscall && syscalls == SyscallPolicy::Conservative {
            // Firewall immediately after the deepest computation yet used.
            let deepest = levels.iter().flatten().copied().max().unwrap_or(-1);
            floor = floor.max(deepest);
        }
    }
    levels
}

fn arb_record(pc: u64) -> impl Strategy<Value = TraceRecord> {
    let reg = || (0u8..6).prop_map(Loc::int);
    let dest = || (1u8..6).prop_map(Loc::int);
    let addr = || 0u64..12;
    prop_oneof![
        (proptest::collection::vec(reg(), 0..=2), dest())
            .prop_map(move |(srcs, d)| TraceRecord::compute(pc, OpClass::IntAlu, &srcs, d)),
        (reg(), reg(), dest()).prop_map(move |(a, b, d)| TraceRecord::compute(
            pc,
            OpClass::IntDiv,
            &[a, b],
            d
        )),
        (addr(), reg(), dest()).prop_map(move |(a, b, d)| TraceRecord::load(pc, a, Some(b), d)),
        (addr(), reg(), reg()).prop_map(move |(a, v, b)| TraceRecord::store(pc, a, v, Some(b))),
        (reg(), reg()).prop_map(move |(a, b)| TraceRecord::branch(pc, &[a, b])),
        Just(TraceRecord::syscall(pc, &[Loc::int(2)], Some(Loc::int(2)))),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(any::<u8>(), 1..80).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_record(i as u64))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The production analyzer reproduces the oracle's critical path,
    /// placed-op count and per-level profile, across renaming conditions,
    /// latency models and syscall policies.
    #[test]
    fn livewell_matches_the_prose_oracle(
        trace in arb_trace(),
        renames in prop_oneof![
            Just(RenameSet::none()),
            Just(RenameSet::registers_only()),
            Just(RenameSet::registers_and_stack()),
            Just(RenameSet::all()),
        ],
        unit_latency in any::<bool>(),
        optimistic in any::<bool>(),
    ) {
        let segments = SegmentMap::new(4, 8);
        let latency = if unit_latency {
            LatencyModel::unit()
        } else {
            LatencyModel::paper()
        };
        let policy = if optimistic {
            SyscallPolicy::Optimistic
        } else {
            SyscallPolicy::Conservative
        };
        let oracle = oracle_levels(&trace, renames, &segments, &latency, policy);

        let config = AnalysisConfig::dataflow_limit()
            .with_segments(segments)
            .with_renames(renames)
            .with_latency(latency)
            .with_syscall_policy(policy);
        let report = analyze_refs(&trace, &config);

        // Same placed-op count.
        let oracle_placed = oracle.iter().flatten().count() as u64;
        prop_assert_eq!(report.placed_ops(), oracle_placed);

        // Same critical path.
        let oracle_cp = oracle
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| (m + 1) as u64);
        prop_assert_eq!(
            report.critical_path_length(),
            oracle_cp,
            "critical paths diverge (oracle levels: {:?})",
            oracle
        );

        // Same per-level histogram.
        let mut oracle_profile = vec![0u64; oracle_cp as usize];
        for level in oracle.iter().flatten() {
            oracle_profile[*level as usize] += 1;
        }
        prop_assert_eq!(
            report.profile().exact_counts().unwrap_or_default(),
            oracle_profile
        );
    }
}

/// A deterministic pinned case exercising every dependency type at once,
/// worked out by hand from the paper's rules.
#[test]
fn oracle_hand_worked_case() {
    let segments = SegmentMap::all_data();
    let trace = vec![
        TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)), // @0
        TraceRecord::compute(1, OpClass::IntDiv, &[Loc::int(1)], Loc::int(2)), // @12
        TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(1)), // WAR vs use@12 -> @13
        TraceRecord::syscall(3, &[Loc::int(2)], Some(Loc::int(2))), // @13, firewall@13
        TraceRecord::compute(4, OpClass::IntAlu, &[], Loc::int(3)), // floored -> @14
    ];
    let no_rename = RenameSet::none();
    let oracle = oracle_levels(
        &trace,
        no_rename,
        &segments,
        &LatencyModel::paper(),
        SyscallPolicy::Conservative,
    );
    assert_eq!(
        oracle,
        vec![Some(0), Some(12), Some(13), Some(13), Some(14)]
    );
    let config = AnalysisConfig::dataflow_limit().with_renames(no_rename);
    let report = analyze_refs(&trace, &config);
    assert_eq!(report.critical_path_length(), 15);
}

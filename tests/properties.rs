//! Property-based tests over randomly generated traces: invariants of the
//! placement algorithm, the renaming/window lattices, and the binary trace
//! format.

use paragraph::core::branch::{BranchPolicy, PredictorKind};
use paragraph::core::{
    analyze_refs, AnalysisConfig, Ddg, LatencyModel, MemoryModel, RenameSet, SyscallPolicy,
    WindowSize,
};
use paragraph::isa::OpClass;
use paragraph::trace::binary::{TraceReader, TraceWriter};
use paragraph::trace::{Loc, SegmentMap, TraceRecord};
use proptest::prelude::*;

/// Strategy: one arbitrary (valid) trace record at `pc`.
fn arb_record(pc: u64) -> impl Strategy<Value = TraceRecord> {
    // Sources may include the hardwired zero register (the record
    // constructor drops it); destinations must be real registers.
    let reg = || (0u8..12).prop_map(Loc::int);
    let dest = || (1u8..12).prop_map(Loc::int);
    let fpreg = || (0u8..8).prop_map(Loc::fp);
    let addr = || 0u64..48;
    prop_oneof![
        // Integer ALU with 0-2 register sources.
        (proptest::collection::vec(reg(), 0..=2), dest()).prop_map(move |(srcs, dest)| {
            TraceRecord::compute(pc, OpClass::IntAlu, &srcs, dest)
        }),
        // Long-latency integer ops.
        (reg(), reg(), dest())
            .prop_map(move |(a, b, d)| { TraceRecord::compute(pc, OpClass::IntMul, &[a, b], d) }),
        // Floating point.
        (fpreg(), fpreg(), fpreg())
            .prop_map(move |(a, b, d)| { TraceRecord::compute(pc, OpClass::FpDiv, &[a, b], d) }),
        // Loads and stores.
        (addr(), reg(), dest()).prop_map(move |(a, base, d)| TraceRecord::load(
            pc,
            a,
            Some(base),
            d
        )),
        (addr(), reg(), reg()).prop_map(move |(a, v, base)| TraceRecord::store(
            pc,
            a,
            v,
            Some(base)
        )),
        // Control, with and without recorded outcomes.
        (reg(), reg()).prop_map(move |(a, b)| TraceRecord::branch(pc, &[a, b])),
        (reg(), any::<bool>(), 0u64..64).prop_map(move |(a, taken, target)| {
            TraceRecord::branch_outcome(pc, &[a], taken, target)
        }),
        Just(TraceRecord::jump(pc, &[])),
        // Rare syscalls.
        Just(TraceRecord::syscall(pc, &[Loc::int(2)], Some(Loc::int(2)))),
    ]
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(any::<u8>(), 1..max_len).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_record(i as u64))
            .collect::<Vec<_>>()
    })
}

fn segments() -> SegmentMap {
    SegmentMap::new(16, 32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The critical path is bounded below by the longest single-op latency
    /// and above by the sum of all placed latencies.
    #[test]
    fn critical_path_bounds(trace in arb_trace(120)) {
        let config = AnalysisConfig::dataflow_limit().with_segments(segments());
        let report = analyze_refs(&trace, &config);
        let latency = LatencyModel::paper();
        let max_top: u64 = trace
            .iter()
            .filter(|r| r.creates_value())
            .map(|r| u64::from(latency.latency(r.class())))
            .max()
            .unwrap_or(0);
        let sum_top: u64 = trace
            .iter()
            .filter(|r| r.creates_value())
            .map(|r| u64::from(latency.latency(r.class())))
            .sum();
        prop_assert!(report.critical_path_length() >= max_top);
        prop_assert!(report.critical_path_length() <= sum_top);
    }

    /// Every value-creating record is placed exactly once; profiles conserve
    /// operations.
    #[test]
    fn op_conservation(trace in arb_trace(120)) {
        let config = AnalysisConfig::dataflow_limit().with_segments(segments());
        let report = analyze_refs(&trace, &config);
        let expected = trace.iter().filter(|r| r.creates_value()).count() as u64;
        prop_assert_eq!(report.placed_ops(), expected);
        prop_assert_eq!(report.profile().total_ops(), expected);
        prop_assert_eq!(report.total_records(), trace.len() as u64);
    }

    /// Renaming more storage classes never lengthens the critical path.
    #[test]
    fn renaming_is_monotone(trace in arb_trace(120)) {
        let base = AnalysisConfig::dataflow_limit().with_segments(segments());
        let conditions = RenameSet::table4_conditions();
        let mut last = u64::MAX;
        for renames in conditions {
            let cp = analyze_refs(&trace, &base.clone().with_renames(renames))
                .critical_path_length();
            prop_assert!(
                cp <= last,
                "renaming {} lengthened the critical path ({} > {})",
                renames, cp, last
            );
            last = cp;
        }
    }

    /// Growing the window never lengthens the critical path, and the
    /// infinite window is the limit.
    #[test]
    fn window_is_monotone(trace in arb_trace(120)) {
        let base = AnalysisConfig::dataflow_limit().with_segments(segments());
        let mut last = u64::MAX;
        for w in [1usize, 2, 4, 8, 16, 64, 256] {
            let cp = analyze_refs(&trace, &base.clone().with_window(WindowSize::bounded(w)))
                .critical_path_length();
            prop_assert!(cp <= last);
            last = cp;
        }
        let unbounded = analyze_refs(&trace, &base).critical_path_length();
        prop_assert!(unbounded <= last);
    }

    /// A window of W instructions bounds every level at W operations.
    #[test]
    fn window_bounds_level_width(trace in arb_trace(120), w in 1usize..12) {
        let config = AnalysisConfig::dataflow_limit()
            .with_segments(segments())
            .with_window(WindowSize::bounded(w));
        let report = analyze_refs(&trace, &config);
        if let Some(counts) = report.profile().exact_counts() {
            prop_assert!(counts.iter().all(|&c| c <= w as u64));
        }
    }

    /// The optimistic syscall policy never lengthens the critical path.
    #[test]
    fn optimistic_syscalls_only_help(trace in arb_trace(120)) {
        let base = AnalysisConfig::dataflow_limit().with_segments(segments());
        let cons = analyze_refs(&trace, &base).critical_path_length();
        let opt = analyze_refs(
            &trace,
            &base.with_syscall_policy(SyscallPolicy::Optimistic),
        )
        .critical_path_length();
        prop_assert!(opt <= cons);
    }

    /// The streaming live well and the explicit graph agree exactly, under
    /// arbitrary switch combinations.
    #[test]
    fn livewell_matches_explicit_graph(
        trace in arb_trace(100),
        renames in prop_oneof![
            Just(RenameSet::none()),
            Just(RenameSet::registers_only()),
            Just(RenameSet::registers_and_stack()),
            Just(RenameSet::all()),
        ],
        window in prop_oneof![Just(WindowSize::Infinite), (1usize..40).prop_map(WindowSize::bounded)],
        optimistic in any::<bool>(),
        branches in prop_oneof![
            Just(BranchPolicy::Perfect),
            Just(BranchPolicy::StallAlways),
            Just(BranchPolicy::Predict(PredictorKind::Btfn)),
            Just(BranchPolicy::Predict(PredictorKind::Bimodal { index_bits: 4 })),
            Just(BranchPolicy::Predict(PredictorKind::Gshare { index_bits: 4 })),
        ],
        issue_limit in prop_oneof![Just(None), (1usize..8).prop_map(Some)],
        memory in prop_oneof![Just(MemoryModel::Perfect), Just(MemoryModel::NoDisambiguation)],
    ) {
        let mut config = AnalysisConfig::dataflow_limit()
            .with_segments(segments())
            .with_renames(renames)
            .with_branch_policy(branches)
            .with_memory_model(memory)
            .with_window(window);
        if let Some(limit) = issue_limit {
            config = config.with_issue_limit(limit);
        }
        if optimistic {
            config = config.with_syscall_policy(SyscallPolicy::Optimistic);
        }
        let report = analyze_refs(&trace, &config);
        let ddg = Ddg::from_records(&trace, &config);
        prop_assert_eq!(ddg.height(), report.critical_path_length());
        prop_assert_eq!(ddg.len() as u64, report.placed_ops());
        prop_assert_eq!(
            ddg.parallelism_profile().exact_counts(),
            report.profile().exact_counts()
        );
    }

    /// The binary trace format round-trips arbitrary traces exactly.
    #[test]
    fn binary_format_round_trips(trace in arb_trace(150)) {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, segments()).unwrap();
        for r in &trace {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let decoded: Vec<_> = TraceReader::new(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(decoded, trace);
    }

    /// Perfect disambiguation never produces a longer critical path than
    /// the conservative no-disambiguation model.
    #[test]
    fn disambiguation_only_helps(trace in arb_trace(120)) {
        let base = AnalysisConfig::dataflow_limit().with_segments(segments());
        let perfect = analyze_refs(&trace, &base).critical_path_length();
        let conservative = analyze_refs(
            &trace,
            &base.with_memory_model(MemoryModel::NoDisambiguation),
        )
        .critical_path_length();
        prop_assert!(perfect <= conservative);
    }

    /// Unit latencies never produce a longer critical path than Table 1
    /// latencies.
    #[test]
    fn unit_latency_is_a_lower_bound(trace in arb_trace(120)) {
        let base = AnalysisConfig::dataflow_limit().with_segments(segments());
        let table1 = analyze_refs(&trace, &base).critical_path_length();
        let unit = analyze_refs(&trace, &base.with_latency(LatencyModel::unit()))
            .critical_path_length();
        prop_assert!(unit <= table1);
    }
}

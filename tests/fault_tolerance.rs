//! End-to-end fault tolerance: damaged traces must never panic the reader,
//! recovery must resynchronize and account for every lost record, and a
//! checkpointed-then-resumed analysis must reproduce the uninterrupted
//! report bit for bit.

use paragraph_core::{analyze_refs, AnalysisConfig, LiveWell};
use paragraph_trace::binary::{TraceReader, TraceWriter};
use paragraph_trace::faultinject::FaultPlan;
use paragraph_trace::synthetic;
use paragraph_trace::{SegmentMap, TraceRecord};
use paragraph_workloads::{Workload, WorkloadId};

/// Bytes of header to shield from injected damage when a test needs the
/// stream to stay openable (magic + version + two boundary varints).
const HEADER_PREFIX: usize = 16;

/// A real workload trace, serialized in v2 format with small chunks so
/// corruption loses a bounded neighborhood rather than the whole stream.
fn workload_trace_bytes() -> (Vec<u8>, Vec<TraceRecord>, SegmentMap) {
    let (records, segments) = Workload::new(WorkloadId::Eqntott)
        .with_size(16)
        .collect_trace(2_000_000)
        .expect("workload must trace");
    let mut buf = Vec::new();
    let mut writer = TraceWriter::with_chunk_records(&mut buf, segments, 128).unwrap();
    for record in &records {
        writer.write_record(record).unwrap();
    }
    writer.finish().unwrap();
    (buf, records, segments)
}

/// Reads `bytes` in recovery mode; panicking here is the failure.
fn recover_read(bytes: &[u8]) -> (Vec<TraceRecord>, paragraph_trace::binary::RecoveryStats) {
    match TraceReader::with_recovery(bytes) {
        Ok(mut reader) => {
            let mut records = Vec::new();
            for item in reader.by_ref() {
                match item {
                    Ok(record) => records.push(record),
                    Err(_) => break,
                }
            }
            (records, reader.recovery_stats())
        }
        // Header destroyed: nothing recoverable, which is a valid outcome.
        Err(_) => (
            Vec::new(),
            paragraph_trace::binary::RecoveryStats::default(),
        ),
    }
}

#[test]
fn one_percent_bit_flips_never_panic_the_recovery_reader() {
    let (bytes, records, _) = workload_trace_bytes();
    for seed in 0..20 {
        let plan = FaultPlan::new(seed).bit_flip_rate(0.01);
        let (damaged, report) = plan.apply(&bytes);
        let (recovered, stats) = recover_read(&damaged);
        assert!(report.bits_flipped > 0, "the plan must actually inject");
        assert!(
            stats.records_read as usize == recovered.len(),
            "stats must agree with the delivered records"
        );
        assert!(
            stats.records_read + stats.records_skipped <= records.len() as u64,
            "seed {seed}: accounting exceeds what was written \
             ({} read + {} skipped > {})",
            stats.records_read,
            stats.records_skipped,
            records.len()
        );
    }
}

#[test]
fn recovery_resynchronizes_and_recovers_most_of_a_lightly_damaged_trace() {
    let (bytes, records, _) = workload_trace_bytes();
    // A light touch: a couple of corrupted spots, trace mostly intact.
    let plan = FaultPlan::new(7)
        .bit_flip_rate(0.0002)
        .protect_prefix(HEADER_PREFIX);
    let (damaged, report) = plan.apply(&bytes);
    assert!(report.bits_flipped > 0);
    let (recovered, stats) = recover_read(&damaged);
    assert!(
        recovered.len() as u64 >= records.len() as u64 / 2,
        "light damage should leave most records recoverable \
         ({} of {} survived)",
        recovered.len(),
        records.len()
    );
    // Every record is either delivered or accounted as skipped; nothing is
    // silently dropped mid-stream (only an unwitnessed destroyed tail may
    // go uncounted, and these flips leave the trailer with high odds).
    assert!(stats.records_read + stats.records_skipped <= records.len() as u64);
    // Recovered records are genuine: each one equals some written record
    // (spot-check a sample rather than O(n^2) over the whole trace).
    for record in recovered.iter().step_by(97) {
        assert!(
            records.contains(record),
            "recovery must not fabricate records"
        );
    }
}

#[test]
fn mixed_fault_campaign_terminates_and_accounts() {
    let trace = synthetic::random_trace(5000, 99);
    let mut buf = Vec::new();
    let mut writer =
        TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 256).unwrap();
    for record in &trace {
        writer.write_record(record).unwrap();
    }
    let written = writer.finish().unwrap();

    for seed in 0..30 {
        let mut plan = FaultPlan::new(1000 + seed)
            .bit_flip_rate(0.001)
            .garbage_rate(0.002)
            .chunk_dup_rate(0.05);
        if seed % 3 == 0 {
            plan = plan.truncate_to(0.9);
        }
        let (damaged, report) = plan.apply(&buf);
        let (recovered, stats) = recover_read(&damaged);
        assert_eq!(stats.records_read as usize, recovered.len());
        assert!(
            stats.records_read + stats.records_skipped <= written + report.duplicated_records,
            "seed {seed}: read {} + skipped {} must not exceed written {} + duplicated {}",
            stats.records_read,
            stats.records_skipped,
            written,
            report.duplicated_records
        );
    }
}

#[test]
fn analysis_of_a_recovered_trace_is_sound() {
    // Recovery feeds the analyzer fewer records, never garbage: the report
    // over a damaged trace must still be internally consistent.
    let (bytes, _, segments) = workload_trace_bytes();
    let plan = FaultPlan::new(42)
        .bit_flip_rate(0.0005)
        .protect_prefix(HEADER_PREFIX);
    let (damaged, _) = plan.apply(&bytes);
    let (recovered, stats) = recover_read(&damaged);
    assert!(stats.records_read > 0, "some records must survive");
    let config = AnalysisConfig::dataflow_limit().with_segments(segments);
    let report = analyze_refs(&recovered, &config);
    assert_eq!(report.total_records(), stats.records_read);
    assert!(report.placed_ops() <= report.total_records());
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_report_on_a_real_workload() {
    let (_, records, segments) = workload_trace_bytes();
    let config = AnalysisConfig::dataflow_limit()
        .with_segments(segments)
        .with_value_stats(true);

    let direct = {
        let mut lw = LiveWell::new(config.clone());
        lw.process_all(&records);
        lw.finish()
    };

    // Interrupt at several points, including mid-stride positions.
    for split in [1usize, records.len() / 3, records.len() - 1] {
        let mut first = LiveWell::new(config.clone());
        first.process_all(&records[..split]);
        let mut checkpoint = Vec::new();
        first.save_checkpoint(&mut checkpoint).unwrap();

        let mut resumed = LiveWell::resume_from(&checkpoint[..], config.clone()).unwrap();
        assert_eq!(resumed.records_processed(), split as u64);
        resumed.process_all(&records[split..]);

        assert_eq!(
            resumed.finish().to_json(),
            direct.to_json(),
            "split at {split} must be invisible in the final report"
        );
    }
}

#[test]
fn checkpointing_composes_with_trace_recovery() {
    // The full degraded pipeline: damaged trace -> recovery read ->
    // checkpointed analysis -> resume -> same report as one pass over the
    // recovered records.
    let (bytes, _, segments) = workload_trace_bytes();
    let (damaged, _) = FaultPlan::new(3)
        .bit_flip_rate(0.0002)
        .protect_prefix(HEADER_PREFIX)
        .apply(&bytes);
    let (recovered, _) = recover_read(&damaged);
    assert!(!recovered.is_empty());

    let config = AnalysisConfig::dataflow_limit().with_segments(segments);
    let one_pass = analyze_refs(&recovered, &config);

    let split = recovered.len() / 2;
    let mut first = LiveWell::new(config.clone());
    first.process_all(&recovered[..split]);
    let mut checkpoint = Vec::new();
    first.save_checkpoint(&mut checkpoint).unwrap();
    let mut resumed = LiveWell::resume_from(&checkpoint[..], config).unwrap();
    resumed.process_all(&recovered[split..]);

    assert_eq!(resumed.finish().to_json(), one_pass.to_json());
}

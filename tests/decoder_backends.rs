//! Differential suite for the trace input backends.
//!
//! The contract of [`TraceSource`] is that the decode pipeline cannot tell
//! the backends apart: a memory-mapped trace, a buffered-file trace, and
//! an in-memory trace must produce identical records, identical typed
//! errors (same kind, same byte offset, same record index), and identical
//! recovery accounting over clean, truncated, bit-flipped, and
//! governor-rejected streams. The decode-ahead pipeline and the parallel
//! whole-file decode must in turn match whatever the sequential reader
//! produces, record for record.

use paragraph_trace::binary::{RecoveryStats, TraceReader, TraceWriter};
use paragraph_trace::faultinject::FaultPlan;
use paragraph_trace::govern::{Limits, ResourceGovernor};
use paragraph_trace::source::{decode_all_parallel, DecodeAhead};
use paragraph_trace::{synthetic, SegmentMap, TraceError, TraceRecord, TraceSource};
use std::path::{Path, PathBuf};

/// A deterministic v2 trace with small chunks (so damage and truncation
/// land mid-stream, not in one giant frame), written to a buffer.
fn trace_bytes(records: usize, seed: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer =
        TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 256).expect("header");
    for record in synthetic::random_trace(records, seed) {
        writer.write_record(&record).expect("record");
    }
    writer.finish().expect("finish");
    buf
}

/// Writes `bytes` to a scratch file and returns its path.
fn scratch_file(name: &str, bytes: &[u8]) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-backends-{}-{name}", std::process::id()));
    std::fs::write(&path, bytes).expect("scratch write");
    path
}

/// Everything one read of a stream produces: the records delivered, the
/// terminating fault (if any), and the recovery tallies.
#[derive(Debug)]
struct Drained {
    records: Vec<TraceRecord>,
    fault: Option<TraceError>,
    stats: RecoveryStats,
}

/// Drains `reader` through the block path.
fn drain(mut reader: TraceReader<TraceSource>) -> Drained {
    let mut records = Vec::new();
    let fault = loop {
        match reader.read_block(&mut records) {
            Ok(0) => break None,
            Ok(_) => {}
            Err(e) => break Some(e),
        }
    };
    Drained {
        records,
        fault,
        stats: reader.recovery_stats(),
    }
}

/// Opens `path` through every backend (plus the owned-memory source) and
/// drains each; `recover` selects recovery mode; `strict` arms the strict
/// governor.
fn drain_all_backends(path: &Path, bytes: &[u8], recover: bool, strict: bool) -> Vec<Drained> {
    let sources = [
        TraceSource::buffered_file(path).expect("buffered open"),
        TraceSource::mapped_file(path).expect("mapped open"),
        TraceSource::from_bytes(bytes.to_vec()),
    ];
    sources
        .into_iter()
        .map(|source| {
            let opened = if recover {
                TraceReader::from_source_with_recovery(source)
            } else {
                TraceReader::from_source(source)
            };
            let reader = match opened {
                Ok(reader) => reader,
                // A header-level fault must also be backend-independent;
                // surface it as a drained stream with zero records.
                Err(e) => {
                    return Drained {
                        records: Vec::new(),
                        fault: Some(e),
                        stats: RecoveryStats::default(),
                    }
                }
            };
            let reader = if strict {
                reader.with_governor(ResourceGovernor::new(Limits::strict()))
            } else {
                reader
            };
            drain(reader)
        })
        .collect()
}

/// Asserts every drain in `all` is identical to the first: same records,
/// same fault (by debug rendering, which carries kind, offsets, and
/// indexes), same recovery tallies.
fn assert_drains_agree(all: &[Drained], what: &str) {
    let first = &all[0];
    for (i, other) in all.iter().enumerate().skip(1) {
        assert_eq!(
            first.records, other.records,
            "{what}: backend {i} records diverged"
        );
        assert_eq!(
            format!("{:?}", first.fault),
            format!("{:?}", other.fault),
            "{what}: backend {i} fault diverged"
        );
        assert_eq!(
            first.stats, other.stats,
            "{what}: backend {i} recovery accounting diverged"
        );
    }
}

#[test]
fn backends_agree_on_clean_traces() {
    let bytes = trace_bytes(3_000, 11);
    let path = scratch_file("clean", &bytes);
    let all = drain_all_backends(&path, &bytes, false, false);
    assert_eq!(all[0].records.len(), 3_000);
    assert!(all[0].fault.is_none());
    assert_drains_agree(&all, "clean");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn backends_agree_on_truncated_traces() {
    let bytes = trace_bytes(2_000, 13);
    for keep in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 7] {
        let cut = &bytes[..keep];
        let path = scratch_file(&format!("trunc-{keep}"), cut);
        // Strict mode: truncation is a typed fault, identical everywhere.
        let all = drain_all_backends(&path, cut, false, false);
        assert!(all[0].fault.is_some(), "keep {keep} must fault");
        assert_drains_agree(&all, &format!("truncated at {keep}"));
        // Recovery mode: identical salvage and identical skip accounting.
        let all = drain_all_backends(&path, cut, true, false);
        assert_drains_agree(&all, &format!("recovered truncation at {keep}"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn backends_agree_on_bit_flipped_traces() {
    let bytes = trace_bytes(4_000, 17);
    for seed in 1..=6u64 {
        let (damaged, _) = FaultPlan::new(seed).bit_flip_rate(0.0004).apply(&bytes);
        let path = scratch_file(&format!("flip-{seed}"), &damaged);
        let strictly = drain_all_backends(&path, &damaged, false, false);
        assert_drains_agree(&strictly, &format!("bit flips seed {seed}, strict"));
        let recovered = drain_all_backends(&path, &damaged, true, false);
        assert_drains_agree(&recovered, &format!("bit flips seed {seed}, recovery"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn backends_agree_on_governor_rejection() {
    // 70k records overflow Limits::strict()'s record cap, so every
    // backend must surface the same typed rejection at the same point.
    let bytes = trace_bytes(70_000, 19);
    let path = scratch_file("governed", &bytes);
    let all = drain_all_backends(&path, &bytes, false, true);
    let fault = all[0].fault.as_ref().expect("strict limits must reject");
    assert!(
        fault.limit_violation().is_some(),
        "rejection must be a limit violation, got {fault:?}"
    );
    assert_drains_agree(&all, "governor rejection");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn decode_ahead_and_parallel_decode_match_sequential_on_both_backends() {
    let bytes = trace_bytes(5_000, 23);
    let path = scratch_file("matrix", &bytes);
    let sequential = drain(
        TraceReader::from_source(TraceSource::buffered_file(&path).expect("open")).expect("parse"),
    );
    assert!(sequential.fault.is_none());

    for mapped in [false, true] {
        // Decode-ahead over this backend.
        let source = if mapped {
            TraceSource::mapped_file(&path).expect("mapped open")
        } else {
            TraceSource::buffered_file(&path).expect("buffered open")
        };
        let reader = TraceReader::from_source(source).expect("parse");
        let mut pipeline = DecodeAhead::spawn(reader, None).expect("spawn");
        let mut streamed = Vec::new();
        while let Some(batch) = pipeline.next_batch() {
            let batch = batch.expect("clean stream");
            streamed.extend_from_slice(&batch);
            pipeline.recycle(batch);
        }
        pipeline.finish();
        assert_eq!(
            sequential.records, streamed,
            "decode-ahead diverged (mapped: {mapped})"
        );
    }

    // Parallel whole-file decode from the shared map, at several widths.
    let source = TraceSource::mapped_file(&path).expect("mapped open");
    let shared = source.shared_bytes().expect("mapped source shares bytes");
    for jobs in [1, 2, 4] {
        let decoded = decode_all_parallel(&shared, jobs, &Limits::default())
            .expect("pristine stream must decode in parallel");
        assert_eq!(
            sequential.records, decoded.records,
            "parallel decode diverged at {jobs} jobs"
        );
    }
    let _ = std::fs::remove_file(&path);
}

//! Artifact-sink degradation: a full disk (ENOSPC) under any output sink —
//! checkpoint, telemetry JSONL, profile CSV — must surface as a typed
//! `io::Error` and leave the *analysis* unharmed. The analyzer keeps
//! processing, the report still computes, and a previously written artifact
//! survives a failed atomic replacement.

use paragraph_core::telemetry::{Registry, Value};
use paragraph_core::{analyze_refs, artifact, AnalysisConfig, LiveWell};
use paragraph_trace::faultinject::FaultyWriter;
use paragraph_trace::{synthetic, SegmentMap};

fn test_config() -> AnalysisConfig {
    AnalysisConfig::dataflow_limit().with_segments(SegmentMap::all_data())
}

#[test]
fn checkpoint_enospc_fails_the_save_but_not_the_analysis() {
    let records = synthetic::random_trace(4_000, 11);
    let config = test_config();
    let direct = analyze_refs(&records, &config);

    let mut analyzer = LiveWell::new(config);
    analyzer.process_slice(&records[..2_000]);

    // The checkpoint body is far larger than 64 bytes, so the save hits
    // the simulated full disk mid-stream. It must error — never panic —
    // and must not disturb the analyzer.
    let mut sink = FaultyWriter::enospc_after(Vec::new(), 64);
    let err = analyzer.save_checkpoint(&mut sink);
    assert!(err.is_err(), "a full disk must fail the checkpoint save");

    // Degraded mode: the run simply continues without checkpoints, and the
    // final report is byte-identical to an uninterrupted run's.
    analyzer.process_slice(&records[2_000..]);
    assert_eq!(analyzer.finish().to_json(), direct.to_json());
}

#[test]
fn short_writes_from_a_nearly_full_disk_also_fail_the_checkpoint_cleanly() {
    let records = synthetic::random_trace(2_000, 23);
    let mut analyzer = LiveWell::new(test_config());
    analyzer.process_slice(&records);
    let mut sink = FaultyWriter::enospc_after(Vec::new(), 256).short_writes();
    assert!(
        analyzer.save_checkpoint(&mut sink).is_err(),
        "partial trailing writes must still surface the failure"
    );
}

#[test]
fn telemetry_sink_enospc_disables_the_sink_and_reports_on_flush() {
    let registry = Registry::new();
    registry.enable();
    registry.set_event_sink(Box::new(FaultyWriter::enospc_after(Vec::new(), 16)));

    // The first oversized event trips the fault; every later emit must be
    // a quiet no-op (the sink self-disables) rather than a panic or abort.
    for i in 0..100u64 {
        registry.emit(
            "tick",
            &[
                ("seq", Value::U64(i)),
                ("detail", Value::Str("x".repeat(64).as_str())),
            ],
        );
    }
    assert!(
        registry.flush_sink().is_err(),
        "flush must report the sink failure so the CLI can fail the artifact"
    );

    // Metrics keep collecting after the event sink dies.
    registry.counter("still.alive").add(3);
    assert!(registry.snapshot().to_prometheus().contains("still_alive"));
}

#[test]
fn profile_csv_enospc_is_an_error_not_a_panic() {
    let records = synthetic::random_trace(3_000, 5);
    let report = analyze_refs(&records, &test_config());
    let sink = FaultyWriter::enospc_after(Vec::new(), 32);
    assert!(
        report.profile().write_csv(sink).is_err(),
        "CSV emission into a full disk must error cleanly"
    );
}

#[test]
fn failed_atomic_rewrite_preserves_the_previous_artifact() {
    let dir =
        std::env::temp_dir().join(format!("paragraph-sink-degradation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("profile.csv");

    let records = synthetic::random_trace(3_000, 5);
    let report = analyze_refs(&records, &test_config());
    artifact::write_atomic(&path, |out| report.profile().write_csv(out))
        .expect("healthy write must land");
    let good = std::fs::read(&path).expect("first artifact");

    // The rewrite dies mid-payload on a simulated full disk: the error
    // propagates, the temp file is cleaned up, and the previous artifact
    // is still intact.
    let err = artifact::write_atomic(&path, |out| {
        let mut faulty = FaultyWriter::enospc_after(out, 16);
        report.profile().write_csv(&mut faulty)
    });
    assert!(err.is_err());
    assert_eq!(
        std::fs::read(&path).expect("artifact after failed rewrite"),
        good,
        "a failed atomic rewrite must leave the old artifact untouched"
    );
    assert_eq!(artifact::clean_orphaned_tmp(&dir), 0, "no temp left behind");
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end integration tests across the whole toolkit: assembler → VM →
//! trace format → analyzers.

use paragraph::asm::assemble;
use paragraph::core::{analyze_refs, AnalysisConfig, Ddg, LiveWell};
use paragraph::trace::binary::{TraceReader, TraceWriter};
use paragraph::vm::Vm;
use paragraph::workloads::{Workload, WorkloadId};

#[test]
fn assemble_run_analyze_round_trip() {
    let program = assemble(
        "
        .data
    xs: .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
    main:
        li   r8, 0          # i
        li   r9, 8          # n
        li   r10, 0         # max
        la   r11, xs
    loop:
        add  r12, r11, r8
        lw   r13, 0(r12)
        slt  r14, r10, r13
        beqz r14, skip
        mv   r10, r13
    skip:
        addi r8, r8, 1
        blt  r8, r9, loop
        mv   r4, r10
        li   r2, 1
        syscall
        halt
    ",
    )
    .expect("program assembles");
    let mut vm = Vm::new(program);
    let (trace, outcome) = vm.run_collect(10_000).expect("program runs");
    assert!(outcome.halted());
    assert_eq!(vm.output(), "9\n"); // max of the data

    let config = AnalysisConfig::dataflow_limit().with_segments(vm.segment_map());
    let report = analyze_refs(&trace, &config);
    assert_eq!(report.total_records() + 1, outcome.executed()); // halt untraced
    assert!(report.available_parallelism() > 1.0);
    assert_eq!(report.syscalls(), 1);
}

#[test]
fn trace_survives_binary_format() {
    // Capture a real workload trace, write it through the binary format,
    // read it back, and check the analysis is bit-identical.
    let workload = Workload::new(WorkloadId::Cc1).with_size(3);
    let (trace, segments) = workload.collect_trace(5_000_000).unwrap();

    let mut buf = Vec::new();
    let mut writer = TraceWriter::new(&mut buf, segments).unwrap();
    for r in &trace {
        writer.write_record(r).unwrap();
    }
    let written = writer.finish().unwrap();
    assert_eq!(written as usize, trace.len());

    let mut reader = TraceReader::new(buf.as_slice()).unwrap();
    assert_eq!(reader.segment_map(), segments);
    let decoded: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(decoded, trace);

    let config = AnalysisConfig::dataflow_limit().with_segments(segments);
    let direct = analyze_refs(&trace, &config);
    let via_file = analyze_refs(&decoded, &config);
    assert_eq!(
        direct.critical_path_length(),
        via_file.critical_path_length()
    );
    assert_eq!(direct.placed_ops(), via_file.placed_ops());

    // And the binary format earns its keep: notably smaller than the
    // in-memory record size.
    assert!(buf.len() < trace.len() * std::mem::size_of::<paragraph::trace::TraceRecord>() / 4);
}

#[test]
fn streaming_and_explicit_analyzers_agree_on_real_traces() {
    // The live well and the explicit graph builder are two implementations
    // of the same placement rule; they must agree on every workload.
    for id in [WorkloadId::Xlisp, WorkloadId::Espresso, WorkloadId::Doduc] {
        let workload = Workload::new(id).with_size(3);
        let (trace, segments) = workload.collect_trace(2_000_000).unwrap();
        let config = AnalysisConfig::dataflow_limit().with_segments(segments);
        let mut well = LiveWell::new(config.clone());
        well.process_all(&trace);
        let report = well.finish();
        let ddg = Ddg::from_records(&trace, &config);
        assert_eq!(
            ddg.height(),
            report.critical_path_length(),
            "critical paths diverge on {id}"
        );
        assert_eq!(ddg.len() as u64, report.placed_ops());
        assert_eq!(
            ddg.parallelism_profile().exact_counts(),
            report.profile().exact_counts(),
            "profiles diverge on {id}"
        );
    }
}

#[test]
fn committed_external_trace_ingests_to_the_native_byte_stream() {
    // The committed example external trace (docs/ingest.md format) must
    // ingest cleanly, convert to bytes identical to writing the decoded
    // records natively, and analyze like any homegrown trace.
    use paragraph::trace::govern::{Limits, ResourceGovernor};
    use paragraph::trace::ingest;

    let text = include_str!("../examples/traces/sum-loop.pgtxt");
    let mut bytes = Vec::new();
    let mut governor = ResourceGovernor::new(Limits::default());
    let stats =
        ingest::ingest_text(text.as_bytes(), &mut bytes, &mut governor).expect("example ingests");
    assert_eq!(stats.records, 17);
    assert_eq!(
        stats.segments,
        paragraph::trace::SegmentMap::new(64, 256),
        "the example sets explicit segments"
    );
    assert!(stats.skipped_lines > 0, "the example is commented");

    let mut reader = TraceReader::new(bytes.as_slice()).expect("ingested bytes parse");
    let segments = reader.segment_map();
    let decoded: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(decoded.len() as u64, stats.records);

    // Byte-identity: the text path is a front door onto the same v2
    // format, not a dialect.
    let mut native = Vec::new();
    let mut writer = TraceWriter::new(&mut native, segments).unwrap();
    for r in &decoded {
        writer.write_record(r).unwrap();
    }
    writer.finish().unwrap();
    assert_eq!(native, bytes);

    // And re-rendering the decoded records reproduces an ingestible text
    // that converts to the very same bytes again.
    let rendered = ingest::render_trace(&decoded, segments);
    let mut again = Vec::new();
    let mut governor = ResourceGovernor::new(Limits::default());
    ingest::ingest_text(rendered.as_bytes(), &mut again, &mut governor)
        .expect("re-rendered text ingests");
    assert_eq!(again, bytes);

    let config = AnalysisConfig::dataflow_limit().with_segments(segments);
    let report = analyze_refs(&decoded, &config);
    assert_eq!(report.total_records(), stats.records);
    assert_eq!(report.syscalls(), 1);
    assert!(report.critical_path_length() > 0);
}

#[test]
fn workload_disassembly_reassembles_identically() {
    // Program -> disassemble -> assemble is a fixed point (label names are
    // rewritten but instructions must survive exactly).
    for id in [WorkloadId::Eqntott, WorkloadId::Nasker] {
        let program = Workload::new(id).with_size(2).program().unwrap();
        let second = assemble(&program.disassemble()).unwrap();
        assert_eq!(program.text(), second.text(), "{id} text drifts");
    }
}

#[test]
fn vm_checksums_are_stable_across_runs() {
    // Guards against nondeterminism anywhere in the pipeline: the printed
    // output of every workload must be identical run to run.
    for id in WorkloadId::ALL {
        let workload = Workload::new(id).with_size(2);
        let mut out = Vec::new();
        for _ in 0..2 {
            let mut vm = workload.vm();
            vm.run(20_000_000).unwrap();
            out.push(vm.output().to_owned());
        }
        assert_eq!(out[0], out[1], "{id} output is nondeterministic");
    }
}

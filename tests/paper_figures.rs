//! Integration tests pinning the paper's worked examples (Figures 1-5)
//! across the crate boundary, end to end: the numbers asserted here are
//! printed in the paper's text.

use paragraph::core::schedule::{schedule, ResourceModel};
use paragraph::core::{
    analyze, AnalysisConfig, Ddg, DepKind, LatencyModel, LiveWell, RenameSet, SyscallPolicy,
};
use paragraph::isa::OpClass;
use paragraph::trace::{synthetic, Loc, TraceRecord};

fn unit_config() -> AnalysisConfig {
    AnalysisConfig::dataflow_limit().with_latency(LatencyModel::unit())
}

#[test]
fn figure1_profile_and_critical_path() {
    // "the DDG in Figure 1 has a critical path length of four" and "the
    // parallelism profile for Figure 1 has four operations in level one, two
    // operations in level two, and one operation in levels three and four".
    let report = analyze(synthetic::figure1(), &unit_config());
    assert_eq!(report.critical_path_length(), 4);
    assert_eq!(report.profile().exact_counts().unwrap(), vec![4, 2, 1, 1]);
    assert_eq!(report.placed_ops(), 8);
    assert_eq!(report.available_parallelism(), 2.0);
}

#[test]
fn figure2_profile_and_critical_path() {
    // "the DDG of Figure 2 has a critical path length of six" and "the
    // parallelism profile for Figure 2 has two, one, two, one, one and one
    // operations in levels one..six".
    let config = unit_config().with_renames(RenameSet::none());
    let report = analyze(synthetic::figure2(), &config);
    assert_eq!(report.critical_path_length(), 6);
    assert_eq!(
        report.profile().exact_counts().unwrap(),
        vec![2, 1, 2, 1, 1, 1]
    );
}

#[test]
fn renaming_restores_figure1_from_figure2() {
    // "Storage dependencies can always be removed by ... renaming."
    let config = unit_config().with_renames(RenameSet::registers_only());
    let report = analyze(synthetic::figure2(), &config);
    assert_eq!(report.critical_path_length(), 4);
    assert_eq!(report.profile().exact_counts().unwrap(), vec![4, 2, 1, 1]);
}

#[test]
fn figure2_ddg_has_gray_bubble_edges() {
    // The storage dependencies drawn with "a small, gray bubble" exist as
    // typed edges in the explicit graph, and only without renaming.
    let no_rename = unit_config().with_renames(RenameSet::none());
    let trace = synthetic::figure2();
    let ddg = Ddg::from_records(&trace, &no_rename);
    let (_, storage, _) = ddg.edge_counts();
    assert!(storage > 0);
    let renamed = Ddg::from_records(&trace, &unit_config());
    assert_eq!(renamed.edge_counts().1, 0);
}

#[test]
fn figure3_firewall_gates_independent_computation() {
    // Figure 3: C + D is delayed until the read r1 system call completes
    // under the conservative assumption, and not under the optimistic one.
    let trace = vec![
        TraceRecord::load(0, 0, None, Loc::int(10)),
        TraceRecord::compute(1, OpClass::IntDiv, &[Loc::int(10)], Loc::int(9)),
        TraceRecord::syscall(2, &[Loc::int(9)], Some(Loc::int(11))),
        TraceRecord::compute(
            3,
            OpClass::IntAlu,
            &[Loc::int(10), Loc::int(11)],
            Loc::int(12),
        ),
        TraceRecord::store(4, 4, Loc::int(12), None),
        TraceRecord::load(5, 2, None, Loc::int(13)),
        TraceRecord::load(6, 3, None, Loc::int(14)),
        TraceRecord::compute(
            7,
            OpClass::IntAlu,
            &[Loc::int(13), Loc::int(14)],
            Loc::int(15),
        ),
    ];
    let paper = AnalysisConfig::dataflow_limit();
    let conservative = analyze(trace.clone(), &paper);
    let optimistic = analyze(
        trace.clone(),
        &paper.clone().with_syscall_policy(SyscallPolicy::Optimistic),
    );
    assert!(conservative.critical_path_length() > optimistic.critical_path_length());
    assert_eq!(conservative.firewalls(), 1);
    assert_eq!(optimistic.firewalls(), 0);
    // The explicit graph carries the dashed control edge.
    let ddg = Ddg::from_records(&trace, &paper);
    assert!(ddg.edges().iter().any(|e| e.kind == DepKind::Control));
}

#[test]
fn figure4_two_functional_units() {
    // Figure 4: the Figure 1 computation on two generic functional units
    // spans five levels with at most two operations per level.
    let trace = synthetic::figure1();
    let ddg = Ddg::from_records(&trace, &unit_config());
    let result = schedule(&ddg, ResourceModel::units(2), &LatencyModel::unit());
    assert_eq!(result.cycles(), 5);
    assert!(result.issue_profile().iter().all(|&n| n <= 2));
    assert_eq!(result.ops(), 8);
}

#[test]
fn figure5_live_well_state() {
    // Figure 5: after the Figure 1 trace the live well holds the 8 created
    // values plus the 4 preexisting DATA values, with the deepest level 3
    // (0-based; the paper draws S in the fourth level).
    let mut well = LiveWell::new(unit_config());
    for record in synthetic::figure1() {
        well.process(&record);
    }
    assert_eq!(well.live_well_size(), 12);
    assert_eq!(well.deepest_level(), Some(3));
}

#[test]
fn preexisting_values_sit_above_the_graph() {
    // "the value is placed in the live well such that it was created in the
    // level immediately preceding the topologically highest level" — so a
    // computation using only preexisting values lands in the first level.
    let trace = vec![TraceRecord::load(0, 99, None, Loc::int(8))];
    let report = analyze(trace, &unit_config());
    assert_eq!(report.critical_path_length(), 1);
}

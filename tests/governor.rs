//! Adversarial-input properties of the resource governors: no declared
//! length in a hostile stream — chunk header, checkpoint table, or ingest
//! line — may translate into an allocation beyond the governor's
//! per-allocation cap, and the text ingest path must be byte-identical to
//! the native binary writer.

use paragraph::core::{AnalysisConfig, LiveWell};
use paragraph::trace::binary::{TraceReader, TraceWriter, SYNC_MARKER};
use paragraph::trace::crc32::crc32;
use paragraph::trace::govern::{Limits, ResourceGovernor};
use paragraph::trace::{ingest, synthetic, SegmentMap};
use proptest::prelude::*;

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A trace stream whose single chunk header declares attacker-chosen
/// record-count and payload-length fields over an arbitrary short payload.
fn hostile_stream(count: u64, payload_len: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = b"PGTR\x02\x00\x00".to_vec();
    bytes.extend_from_slice(&SYNC_MARKER);
    push_varint(&mut bytes, 0); // first record index
    push_varint(&mut bytes, count);
    push_varint(&mut bytes, payload_len);
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // CRC (wrong)
    bytes.extend_from_slice(payload);
    bytes
}

/// A small valid checkpoint to mutate.
fn valid_checkpoint() -> Vec<u8> {
    let mut analyzer = LiveWell::new(AnalysisConfig::dataflow_limit());
    analyzer.process_all(&synthetic::random_trace(200, 7));
    let mut bytes = Vec::new();
    analyzer
        .save_checkpoint(&mut bytes)
        .expect("in-memory save");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever lengths a chunk header declares, the governed reader
    /// allocates no more than its per-allocation cap before erroring out.
    #[test]
    fn hostile_chunk_headers_never_overallocate(
        count in any::<u64>(),
        payload_len in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = hostile_stream(count, payload_len, &payload);
        let cap = Limits::strict().max_alloc_bytes;
        let mut reader = TraceReader::new(&bytes[..])
            .expect("the header itself is well formed")
            .with_governor(ResourceGovernor::new(Limits::strict()));
        let mut block = Vec::new();
        loop {
            match reader.read_block(&mut block) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => {
                    // Typed, not a panic; a governor refusal names its limit.
                    if let Some(v) = e.limit_violation() {
                        prop_assert!(v.actual > v.cap);
                    }
                    break;
                }
            }
        }
        prop_assert!(
            reader.governor().peak_alloc() <= cap,
            "peak allocation {} exceeded the {} cap",
            reader.governor().peak_alloc(),
            cap
        );
    }

    /// Same contract in recovery mode, which scans damaged streams for the
    /// next sync marker instead of stopping at the first fault.
    #[test]
    fn hostile_chunk_headers_never_overallocate_in_recovery(
        count in any::<u64>(),
        payload_len in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = hostile_stream(count, payload_len, &payload);
        let cap = Limits::strict().max_alloc_bytes;
        let mut reader = TraceReader::with_recovery(&bytes[..])
            .expect("the header itself is well formed")
            .with_governor(ResourceGovernor::new(Limits::strict()));
        let mut block = Vec::new();
        loop {
            match reader.read_block(&mut block) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        prop_assert!(reader.governor().peak_alloc() <= cap);
    }

    /// Corrupting any window of a valid checkpoint — with the CRC patched
    /// so the mutated body actually reaches the decoder — never drives an
    /// allocation past the governor cap, whatever counts the mutated
    /// length fields declare.
    #[test]
    fn mutated_checkpoints_never_overallocate(
        offset in 0usize..512,
        run in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let mut file = valid_checkpoint();
        let body_start = 5; // magic + version
        let body_end = file.len() - 4;
        let at = body_start + offset % (body_end - body_start);
        let end = (at + run.len()).min(body_end);
        file[at..end].copy_from_slice(&run[..end - at]);
        let fixed = crc32(&file[body_start..body_end]);
        let crc_at = file.len() - 4;
        file[crc_at..].copy_from_slice(&fixed.to_le_bytes());

        let limits = Limits::strict();
        let cap = limits.max_alloc_bytes;
        let mut governor = ResourceGovernor::new(limits);
        let _ = LiveWell::resume_from_governed(
            &file[..],
            AnalysisConfig::dataflow_limit(),
            &mut governor,
        );
        prop_assert!(
            governor.peak_alloc() <= cap,
            "peak allocation {} exceeded the {} cap",
            governor.peak_alloc(),
            cap
        );
    }

    /// Ingesting the rendered text of any trace produces the same bytes as
    /// writing that trace with the default binary writer: the text path is
    /// a front door onto the identical v2 format, not a dialect.
    #[test]
    fn ingest_round_trip_is_byte_identical(
        len in 1usize..400,
        seed in any::<u64>(),
    ) {
        let records = synthetic::random_trace(len, seed);
        let segments = SegmentMap::all_data();

        let mut native = Vec::new();
        let mut writer = TraceWriter::new(&mut native, segments).expect("in-memory writer");
        for record in &records {
            writer.write_record(record).expect("in-memory write");
        }
        writer.finish().expect("in-memory finish");

        let text = ingest::render_trace(&records, segments);
        let mut ingested = Vec::new();
        let mut governor = ResourceGovernor::new(Limits::default());
        let stats = ingest::ingest_text(text.as_bytes(), &mut ingested, &mut governor)
            .expect("rendered text must ingest cleanly");

        prop_assert_eq!(stats.records, records.len() as u64);
        prop_assert_eq!(native, ingested);
    }
}

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    paragraph::fuzzing::check_varint_swar(data);
});

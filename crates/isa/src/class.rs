//! Operation classes, mirroring Table 1 of the paper.

use std::fmt;

/// The latency class of a dynamic operation.
///
/// These are exactly the classes of Table 1 ("Instruction Class Operation
/// Times") of Austin & Sohi, plus the two control classes ([`OpClass::Branch`]
/// and [`OpClass::Jump`]) that the paper's analyzer observes in the trace but
/// never places into the dynamic dependency graph, and [`OpClass::Nop`] for
/// padding instructions.
///
/// # Examples
///
/// ```
/// use paragraph_isa::OpClass;
///
/// assert!(OpClass::IntAlu.creates_value());
/// assert!(!OpClass::Branch.creates_value());
/// assert!(OpClass::FpDiv.is_fp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer add, subtract, logical, shift, compare, immediate moves.
    IntAlu,
    /// Integer multiplication.
    IntMul,
    /// Integer division and remainder.
    IntDiv,
    /// Floating-point addition, subtraction, comparison, conversion.
    FpAdd,
    /// Floating-point multiplication.
    FpMul,
    /// Floating-point division and square root.
    FpDiv,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Operating-system call.
    Syscall,
    /// Conditional branch (control only; not placed in the DDG).
    Branch,
    /// Unconditional jump, call, or return (control only; `jal` additionally
    /// writes the link register and is modelled as creating that value).
    Jump,
    /// No-operation (not placed in the DDG).
    Nop,
}

impl OpClass {
    /// All operation classes, in Table 1 order followed by the control
    /// classes.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Syscall,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Nop,
    ];

    /// Whether operations of this class create a value and therefore appear
    /// as nodes in the dynamic dependency graph.
    ///
    /// The paper: "Since the compare and branch instructions only provide a
    /// mechanism to change the flow of control, and do not create any values,
    /// they are not included in the DDG." Stores are included (they create
    /// the memory value), as are system calls (which the analyzer places so
    /// that the conservative firewall has a well-defined level).
    pub fn creates_value(self) -> bool {
        !matches!(self, OpClass::Branch | OpClass::Jump | OpClass::Nop)
    }

    /// Whether this is a floating-point arithmetic class.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether this is an integer arithmetic class.
    pub fn is_int_alu(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv)
    }

    /// Whether this is a memory-access class.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this is a control-transfer class (never placed in the DDG).
    pub fn is_control(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }

    /// A short, stable, lowercase name suitable for report columns.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Syscall => "syscall",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Nop => "nop",
        }
    }

    /// The description used for this class in Table 1 of the paper, or a
    /// matching description for the classes Table 1 omits.
    pub fn paper_description(self) -> &'static str {
        match self {
            OpClass::IntAlu => "Integer ALU",
            OpClass::IntMul => "Integer Multiply",
            OpClass::IntDiv => "Integer Division",
            OpClass::FpAdd => "Floating Point Add/Sub",
            OpClass::FpMul => "Floating Point Multiply",
            OpClass::FpDiv => "Floating Point Division",
            OpClass::Load => "Load",
            OpClass::Store => "Store",
            OpClass::Syscall => "System Calls",
            OpClass::Branch => "Conditional Branch",
            OpClass::Jump => "Jump",
            OpClass::Nop => "No-operation",
        }
    }

    /// A compact stable numeric id for binary trace encoding.
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`OpClass::id`]; used by the binary trace decoder.
    pub fn from_id(id: u8) -> Option<OpClass> {
        OpClass::ALL.get(id as usize).copied()
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for class in OpClass::ALL {
            assert_eq!(OpClass::from_id(class.id()), Some(class));
        }
        assert_eq!(OpClass::from_id(OpClass::ALL.len() as u8), None);
    }

    #[test]
    fn control_classes_do_not_create_values() {
        assert!(!OpClass::Branch.creates_value());
        assert!(!OpClass::Jump.creates_value());
        assert!(!OpClass::Nop.creates_value());
        assert!(OpClass::Store.creates_value());
        assert!(OpClass::Syscall.creates_value());
    }

    #[test]
    fn class_predicates_partition() {
        for class in OpClass::ALL {
            let kinds = [
                class.is_fp(),
                class.is_int_alu(),
                class.is_mem(),
                class.is_control(),
                matches!(class, OpClass::Syscall | OpClass::Nop),
            ];
            assert_eq!(
                kinds.iter().filter(|k| **k).count(),
                1,
                "{class} must fall into exactly one family"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::ALL.len());
    }
}

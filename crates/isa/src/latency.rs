//! The operation latency model of Table 1.

use crate::class::OpClass;
use std::fmt;

/// Latencies, in DDG levels, for each [`OpClass`] (Table 1 of the paper).
///
/// The latency of an operation ("`top` ... the time in abstract machine steps
/// (or DDG levels) to complete the operation") determines how many levels the
/// operation spans in the dynamic dependency graph before the value it
/// creates is available to subsequent operations.
///
/// Control classes are carried with latency zero by convention: they are
/// never placed in the graph, so the value is unused, but keeping an entry
/// for every class lets the model be total.
///
/// # Examples
///
/// ```
/// use paragraph_isa::{LatencyModel, OpClass};
///
/// let model = LatencyModel::paper();
/// assert_eq!(model.latency(OpClass::IntAlu), 1);
/// assert_eq!(model.latency(OpClass::FpDiv), 12);
///
/// let unit = LatencyModel::unit();
/// assert_eq!(unit.latency(OpClass::FpDiv), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    levels: [u32; OpClass::ALL.len()],
}

impl LatencyModel {
    /// The latency model of Table 1 of the paper (MIPS R2000/R3000-era
    /// operation times).
    pub fn paper() -> LatencyModel {
        let mut model = LatencyModel::unit();
        model.set(OpClass::IntMul, 6);
        model.set(OpClass::IntDiv, 12);
        model.set(OpClass::FpAdd, 6);
        model.set(OpClass::FpMul, 6);
        model.set(OpClass::FpDiv, 12);
        model
    }

    /// A unit-latency model: every value-creating operation takes one level.
    ///
    /// Useful for isolating graph-shape effects from latency effects, and for
    /// checking analyses against hand-drawn graphs such as Figures 1-4 of the
    /// paper.
    pub fn unit() -> LatencyModel {
        let mut levels = [1; OpClass::ALL.len()];
        for class in [OpClass::Branch, OpClass::Jump, OpClass::Nop] {
            levels[class as usize] = 0;
        }
        LatencyModel { levels }
    }

    /// The latency, in DDG levels, of operations in `class`.
    pub fn latency(&self, class: OpClass) -> u32 {
        self.levels[class as usize]
    }

    /// Overrides the latency of one class.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero for a value-creating class: the placement
    /// rule `Ldest = MAX(...) + top` requires every placed operation to
    /// advance at least one level, otherwise the graph would not be acyclic
    /// per level.
    pub fn set(&mut self, class: OpClass, levels: u32) -> &mut LatencyModel {
        assert!(
            levels > 0 || !class.creates_value(),
            "latency of value-creating class {class} must be positive"
        );
        self.levels[class as usize] = levels;
        self
    }

    /// Returns a copy with one class latency overridden.
    ///
    /// # Panics
    ///
    /// As for [`LatencyModel::set`].
    pub fn with(&self, class: OpClass, levels: u32) -> LatencyModel {
        let mut out = self.clone();
        out.set(class, levels);
        out
    }

    /// Iterates over `(class, latency)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u32)> + '_ {
        OpClass::ALL
            .iter()
            .map(move |&class| (class, self.latency(class)))
    }
}

impl Default for LatencyModel {
    /// The paper's Table 1 model.
    fn default() -> LatencyModel {
        LatencyModel::paper()
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (class, latency) in self.iter() {
            if !class.creates_value() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{class}={latency}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_table_1() {
        let m = LatencyModel::paper();
        assert_eq!(m.latency(OpClass::IntAlu), 1);
        assert_eq!(m.latency(OpClass::IntMul), 6);
        assert_eq!(m.latency(OpClass::IntDiv), 12);
        assert_eq!(m.latency(OpClass::FpAdd), 6);
        assert_eq!(m.latency(OpClass::FpMul), 6);
        assert_eq!(m.latency(OpClass::FpDiv), 12);
        assert_eq!(m.latency(OpClass::Load), 1);
        assert_eq!(m.latency(OpClass::Store), 1);
        assert_eq!(m.latency(OpClass::Syscall), 1);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LatencyModel::default(), LatencyModel::paper());
    }

    #[test]
    fn with_overrides_single_class() {
        let m = LatencyModel::paper().with(OpClass::Load, 3);
        assert_eq!(m.latency(OpClass::Load), 3);
        assert_eq!(m.latency(OpClass::Store), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_latency_for_value_class_panics() {
        LatencyModel::paper().with(OpClass::IntAlu, 0);
    }

    #[test]
    fn control_classes_may_be_zero() {
        let m = LatencyModel::paper().with(OpClass::Branch, 0);
        assert_eq!(m.latency(OpClass::Branch), 0);
    }

    #[test]
    fn display_is_nonempty_and_lists_table_classes() {
        let text = LatencyModel::paper().to_string();
        assert!(text.contains("int-alu=1"));
        assert!(text.contains("fp-div=12"));
        assert!(!text.contains("branch"));
    }
}

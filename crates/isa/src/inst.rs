//! The machine instruction set.

use crate::class::OpClass;
use crate::reg::{FpReg, IntReg};
use std::fmt;

/// A reference to an architectural register, in either register file.
///
/// Returned by [`Inst::reg_uses`] and [`Inst::reg_defs`]; the dependency
/// analyzer maps these directly onto live-well locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegRef {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => r.fmt(f),
            RegRef::Fp(r) => r.fmt(f),
        }
    }
}

/// A machine instruction.
///
/// Instructions are represented symbolically (there is no binary machine
/// encoding; the VM interprets this enum directly). Branch and jump targets
/// are absolute instruction indices into the text segment; the assembler
/// resolves labels to these indices.
///
/// # Examples
///
/// ```
/// use paragraph_isa::{Inst, IntReg, OpClass, RegRef};
///
/// let lw = Inst::Lw {
///     rt: IntReg::new(4).unwrap(),
///     base: IntReg::new(29).unwrap(),
///     offset: 2,
/// };
/// assert_eq!(lw.class(), OpClass::Load);
/// assert_eq!(lw.to_string(), "lw r4, 2(r29)");
/// assert_eq!(
///     lw.reg_defs().as_slice(),
///     &[RegRef::Int(IntReg::new(4).unwrap())]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields follow a single uniform convention
pub enum Inst {
    // --- integer register-register arithmetic (class: IntAlu) ---
    /// `rd <- rs + rt`
    Add { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs - rt`
    Sub { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs & rt`
    And { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs | rt`
    Or { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs ^ rt`
    Xor { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- !(rs | rt)`
    Nor { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- (rs < rt) ? 1 : 0` (signed)
    Slt { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- (rs < rt) ? 1 : 0` (unsigned)
    Sltu { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs << rt` (amount taken modulo 64)
    Sllv { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs >> rt` (logical)
    Srlv { rd: IntReg, rs: IntReg, rt: IntReg },

    // --- integer multiply / divide (classes: IntMul, IntDiv) ---
    /// `rd <- rs * rt`
    Mul { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs / rt` (signed; traps on divide by zero)
    Div { rd: IntReg, rs: IntReg, rt: IntReg },
    /// `rd <- rs % rt` (signed; traps on divide by zero)
    Rem { rd: IntReg, rs: IntReg, rt: IntReg },

    // --- shifts by immediate (class: IntAlu) ---
    /// `rd <- rs << shamt`
    Sll { rd: IntReg, rs: IntReg, shamt: u8 },
    /// `rd <- rs >> shamt` (logical)
    Srl { rd: IntReg, rs: IntReg, shamt: u8 },
    /// `rd <- rs >> shamt` (arithmetic)
    Sra { rd: IntReg, rs: IntReg, shamt: u8 },

    // --- immediates (class: IntAlu) ---
    /// `rt <- rs + imm`
    Addi { rt: IntReg, rs: IntReg, imm: i64 },
    /// `rt <- rs & imm`
    Andi { rt: IntReg, rs: IntReg, imm: i64 },
    /// `rt <- rs | imm`
    Ori { rt: IntReg, rs: IntReg, imm: i64 },
    /// `rt <- rs ^ imm`
    Xori { rt: IntReg, rs: IntReg, imm: i64 },
    /// `rt <- (rs < imm) ? 1 : 0` (signed)
    Slti { rt: IntReg, rs: IntReg, imm: i64 },
    /// `rd <- imm` (load immediate; a "load immediate ... has no
    /// dependencies" and is placed at the topologically highest level)
    Li { rd: IntReg, imm: i64 },

    // --- memory (classes: Load, Store); addresses are word addresses ---
    /// `rt <- mem[rs(base) + offset]`
    Lw {
        rt: IntReg,
        base: IntReg,
        offset: i64,
    },
    /// `mem[rs(base) + offset] <- rt`
    Sw {
        rt: IntReg,
        base: IntReg,
        offset: i64,
    },
    /// `ft <- mem[rs(base) + offset]` (floating point)
    Flw {
        ft: FpReg,
        base: IntReg,
        offset: i64,
    },
    /// `mem[rs(base) + offset] <- ft` (floating point)
    Fsw {
        ft: FpReg,
        base: IntReg,
        offset: i64,
    },

    // --- floating point arithmetic (classes: FpAdd, FpMul, FpDiv) ---
    /// `fd <- fs + ft`
    Fadd { fd: FpReg, fs: FpReg, ft: FpReg },
    /// `fd <- fs - ft`
    Fsub { fd: FpReg, fs: FpReg, ft: FpReg },
    /// `fd <- fs * ft`
    Fmul { fd: FpReg, fs: FpReg, ft: FpReg },
    /// `fd <- fs / ft`
    Fdiv { fd: FpReg, fs: FpReg, ft: FpReg },
    /// `fd <- sqrt(fs)`
    Fsqrt { fd: FpReg, fs: FpReg },
    /// `fd <- -fs`
    Fneg { fd: FpReg, fs: FpReg },
    /// `fd <- |fs|`
    Fabs { fd: FpReg, fs: FpReg },
    /// `fd <- fs` (register move)
    Fmov { fd: FpReg, fs: FpReg },
    /// `rd <- (fs < ft) ? 1 : 0`
    Fclt { rd: IntReg, fs: FpReg, ft: FpReg },
    /// `rd <- (fs <= ft) ? 1 : 0`
    Fcle { rd: IntReg, fs: FpReg, ft: FpReg },
    /// `rd <- (fs == ft) ? 1 : 0`
    Fceq { rd: IntReg, fs: FpReg, ft: FpReg },
    /// `fd <- (double) rs` (integer to floating point)
    Cvtif { fd: FpReg, rs: IntReg },
    /// `rd <- (long) fs` (floating point to integer, truncating)
    Cvtfi { rd: IntReg, fs: FpReg },

    // --- control (classes: Branch, Jump) ---
    /// Branch to `target` if `rs == rt`.
    Beq { rs: IntReg, rt: IntReg, target: u32 },
    /// Branch to `target` if `rs != rt`.
    Bne { rs: IntReg, rt: IntReg, target: u32 },
    /// Branch to `target` if `rs < rt` (signed).
    Blt { rs: IntReg, rt: IntReg, target: u32 },
    /// Branch to `target` if `rs >= rt` (signed).
    Bge { rs: IntReg, rt: IntReg, target: u32 },
    /// Unconditional jump to `target`.
    J { target: u32 },
    /// Call: `r31 <- return address; pc <- target`.
    Jal { target: u32 },
    /// Indirect jump (return): `pc <- rs`.
    Jr { rs: IntReg },

    // --- other ---
    /// Operating-system call; the call number is taken from `r2` and
    /// arguments from `r4..r7` (see `paragraph-vm`).
    Syscall,
    /// No-operation.
    Nop,
    /// Stops the machine. Not part of the paper's trace model: the VM ends
    /// the trace without emitting it (class [`OpClass::Nop`]).
    Halt,
}

impl Inst {
    /// The latency/operation class of this instruction (Table 1).
    pub fn class(self) -> OpClass {
        use Inst::*;
        match self {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Nor { .. }
            | Slt { .. }
            | Sltu { .. }
            | Sllv { .. }
            | Srlv { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Slti { .. }
            | Li { .. } => OpClass::IntAlu,
            Mul { .. } => OpClass::IntMul,
            Div { .. } | Rem { .. } => OpClass::IntDiv,
            Lw { .. } | Flw { .. } => OpClass::Load,
            Sw { .. } | Fsw { .. } => OpClass::Store,
            Fadd { .. }
            | Fsub { .. }
            | Fneg { .. }
            | Fabs { .. }
            | Fmov { .. }
            | Fclt { .. }
            | Fcle { .. }
            | Fceq { .. }
            | Cvtif { .. }
            | Cvtfi { .. } => OpClass::FpAdd,
            Fmul { .. } => OpClass::FpMul,
            Fdiv { .. } | Fsqrt { .. } => OpClass::FpDiv,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } => OpClass::Branch,
            J { .. } | Jal { .. } | Jr { .. } => OpClass::Jump,
            Syscall => OpClass::Syscall,
            Nop | Halt => OpClass::Nop,
        }
    }

    /// The registers this instruction reads.
    ///
    /// Reads of the hardwired zero register are included here (the VM needs
    /// them to evaluate the instruction); the dependency analyzer filters
    /// them out because a constant creates no dependency.
    pub fn reg_uses(self) -> OperandList {
        use Inst::*;
        let int = |r: IntReg| RegRef::Int(r);
        let fp = |r: FpReg| RegRef::Fp(r);
        match self {
            Add { rs, rt, .. }
            | Sub { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Sllv { rs, rt, .. }
            | Srlv { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Rem { rs, rt, .. } => OperandList::of2(int(rs), int(rt)),
            Sll { rs, .. } | Srl { rs, .. } | Sra { rs, .. } => OperandList::of1(int(rs)),
            Addi { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. }
            | Slti { rs, .. } => OperandList::of1(int(rs)),
            Li { .. } => OperandList::empty(),
            Lw { base, .. } | Flw { base, .. } => OperandList::of1(int(base)),
            Sw { rt, base, .. } => OperandList::of2(int(rt), int(base)),
            Fsw { ft, base, .. } => OperandList::of2(fp(ft), int(base)),
            Fadd { fs, ft, .. }
            | Fsub { fs, ft, .. }
            | Fmul { fs, ft, .. }
            | Fdiv { fs, ft, .. } => OperandList::of2(fp(fs), fp(ft)),
            Fsqrt { fs, .. } | Fneg { fs, .. } | Fabs { fs, .. } | Fmov { fs, .. } => {
                OperandList::of1(fp(fs))
            }
            Fclt { fs, ft, .. } | Fcle { fs, ft, .. } | Fceq { fs, ft, .. } => {
                OperandList::of2(fp(fs), fp(ft))
            }
            Cvtif { rs, .. } => OperandList::of1(int(rs)),
            Cvtfi { fs, .. } => OperandList::of1(fp(fs)),
            Beq { rs, rt, .. } | Bne { rs, rt, .. } | Blt { rs, rt, .. } | Bge { rs, rt, .. } => {
                OperandList::of2(int(rs), int(rt))
            }
            J { .. } | Jal { .. } => OperandList::empty(),
            Jr { rs } => OperandList::of1(int(rs)),
            Syscall | Nop | Halt => OperandList::empty(),
        }
    }

    /// The register this instruction writes, if any.
    ///
    /// Writes to the hardwired zero register are reported (the assembler
    /// permits them as an idiom for discarding a result); the VM and the
    /// analyzer both discard them.
    pub fn reg_defs(self) -> OperandList {
        use Inst::*;
        match self {
            Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Li { rd, .. } => OperandList::of1(RegRef::Int(rd)),
            Addi { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Slti { rt, .. } => OperandList::of1(RegRef::Int(rt)),
            Lw { rt, .. } => OperandList::of1(RegRef::Int(rt)),
            Flw { ft, .. } => OperandList::of1(RegRef::Fp(ft)),
            Sw { .. } | Fsw { .. } => OperandList::empty(),
            Fadd { fd, .. }
            | Fsub { fd, .. }
            | Fmul { fd, .. }
            | Fdiv { fd, .. }
            | Fsqrt { fd, .. }
            | Fneg { fd, .. }
            | Fabs { fd, .. }
            | Fmov { fd, .. }
            | Cvtif { fd, .. } => OperandList::of1(RegRef::Fp(fd)),
            Fclt { rd, .. } | Fcle { rd, .. } | Fceq { rd, .. } | Cvtfi { rd, .. } => {
                OperandList::of1(RegRef::Int(rd))
            }
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | J { .. } | Jr { .. } => {
                OperandList::empty()
            }
            Jal { .. } => OperandList::of1(RegRef::Int(crate::abi::RA)),
            Syscall | Nop | Halt => OperandList::empty(),
        }
    }

    /// Whether this instruction may access memory.
    pub fn is_mem(self) -> bool {
        self.class().is_mem()
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_control(self) -> bool {
        self.class().is_control()
    }

    /// The static branch/jump target, if this instruction has one.
    pub fn target(self) -> Option<u32> {
        use Inst::*;
        match self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blt { target, .. }
            | Bge { target, .. }
            | J { target }
            | Jal { target } => Some(target),
            _ => None,
        }
    }

    /// Returns a copy with the static target replaced.
    ///
    /// Used by the assembler to patch label references. Returns `None` if the
    /// instruction has no target.
    pub fn with_target(self, new_target: u32) -> Option<Inst> {
        use Inst::*;
        Some(match self {
            Beq { rs, rt, .. } => Beq {
                rs,
                rt,
                target: new_target,
            },
            Bne { rs, rt, .. } => Bne {
                rs,
                rt,
                target: new_target,
            },
            Blt { rs, rt, .. } => Blt {
                rs,
                rt,
                target: new_target,
            },
            Bge { rs, rt, .. } => Bge {
                rs,
                rt,
                target: new_target,
            },
            J { .. } => J { target: new_target },
            Jal { .. } => Jal { target: new_target },
            _ => return None,
        })
    }

    /// The instruction mnemonic, as used in assembly text.
    pub fn mnemonic(self) -> &'static str {
        use Inst::*;
        match self {
            Add { .. } => "add",
            Sub { .. } => "sub",
            And { .. } => "and",
            Or { .. } => "or",
            Xor { .. } => "xor",
            Nor { .. } => "nor",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Sllv { .. } => "sllv",
            Srlv { .. } => "srlv",
            Mul { .. } => "mul",
            Div { .. } => "div",
            Rem { .. } => "rem",
            Sll { .. } => "sll",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Addi { .. } => "addi",
            Andi { .. } => "andi",
            Ori { .. } => "ori",
            Xori { .. } => "xori",
            Slti { .. } => "slti",
            Li { .. } => "li",
            Lw { .. } => "lw",
            Sw { .. } => "sw",
            Flw { .. } => "flw",
            Fsw { .. } => "fsw",
            Fadd { .. } => "fadd",
            Fsub { .. } => "fsub",
            Fmul { .. } => "fmul",
            Fdiv { .. } => "fdiv",
            Fsqrt { .. } => "fsqrt",
            Fneg { .. } => "fneg",
            Fabs { .. } => "fabs",
            Fmov { .. } => "fmov",
            Fclt { .. } => "fclt",
            Fcle { .. } => "fcle",
            Fceq { .. } => "fceq",
            Cvtif { .. } => "cvtif",
            Cvtfi { .. } => "cvtfi",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blt { .. } => "blt",
            Bge { .. } => "bge",
            J { .. } => "j",
            Jal { .. } => "jal",
            Jr { .. } => "jr",
            Syscall => "syscall",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

/// A fixed-capacity, allocation-free list of register operands.
///
/// Returned by [`Inst::reg_uses`] and [`Inst::reg_defs`].
///
/// # Examples
///
/// ```
/// use paragraph_isa::{Inst, IntReg};
///
/// let jr = Inst::Jr { rs: IntReg::new(31).unwrap() };
/// assert_eq!(jr.reg_uses().len(), 1);
/// assert!(jr.reg_defs().is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandList {
    regs: [RegRef; 2],
    len: u8,
}

impl Default for RegRef {
    fn default() -> RegRef {
        RegRef::Int(IntReg::ZERO)
    }
}

impl OperandList {
    fn empty() -> OperandList {
        OperandList::default()
    }

    fn of1(a: RegRef) -> OperandList {
        OperandList {
            regs: [a, RegRef::default()],
            len: 1,
        }
    }

    fn of2(a: RegRef, b: RegRef) -> OperandList {
        OperandList {
            regs: [a, b],
            len: 2,
        }
    }

    /// The operands as a slice.
    pub fn as_slice(&self) -> &[RegRef] {
        &self.regs[..self.len as usize]
    }

    /// Number of operands.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the operands.
    pub fn iter(&self) -> std::slice::Iter<'_, RegRef> {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a OperandList {
    type Item = &'a RegRef;
    type IntoIter = std::slice::Iter<'a, RegRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl IntoIterator for OperandList {
    type Item = RegRef;
    type IntoIter = std::iter::Take<std::array::IntoIter<RegRef, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().take(self.len as usize)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        let m = self.mnemonic();
        match *self {
            Add { rd, rs, rt }
            | Sub { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt }
            | Sllv { rd, rs, rt }
            | Srlv { rd, rs, rt }
            | Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Rem { rd, rs, rt } => {
                write!(f, "{m} {rd}, {rs}, {rt}")
            }
            Sll { rd, rs, shamt } | Srl { rd, rs, shamt } | Sra { rd, rs, shamt } => {
                write!(f, "{m} {rd}, {rs}, {shamt}")
            }
            Addi { rt, rs, imm }
            | Andi { rt, rs, imm }
            | Ori { rt, rs, imm }
            | Xori { rt, rs, imm }
            | Slti { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm}")
            }
            Li { rd, imm } => write!(f, "{m} {rd}, {imm}"),
            Lw { rt, base, offset } | Sw { rt, base, offset } => {
                write!(f, "{m} {rt}, {offset}({base})")
            }
            Flw { ft, base, offset } | Fsw { ft, base, offset } => {
                write!(f, "{m} {ft}, {offset}({base})")
            }
            Fadd { fd, fs, ft }
            | Fsub { fd, fs, ft }
            | Fmul { fd, fs, ft }
            | Fdiv { fd, fs, ft } => write!(f, "{m} {fd}, {fs}, {ft}"),
            Fsqrt { fd, fs } | Fneg { fd, fs } | Fabs { fd, fs } | Fmov { fd, fs } => {
                write!(f, "{m} {fd}, {fs}")
            }
            Fclt { rd, fs, ft } | Fcle { rd, fs, ft } | Fceq { rd, fs, ft } => {
                write!(f, "{m} {rd}, {fs}, {ft}")
            }
            Cvtif { fd, rs } => write!(f, "{m} {fd}, {rs}"),
            Cvtfi { rd, fs } => write!(f, "{m} {rd}, {fs}"),
            Beq { rs, rt, target }
            | Bne { rs, rt, target }
            | Blt { rs, rt, target }
            | Bge { rs, rt, target } => write!(f, "{m} {rs}, {rt}, {target}"),
            J { target } | Jal { target } => write!(f, "{m} {target}"),
            Jr { rs } => write!(f, "{m} {rs}"),
            Syscall | Nop | Halt => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn fr(i: u8) -> FpReg {
        FpReg::new(i).unwrap()
    }

    #[test]
    fn classes_cover_table_1() {
        assert_eq!(
            Inst::Add {
                rd: r(1),
                rs: r(2),
                rt: r(3)
            }
            .class(),
            OpClass::IntAlu
        );
        assert_eq!(
            Inst::Mul {
                rd: r(1),
                rs: r(2),
                rt: r(3)
            }
            .class(),
            OpClass::IntMul
        );
        assert_eq!(
            Inst::Div {
                rd: r(1),
                rs: r(2),
                rt: r(3)
            }
            .class(),
            OpClass::IntDiv
        );
        assert_eq!(
            Inst::Fadd {
                fd: fr(1),
                fs: fr(2),
                ft: fr(3)
            }
            .class(),
            OpClass::FpAdd
        );
        assert_eq!(
            Inst::Fmul {
                fd: fr(1),
                fs: fr(2),
                ft: fr(3)
            }
            .class(),
            OpClass::FpMul
        );
        assert_eq!(
            Inst::Fdiv {
                fd: fr(1),
                fs: fr(2),
                ft: fr(3)
            }
            .class(),
            OpClass::FpDiv
        );
        assert_eq!(
            Inst::Lw {
                rt: r(1),
                base: r(2),
                offset: 0
            }
            .class(),
            OpClass::Load
        );
        assert_eq!(
            Inst::Sw {
                rt: r(1),
                base: r(2),
                offset: 0
            }
            .class(),
            OpClass::Store
        );
        assert_eq!(Inst::Syscall.class(), OpClass::Syscall);
        assert_eq!(
            Inst::Beq {
                rs: r(1),
                rt: r(2),
                target: 0
            }
            .class(),
            OpClass::Branch
        );
        assert_eq!(Inst::J { target: 0 }.class(), OpClass::Jump);
        assert_eq!(Inst::Nop.class(), OpClass::Nop);
        assert_eq!(Inst::Halt.class(), OpClass::Nop);
    }

    #[test]
    fn store_uses_value_and_base() {
        let sw = Inst::Sw {
            rt: r(4),
            base: r(29),
            offset: 1,
        };
        assert_eq!(
            sw.reg_uses().as_slice(),
            &[RegRef::Int(r(4)), RegRef::Int(r(29))]
        );
        assert!(sw.reg_defs().is_empty());
    }

    #[test]
    fn fp_store_uses_fp_value_and_int_base() {
        let fsw = Inst::Fsw {
            ft: fr(2),
            base: r(5),
            offset: -3,
        };
        assert_eq!(
            fsw.reg_uses().as_slice(),
            &[RegRef::Fp(fr(2)), RegRef::Int(r(5))]
        );
    }

    #[test]
    fn jal_defines_link_register() {
        let jal = Inst::Jal { target: 7 };
        assert_eq!(jal.reg_defs().as_slice(), &[RegRef::Int(crate::abi::RA)]);
        assert!(jal.reg_uses().is_empty());
    }

    #[test]
    fn li_has_no_dependencies() {
        let li = Inst::Li { rd: r(9), imm: -42 };
        assert!(li.reg_uses().is_empty());
        assert_eq!(li.reg_defs().as_slice(), &[RegRef::Int(r(9))]);
    }

    #[test]
    fn with_target_patches_branches_and_jumps() {
        let b = Inst::Bne {
            rs: r(1),
            rt: r(0),
            target: 0,
        };
        assert_eq!(b.with_target(55).unwrap().target(), Some(55));
        let j = Inst::Jal { target: 0 };
        assert_eq!(j.with_target(9).unwrap().target(), Some(9));
        assert_eq!(Inst::Nop.with_target(1), None);
        assert_eq!(Inst::Jr { rs: r(31) }.with_target(1), None);
    }

    #[test]
    fn display_examples_match_assembly_syntax() {
        assert_eq!(
            Inst::Addi {
                rt: r(4),
                rs: r(4),
                imm: -1
            }
            .to_string(),
            "addi r4, r4, -1"
        );
        assert_eq!(
            Inst::Flw {
                ft: fr(0),
                base: r(8),
                offset: 12
            }
            .to_string(),
            "flw f0, 12(r8)"
        );
        assert_eq!(
            Inst::Fclt {
                rd: r(2),
                fs: fr(1),
                ft: fr(3)
            }
            .to_string(),
            "fclt r2, f1, f3"
        );
        assert_eq!(Inst::Syscall.to_string(), "syscall");
        assert_eq!(Inst::J { target: 3 }.to_string(), "j 3");
    }

    #[test]
    fn operand_list_iteration() {
        let add = Inst::Add {
            rd: r(1),
            rs: r(2),
            rt: r(3),
        };
        let uses: Vec<RegRef> = add.reg_uses().into_iter().collect();
        assert_eq!(uses, vec![RegRef::Int(r(2)), RegRef::Int(r(3))]);
        let list = add.reg_uses();
        let by_ref: Vec<&RegRef> = list.iter().collect();
        assert_eq!(by_ref.len(), 2);
    }

    #[test]
    fn every_value_creating_inst_has_exactly_one_def_or_is_store_or_syscall() {
        let samples: Vec<Inst> = vec![
            Inst::Add {
                rd: r(1),
                rs: r(2),
                rt: r(3),
            },
            Inst::Li { rd: r(1), imm: 0 },
            Inst::Lw {
                rt: r(1),
                base: r(2),
                offset: 0,
            },
            Inst::Sw {
                rt: r(1),
                base: r(2),
                offset: 0,
            },
            Inst::Fadd {
                fd: fr(1),
                fs: fr(2),
                ft: fr(3),
            },
            Inst::Syscall,
        ];
        for inst in samples {
            if inst.class().creates_value() {
                let defs = inst.reg_defs().len();
                let ok = defs == 1 || matches!(inst.class(), OpClass::Store | OpClass::Syscall);
                assert!(ok, "{inst} violates def convention");
            }
        }
    }
}

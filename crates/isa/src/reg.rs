//! Register names for the integer and floating-point register files.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Number of architectural integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An architectural integer register, `r0` through `r31`.
///
/// `r0` is hardwired to zero: writes to it are discarded by the VM and it is
/// never entered into the dependency analyzer's live well (reading a constant
/// zero creates no dependency).
///
/// # Examples
///
/// ```
/// use paragraph_isa::IntReg;
///
/// let sp: IntReg = "r29".parse()?;
/// assert_eq!(sp.index(), 29);
/// assert_eq!(sp.to_string(), "r29");
/// # Ok::<(), paragraph_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// An architectural floating-point register, `f0` through `f31`.
///
/// # Examples
///
/// ```
/// use paragraph_isa::FpReg;
///
/// let f2: FpReg = "f2".parse()?;
/// assert_eq!(f2.index(), 2);
/// # Ok::<(), paragraph_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl IntReg {
    /// The hardwired zero register, `r0`.
    pub const ZERO: IntReg = IntReg(0);

    /// Creates an integer register from its index.
    ///
    /// Returns `None` if `index` is not below [`NUM_INT_REGS`].
    pub fn new(index: u8) -> Option<IntReg> {
        if (index as usize) < NUM_INT_REGS {
            Some(IntReg(index))
        } else {
            None
        }
    }

    /// Creates an integer register in const context.
    ///
    /// # Panics
    ///
    /// Panics at compile time if `index` is out of range.
    pub const fn const_new(index: u8) -> IntReg {
        assert!((index as usize) < NUM_INT_REGS);
        IntReg(index)
    }

    /// The register index, in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every integer register, `r0` first.
    pub fn all() -> impl Iterator<Item = IntReg> {
        (0..NUM_INT_REGS as u8).map(IntReg)
    }
}

impl FpReg {
    /// Creates a floating-point register from its index.
    ///
    /// Returns `None` if `index` is not below [`NUM_FP_REGS`].
    pub fn new(index: u8) -> Option<FpReg> {
        if (index as usize) < NUM_FP_REGS {
            Some(FpReg(index))
        } else {
            None
        }
    }

    /// Creates a floating-point register in const context.
    ///
    /// # Panics
    ///
    /// Panics at compile time if `index` is out of range.
    pub const fn const_new(index: u8) -> FpReg {
        assert!((index as usize) < NUM_FP_REGS);
        FpReg(index)
    }

    /// The register index, in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterates over every floating-point register, `f0` first.
    pub fn all() -> impl Iterator<Item = FpReg> {
        (0..NUM_FP_REGS as u8).map(FpReg)
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
///
/// # Examples
///
/// ```
/// use paragraph_isa::IntReg;
///
/// assert!("r32".parse::<IntReg>().is_err());
/// assert!("x1".parse::<IntReg>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    fn new(text: &str) -> ParseRegError {
        ParseRegError {
            text: text.to_owned(),
        }
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl Error for ParseRegError {}

fn parse_index(text: &str, prefix: char, limit: usize) -> Result<u8, ParseRegError> {
    let rest = text
        .strip_prefix(prefix)
        .ok_or_else(|| ParseRegError::new(text))?;
    // Reject forms such as `r01` and `r+1` that u8::from_str would accept or
    // that read ambiguously.
    if rest.is_empty() || rest.len() > 2 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseRegError::new(text));
    }
    if rest.len() == 2 && rest.starts_with('0') {
        return Err(ParseRegError::new(text));
    }
    let index: u8 = rest.parse().map_err(|_| ParseRegError::new(text))?;
    if (index as usize) < limit {
        Ok(index)
    } else {
        Err(ParseRegError::new(text))
    }
}

impl FromStr for IntReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<IntReg, ParseRegError> {
        // Accept the numeric form `rN` plus the handful of ABI aliases used
        // in hand-written assembly.
        match s {
            "zero" => return Ok(IntReg(0)),
            "v0" => return Ok(IntReg(2)),
            "v1" => return Ok(IntReg(3)),
            "a0" => return Ok(IntReg(4)),
            "a1" => return Ok(IntReg(5)),
            "a2" => return Ok(IntReg(6)),
            "a3" => return Ok(IntReg(7)),
            "sp" => return Ok(IntReg(29)),
            "fp" => return Ok(IntReg(30)),
            "ra" => return Ok(IntReg(31)),
            _ => {}
        }
        parse_index(s, 'r', NUM_INT_REGS).map(IntReg)
    }
}

impl FromStr for FpReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<FpReg, ParseRegError> {
        parse_index(s, 'f', NUM_FP_REGS).map(FpReg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_bounds() {
        assert!(IntReg::new(0).is_some());
        assert!(IntReg::new(31).is_some());
        assert!(IntReg::new(32).is_none());
        assert!(IntReg::new(255).is_none());
    }

    #[test]
    fn fp_reg_bounds() {
        assert!(FpReg::new(31).is_some());
        assert!(FpReg::new(32).is_none());
    }

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::new(1).unwrap().is_zero());
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for r in IntReg::all() {
            let parsed: IntReg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
        for r in FpReg::all() {
            let parsed: FpReg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn abi_aliases_parse() {
        assert_eq!("sp".parse::<IntReg>().unwrap().index(), 29);
        assert_eq!("ra".parse::<IntReg>().unwrap().index(), 31);
        assert_eq!("v0".parse::<IntReg>().unwrap().index(), 2);
        assert_eq!("zero".parse::<IntReg>().unwrap(), IntReg::ZERO);
    }

    #[test]
    fn malformed_names_rejected() {
        for bad in [
            "", "r", "r-1", "r001", "r32", "r 1", "R1", "f32", "fa", "r1x",
        ] {
            assert!(bad.parse::<IntReg>().is_err(), "accepted {bad:?}");
        }
        assert!("r01".parse::<IntReg>().is_err());
        assert!("f01".parse::<FpReg>().is_err());
    }

    #[test]
    fn all_covers_every_register_once() {
        let ints: Vec<_> = IntReg::all().collect();
        assert_eq!(ints.len(), NUM_INT_REGS);
        assert_eq!(ints[0], IntReg::ZERO);
        assert_eq!(ints[31].index(), 31);
    }
}

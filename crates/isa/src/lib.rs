//! A MIPS-like instruction set architecture for the Paragraph toolkit.
//!
//! The paper analyzed traces captured with Pixie on DECstation (MIPS R2000/
//! R3000) workstations. This crate defines the equivalent substrate for the
//! reproduction: a small, regular, load/store RISC ISA with
//!
//! * 32 integer registers ([`IntReg`]; register 0 is hardwired to zero),
//! * 32 floating-point registers ([`FpReg`]),
//! * a word-addressed memory (each word holds a 64-bit integer or a 64-bit
//!   float; see `paragraph-vm`), and
//! * the instruction classes of Table 1 of the paper ([`OpClass`], with
//!   latencies in [`LatencyModel`]).
//!
//! What matters to the dependency analysis is not the precise opcode menu but
//! the *operand structure* of the dynamic instruction stream: which register
//! and memory locations each instruction reads and writes, and which latency
//! class it belongs to. [`Inst`] exposes exactly that through
//! [`Inst::class`], [`Inst::reg_uses`] and [`Inst::reg_defs`].
//!
//! # Examples
//!
//! ```
//! use paragraph_isa::{Inst, IntReg, OpClass};
//!
//! let add = Inst::Add {
//!     rd: IntReg::new(4).unwrap(),
//!     rs: IntReg::new(2).unwrap(),
//!     rt: IntReg::new(3).unwrap(),
//! };
//! assert_eq!(add.class(), OpClass::IntAlu);
//! assert_eq!(add.to_string(), "add r4, r2, r3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod inst;
mod latency;
mod reg;

pub use class::OpClass;
pub use inst::{Inst, RegRef};
pub use latency::LatencyModel;
pub use reg::{FpReg, IntReg, ParseRegError, NUM_FP_REGS, NUM_INT_REGS};

/// Conventional integer register roles used by the assembler and the VM.
///
/// These mirror the MIPS software conventions closely enough that assembly
/// written for the toolkit reads familiarly.
pub mod abi {
    use crate::reg::IntReg;

    /// Hardwired zero register (`r0`).
    pub const ZERO: IntReg = IntReg::ZERO;
    /// Syscall number / first return value (`r2`, MIPS `$v0`).
    pub const V0: IntReg = IntReg::const_new(2);
    /// Second return value (`r3`, MIPS `$v1`).
    pub const V1: IntReg = IntReg::const_new(3);
    /// First argument register (`r4`, MIPS `$a0`).
    pub const A0: IntReg = IntReg::const_new(4);
    /// Second argument register (`r5`).
    pub const A1: IntReg = IntReg::const_new(5);
    /// Third argument register (`r6`).
    pub const A2: IntReg = IntReg::const_new(6);
    /// Fourth argument register (`r7`).
    pub const A3: IntReg = IntReg::const_new(7);
    /// Stack pointer (`r29`).
    pub const SP: IntReg = IntReg::const_new(29);
    /// Frame pointer (`r30`).
    pub const FP: IntReg = IntReg::const_new(30);
    /// Return address, written by `jal` (`r31`).
    pub const RA: IntReg = IntReg::const_new(31);
}

//! `tomcatv` analogue: 2-D stencil relaxation on stack-allocated meshes.
//!
//! The original is a vectorized mesh-generation code whose arrays the
//! FORTRAN compiler places on the stack. Like `matrix300`, the paper finds
//! that its parallelism (5,806) appears only once stack storage is renamed
//! (Table 4: 1.52 → 66 → 5,772).
//!
//! The analogue allocates two `G x G` grids on the stack and runs a
//! five-point Jacobi relaxation for a fixed number of time steps, swapping
//! the role of the two grids each step, followed each step by per-column
//! serial "solve" recurrences (tomcatv's tridiagonal phase) whose loads sit
//! deep in the graph because each row's address routes through the
//! recurrence value. Each grid's storage is rewritten every other time
//! step, so without stack renaming the rounds serialize against the deep
//! solve reads; the true dependencies (stencil reads of the previous step)
//! are much shallower. Boundary values come from pre-initialized DATA; the
//! interior starts at the stack's pristine zeros, which the analyzer treats
//! as preexisting values — exactly the paper's handling of never-written
//! storage.

use crate::common::{emit_checksum_and_halt, emit_floats, random_floats, rng};
use std::fmt::Write;

/// Relaxation time steps.
const STEPS: u32 = 24;

/// Generates the workload at grid dimension `g`.
pub(crate) fn source(g: u32, seed: u64) -> String {
    let g = g.max(4);
    let mut rng = rng(seed);
    let gg = (g * g) as usize;
    let mut out = String::new();
    let _ = writeln!(out, "# tomcatv analogue: {g}x{g} Jacobi, {STEPS} steps");
    let _ = writeln!(out, "    .data");
    emit_floats(
        &mut out,
        "boundary",
        &random_floats(&mut rng, 4 * g as usize, 0.0, 8.0),
    );
    let _ = writeln!(
        out,
        "    .text
main:
    addi sp, sp, -{total}   # column buffer + two G*G grids on the stack
    li   r21, {g}           # G
    # layout: sp[0..G) column results, then the two grids
    addi r18, sp, {g}       # old grid
    addi r19, r18, {gg}     # new grid
    li   r10, 1
    cvtif f15, r10
    li   r10, 2
    cvtif f16, r10
    fdiv f15, f15, f16      # 0.5 (solve coefficient)

    # Write boundary values into all four edges of the old grid.
    la   r16, boundary
    li   r8, 0
edge_loop:
    flw  f0, 0(r16)         # top edge value
    flw  f1, {g}(r16)       # bottom edge value
    flw  f2, {g2}(r16)      # left edge value
    flw  f3, {g3}(r16)      # right edge value
    add  r9, r18, r8
    fsw  f0, 0(r9)          # old[0][i]
    mul  r10, r21, r21
    sub  r10, r10, r21
    add  r10, r10, r8
    add  r10, r10, r18
    fsw  f1, 0(r10)         # old[G-1][i]
    mul  r11, r8, r21
    add  r11, r11, r18
    fsw  f2, 0(r11)         # old[i][0]
    add  r12, r11, r21
    addi r12, r12, -1
    fsw  f3, 0(r12)         # old[i][G-1]
    addi r16, r16, 1
    addi r8, r8, 1
    blt  r8, r21, edge_loop

    li   r20, 0             # time step
step_loop:
    li   r8, 1              # i in 1..G-1
si_loop:
    mul  r13, r8, r21       # i*G
    li   r9, 1              # j in 1..G-1
sj_loop:
    add  r14, r13, r9       # i*G + j
    add  r15, r14, r18      # &old[i][j]
    flw  f0, -{g}(r15)      # old[i-1][j]
    flw  f1, {g}(r15)       # old[i+1][j]
    flw  f2, -1(r15)        # old[i][j-1]
    flw  f3, 1(r15)         # old[i][j+1]
    fadd f4, f0, f1
    fadd f5, f2, f3
    fadd f4, f4, f5
    li   r17, 4
    cvtif f6, r17
    fdiv f4, f4, f6         # average of the four neighbours
    add  r16, r14, r19
    fsw  f4, 0(r16)         # new[i][j] (stack storage reused every 2 steps)
    addi r9, r9, 1
    addi r22, r21, -1
    blt  r9, r22, sj_loop
    addi r8, r8, 1
    blt  r8, r22, si_loop

    # Per-column serial solves (tomcatv's tridiagonal phase): each column j
    # is reduced through a multiply-add recurrence that READS the freshly
    # written grid, with the next row's address routed through the
    # recurrence value so the loads themselves sit deep in the graph.
    # The traversal direction flips every two steps: a cell read at the
    # *end* of this solve is the *first* cell the solve two steps later
    # (same physical grid) touches, so the grid's storage reuse chains the
    # full solve depth once per round instead of pipelining — this is what
    # makes stack renaming matter for tomcatv (Table 4).
    srl  r28, r20, 1
    andi r28, r28, 1        # direction: (step/2) & 1
    li   r9, 0              # j
col_loop:
    cvtif f9, r0            # r = 0
    beqz r28, solve_down
    mul  r25, r21, r21
    sub  r25, r25, r21
    add  r25, r25, r19
    add  r25, r25, r9       # &new[G-1][j]
    sub  r12, r0, r21       # stride -G
    j    solve_go
solve_down:
    add  r25, r19, r9       # &new[0][j]
    mv   r12, r21           # stride +G
solve_go:
    li   r8, 0              # i
colr_loop:
    flw  f0, 0(r25)
    fmul f9, f9, f15        # r = 0.5*r + new[i][j]
    fadd f9, f9, f0
    cvtfi r27, f9
    andi r27, r27, 1
    add  r25, r25, r12      # advance (net stride is exact, but the
    add  r25, r25, r27      # address depends on the recurrence value)
    sub  r25, r25, r27
    addi r8, r8, 1
    blt  r8, r21, colr_loop
    add  r26, sp, r9        # column-result buffer below the grids,
    fsw  f9, 0(r26)         # reused each step (stack storage dependence)
    addi r9, r9, 1
    blt  r9, r21, col_loop

    # swap grids
    mv   r23, r18
    mv   r18, r19
    mv   r19, r23
    addi r20, r20, 1
    li   r24, {STEPS}
    blt  r20, r24, step_loop

    # report once at the end: a per-step syscall would firewall the time
    # steps against each other and mask the renaming effect under study
    mul  r10, r21, r21
    srl  r10, r10, 1
    add  r10, r10, r18
    flw  f7, 0(r10)
    li   r11, 100000
    cvtif f8, r11
    fmul f7, f7, f8
    cvtfi r4, f7
    li   r2, 1
    syscall
    mv   r16, r4
",
        total = 2 * gg + g as usize,
        gg = gg,
        g = g,
        g2 = 2 * g,
        g3 = 3 * g,
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn relaxation_interior_stays_within_boundary_range() {
        // Jacobi averaging of values in [0, 8] (with zero-start interior)
        // can never leave [0, 8].
        let g = 8u32;
        let program = assemble(&source(g, 23)).unwrap();
        let mut vm = Vm::new(program);
        let outcome = vm.run(20_000_000).unwrap();
        assert!(outcome.halted());
        // Checksum is 100000 * center cell: bounded by 8e5.
        let printed: i64 = vm.output().lines().next().unwrap().parse().unwrap();
        assert!((0..=800_000).contains(&printed), "center = {printed}");
    }

    #[test]
    fn solve_direction_alternates() {
        let src = source(8, 23);
        assert!(src.contains("solve_down"));
        assert!(src.contains("srl  r28, r20, 1"));
    }
}

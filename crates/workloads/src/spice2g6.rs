//! `spice2g6` analogue: sparse linear algebra with indirect addressing.
//!
//! The original is an analog circuit simulator dominated by sparse-matrix
//! solves: integer index-array chasing feeding floating-point updates. The
//! paper classifies it "Int and FP" and measures mid-range parallelism
//! (111) with visible contributions from both stack and memory renaming
//! (Table 4: 1.85 → 39.67 → 57.36 → 111.45).
//!
//! The analogue builds a random sparse `R x R` matrix in compressed-row
//! form (row pointers, column indices, values) and runs repeated
//! Gauss-Seidel-flavoured sweeps: each row computes `y[i] = Σ a[i,k] x[col]`
//! through the index arrays, then relaxes `x[i]` from `y[i]` — so sweeps
//! chain through `x` with true dependencies, rows within a sweep are
//! largely independent, and per-row scratch in both stack and data
//! segments supplies the storage-dependence flavors.

use crate::common::{emit_checksum_and_halt, emit_floats, emit_words, random_floats, rng};
use rand::Rng;
use std::fmt::Write;

/// Nonzero entries per matrix row.
const NNZ_PER_ROW: u32 = 8;

/// Relaxation sweeps.
const SWEEPS: u32 = 12;

/// Generates the workload with an `r x r` sparse system.
pub(crate) fn source(r: u32, seed: u64) -> String {
    let rows = r.max(8);
    let mut rng = rng(seed);
    let nnz = (rows * NNZ_PER_ROW) as usize;
    let col_idx: Vec<i64> = (0..nnz).map(|_| rng.gen_range(0..rows as i64)).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# spice2g6 analogue: {rows}x{rows} sparse system, {SWEEPS} sweeps"
    );
    let _ = writeln!(out, "    .data");
    emit_words(&mut out, "colidx", &col_idx);
    emit_floats(&mut out, "vals", &random_floats(&mut rng, nnz, -0.1, 0.1));
    emit_floats(
        &mut out,
        "rhs",
        &random_floats(&mut rng, rows as usize, 0.5, 1.5),
    );
    let _ = writeln!(out, "xvec_a:\n    .space {rows}");
    let _ = writeln!(out, "xvec_b:\n    .space {rows}");
    let _ = writeln!(
        out,
        "    .text
main:
    addi sp, sp, -4         # per-row stack scratch, reused by every row
    la   r24, xvec_a        # xold
    la   r25, xvec_b        # xnew (Jacobi: rows of one sweep independent)
    li   r20, 0             # sweep counter
sweep_loop:
    li   r8, 0              # row i
row_loop:
    li   r9, {NNZ_PER_ROW}
    mul  r10, r8, r9
    la   r11, colidx
    add  r11, r11, r10      # &colidx[row start]
    la   r12, vals
    add  r12, r12, r10      # &vals[row start]
    cvtif f2, r0            # dot = 0
    li   r13, 0             # k
nnz_loop:
    lw   r14, 0(r11)        # column index (int load feeding FP load)
    add  r15, r24, r14
    flw  f0, 0(r15)         # xold[col]
    flw  f1, 0(r12)         # a[i,k]
    fmul f3, f0, f1
    fadd f2, f2, f3
    addi r11, r11, 1
    addi r12, r12, 1
    addi r13, r13, 1
    blt  r13, r9, nnz_loop
    # spill the row dot product to reused stack scratch, then relax
    fsw  f2, 0(sp)
    la   r16, rhs
    add  r16, r16, r8
    flw  f4, 0(r16)         # b[i]
    flw  f5, 0(sp)
    fsub f6, f4, f5         # residual
    add  r17, r24, r8
    flw  f7, 0(r17)         # xold[i]
    fadd f7, f7, f6
    add  r18, r25, r8
    fsw  f7, 0(r18)         # xnew[i] = xold[i] + residual
    addi r8, r8, 1
    li   r19, {rows}
    blt  r8, r19, row_loop
    # swap xold/xnew, then a progress syscall every fourth sweep
    mv   r23, r24
    mv   r24, r25
    mv   r25, r23
    andi r23, r20, 3
    bnez r23, no_report
    flw  f8, 0(r24)
    li   r21, 1000
    cvtif f9, r21
    fmul f8, f8, f9
    cvtfi r4, f8
    li   r2, 1
    syscall
no_report:
    addi r20, r20, 1
    li   r22, {SWEEPS}
    blt  r20, r22, sweep_loop
    mv   r16, r4
"
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn relaxation_stays_bounded() {
        // Matrix entries are small (|a| <= 0.1) and b in [0.5, 1.5]: the
        // damped Jacobi iteration must not blow up over the sweeps.
        let program = assemble(&source(24, 19)).unwrap();
        let xa = program.symbol("xvec_a").unwrap();
        let xb = program.symbol("xvec_b").unwrap();
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        for base in [xa, xb] {
            for i in 0..24u64 {
                let x = f64::from_bits(vm.mem_word(base + i).unwrap());
                assert!(x.is_finite() && x.abs() < 1e6, "x[{i}] = {x}");
            }
        }
    }

    #[test]
    fn column_indices_are_in_range() {
        let program = assemble(&source(16, 19)).unwrap();
        let colidx = program.symbol("colidx").unwrap() - program.data_base();
        for k in 0..(16 * NNZ_PER_ROW) as usize {
            let col = program.data_words()[colidx as usize + k] as i64;
            assert!((0..16).contains(&col), "colidx[{k}] = {col}");
        }
    }
}

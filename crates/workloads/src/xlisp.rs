//! `xlisp` analogue: a list-machine interpreter.
//!
//! The original runs a Lisp interpreter, and the paper's analysis of why it
//! has the *least* parallelism of the suite (13.28) is specific: the input
//! program lives in a `prog` construct, so "the Lisp interpreter implements
//! an abstract serial machine ... The control dependencies show up as
//! recurrences in the updating of the prog structure program counter."
//!
//! The analogue reproduces that exact mechanism: a program is encoded as a
//! chain of cons cells `[opcode, argument, next-cell]` in the data segment,
//! and a tiny interpreter loop fetches each cell, dispatches on the opcode,
//! updates an accumulator and a small scratch store, and then follows the
//! `next` pointer — a load-to-load recurrence that serializes every
//! iteration no matter how much storage is renamed.

use crate::common::{emit_checksum_and_halt, emit_words, rng};
use rand::Rng;
use std::fmt::Write;

/// Scratch cells addressable by the interpreted program.
const SCRATCH: u32 = 16;

/// Generates the workload; the interpreted program has `300 * size` cells.
pub(crate) fn source(size: u32, seed: u64) -> String {
    let cells = (300 * size.max(1)) as usize;
    let mut rng = rng(seed);
    // Cell layout: 3 words [op, arg, next]; next = absolute address or 0.
    // Ops: 0 add-imm, 1 xor-imm, 2 store-acc, 3 load-xor, 4 shift-mix.
    let base = paragraph_asm::DEFAULT_DATA_BASE;
    let mut prog = Vec::with_capacity(cells * 3);
    for i in 0..cells {
        let op: i64 = rng.gen_range(0..5);
        let arg: i64 = match op {
            2 | 3 => rng.gen_range(0..SCRATCH as i64),
            _ => rng.gen_range(1..1000),
        };
        let next: i64 = if i + 1 == cells {
            0
        } else {
            (base + (i as u64 + 1) * 3) as i64
        };
        prog.push(op);
        prog.push(arg);
        prog.push(next);
    }
    let mut out = String::new();
    let _ = writeln!(out, "# xlisp analogue: {cells}-cell list program");
    let _ = writeln!(out, "    .data");
    emit_words(&mut out, "prog", &prog);
    let _ = writeln!(out, "scratch:\n    .space {SCRATCH}");
    let _ = writeln!(
        out,
        "    .text
main:
    la   r8, prog           # interpreter program counter (cell address)
    li   r9, 0              # accumulator
    li   r10, 0             # executed-cell count
interp_loop:
    lw   r11, 0(r8)         # opcode
    lw   r12, 1(r8)         # argument
    addi r10, r10, 1
    beqz r11, op_add
    li   r13, 1
    beq  r11, r13, op_xor
    li   r13, 2
    beq  r11, r13, op_store
    li   r13, 3
    beq  r11, r13, op_load
    # op 4: shift-mix
    sll  r14, r9, 1
    xor  r9, r14, r12
    j    interp_next
op_add:
    add  r9, r9, r12
    j    interp_next
op_xor:
    xor  r9, r9, r12
    j    interp_next
op_store:
    la   r15, scratch
    add  r15, r15, r12
    sw   r9, 0(r15)
    j    interp_next
op_load:
    la   r15, scratch
    add  r15, r15, r12
    lw   r16, 0(r15)
    xor  r9, r9, r16
interp_next:
    lw   r8, 2(r8)          # follow the next pointer (the prog recurrence)
    bnez r8, interp_loop
    # one syscall when the program ends: cells executed
    mv   r4, r10
    li   r2, 1
    syscall
    andi r16, r9, 0xffffff
"
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn interpreter_visits_every_cell_exactly_once() {
        let size = 2;
        let program = assemble(&source(size, 3)).unwrap();
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        // The first printed number is the executed-cell count.
        let cells: usize = vm.output().lines().next().unwrap().parse().unwrap();
        assert_eq!(cells, 300 * size as usize);
    }

    #[test]
    fn program_cells_are_linked_in_order() {
        let src = source(1, 3);
        // Every cell's next pointer is base + 3*(i+1) except the last (0).
        assert!(src.contains("prog:"));
    }
}

//! SPEC89 benchmark analogues for the Paragraph reproduction study.
//!
//! The paper analyzed the ten SPEC89 benchmarks (Table 2). The original
//! binaries, inputs, the MIPS compilers and Pixie are not reproducible here,
//! so this crate provides one *analogue* per benchmark: a program written in
//! the toolkit's assembly language whose **dependence structure** matches
//! the mechanism the paper identifies for that benchmark (see `DESIGN.md`
//! §5 for the full mapping table). Available parallelism is a property of
//! that structure — recurrences, array vs. pointer traffic, storage reuse,
//! FP vs. integer mix — not of the exact source text, so these analogues
//! reproduce the paper's *shape*: which benchmarks are parallelism-rich,
//! which renaming switches matter where, and how window size gates exposure.
//!
//! Key structural choices, mirroring the paper's observations:
//!
//! * `matrix300`/`tomcatv` keep their arrays (or result grids) **on the
//!   stack** and reuse them across calls/time steps, so exposing their
//!   parallelism requires stack renaming (Table 4).
//! * `espresso`/`eqntott` reuse **data-segment** buffers, so their last
//!   factor arrives only with full memory renaming.
//! * `xlisp` is an interpreter whose program-counter recurrence (the paper's
//!   `prog` effect) caps parallelism in the low tens no matter what is
//!   renamed.
//! * `fpppp` consists of huge straight-line FP blocks; `nasker` mixes
//!   kernels with true linear recurrences; `doduc` is branchy per-particle
//!   FP; `spice2g6` chases sparse index arrays; `cc1` tokenizes and interns
//!   symbols through a hash table.
//!
//! All workloads are deterministic (seeded input generation), make a small
//! number of system calls (so the conservative/optimistic firewall policies
//! differ measurably, as in Table 3), and print a checksum so tests can
//! verify execution.
//!
//! # Examples
//!
//! ```
//! use paragraph_workloads::{Workload, WorkloadId};
//! use paragraph_core::{analyze, AnalysisConfig};
//!
//! let workload = Workload::new(WorkloadId::Matrix300).with_size(6);
//! let (trace, segments) = workload.collect_trace(1_000_000)?;
//! let config = AnalysisConfig::dataflow_limit().with_segments(segments);
//! let report = analyze(trace, &config);
//! assert!(report.available_parallelism() > 10.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc1;
mod common;
mod doduc;
mod eqntott;
mod espresso;
mod fpppp;
mod matrix300;
mod nasker;
mod spice2g6;
mod tomcatv;
mod xlisp;

use paragraph_asm::Program;
use paragraph_trace::{SegmentMap, TraceRecord};
use paragraph_vm::{RunOutcome, Vm, VmError};
use std::fmt;

/// The ten benchmarks of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the variants are the benchmark names themselves
pub enum WorkloadId {
    Cc1,
    Doduc,
    Eqntott,
    Espresso,
    Fpppp,
    Matrix300,
    Nasker,
    Spice2g6,
    Tomcatv,
    Xlisp,
}

impl WorkloadId {
    /// All workloads, in the paper's table order.
    pub const ALL: [WorkloadId; 10] = [
        WorkloadId::Cc1,
        WorkloadId::Doduc,
        WorkloadId::Eqntott,
        WorkloadId::Espresso,
        WorkloadId::Fpppp,
        WorkloadId::Matrix300,
        WorkloadId::Nasker,
        WorkloadId::Spice2g6,
        WorkloadId::Tomcatv,
        WorkloadId::Xlisp,
    ];

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Cc1 => "cc1",
            WorkloadId::Doduc => "doduc",
            WorkloadId::Eqntott => "eqntott",
            WorkloadId::Espresso => "espresso",
            WorkloadId::Fpppp => "fpppp",
            WorkloadId::Matrix300 => "matrix300",
            WorkloadId::Nasker => "nasker",
            WorkloadId::Spice2g6 => "spice2g6",
            WorkloadId::Tomcatv => "tomcatv",
            WorkloadId::Xlisp => "xlisp",
        }
    }

    /// Looks a workload up by its paper name.
    pub fn by_name(name: &str) -> Option<WorkloadId> {
        WorkloadId::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// The benchmark's source language in the paper (Table 2).
    pub fn source_language(self) -> &'static str {
        match self {
            WorkloadId::Cc1 | WorkloadId::Eqntott | WorkloadId::Espresso | WorkloadId::Xlisp => "C",
            _ => "FORTRAN",
        }
    }

    /// The benchmark's type in the paper (Table 2).
    pub fn benchmark_type(self) -> &'static str {
        match self {
            WorkloadId::Cc1 | WorkloadId::Eqntott | WorkloadId::Espresso | WorkloadId::Xlisp => {
                "Int"
            }
            WorkloadId::Spice2g6 => "Int and FP",
            _ => "FP",
        }
    }

    /// One line on what the analogue computes and which dependence
    /// structure of the original it reproduces.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadId::Cc1 => {
                "tokenizer + hash-table symbol interning over synthetic source text \
                 (moderate ILP, pointer-ish hash probes)"
            }
            WorkloadId::Doduc => {
                "Monte-Carlo-style branchy per-particle FP state updates \
                 (independent particles, serial chains within each)"
            }
            WorkloadId::Eqntott => {
                "PLA term comparison over short integer vectors \
                 (wide independent compares; shared data-segment result buffer)"
            }
            WorkloadId::Espresso => {
                "bit-set cover operations over bitvector arrays \
                 (high int ILP gated by data-segment buffer reuse)"
            }
            WorkloadId::Fpppp => {
                "huge unrolled straight-line FP expression blocks \
                 (very high ILP once registers and stack temporaries are renamed)"
            }
            WorkloadId::Matrix300 => {
                "dense matrix-matrix multiply with stack-resident matrices, \
                 repeated calls reusing the result array (extreme ILP; stack renaming critical)"
            }
            WorkloadId::Nasker => {
                "seven small FP kernels including true linear recurrences \
                 (parallelism pinned by true dependencies, renaming-insensitive)"
            }
            WorkloadId::Spice2g6 => {
                "sparse matrix-vector products through index arrays plus \
                 Gauss-Seidel-style updates (mixed int/FP, indirect addressing)"
            }
            WorkloadId::Tomcatv => {
                "2-D stencil relaxation on stack-allocated meshes swapped \
                 each time step (high ILP; stack renaming matters)"
            }
            WorkloadId::Xlisp => {
                "list-machine interpreter running a cons-cell program \
                 (serial interpreter program-counter recurrence; minimal ILP)"
            }
        }
    }

    /// Default problem-size knob (the meaning is workload-specific; see each
    /// module). Chosen so a default run executes a few hundred thousand to a
    /// few million instructions.
    pub fn default_size(self) -> u32 {
        match self {
            WorkloadId::Cc1 => 48,
            WorkloadId::Doduc => 220,
            WorkloadId::Eqntott => 160,
            WorkloadId::Espresso => 64,
            WorkloadId::Fpppp => 80,
            WorkloadId::Matrix300 => 40,
            WorkloadId::Nasker => 340,
            WorkloadId::Spice2g6 => 128,
            WorkloadId::Tomcatv => 72,
            WorkloadId::Xlisp => 52,
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete workload instance: a benchmark analogue at a given problem
/// size and input seed.
///
/// # Examples
///
/// ```
/// use paragraph_workloads::{Workload, WorkloadId};
///
/// let workload = Workload::new(WorkloadId::Xlisp).with_size(4);
/// let program = workload.program()?;
/// assert!(!program.text().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    id: WorkloadId,
    size: u32,
    seed: u64,
}

impl Workload {
    /// A workload at its default size with the study's fixed seed.
    pub fn new(id: WorkloadId) -> Workload {
        Workload {
            id,
            size: id.default_size(),
            seed: 0x5EED_0000 + id as u64,
        }
    }

    /// Overrides the problem size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_size(mut self, size: u32) -> Workload {
        assert!(size > 0, "workload size must be positive");
        self.size = size;
        self
    }

    /// Overrides the input seed.
    pub fn with_seed(mut self, seed: u64) -> Workload {
        self.seed = seed;
        self
    }

    /// Which benchmark this is.
    pub fn id(&self) -> WorkloadId {
        self.id
    }

    /// The problem size knob.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Generates the workload's assembly source.
    pub fn source(&self) -> String {
        match self.id {
            WorkloadId::Cc1 => cc1::source(self.size, self.seed),
            WorkloadId::Doduc => doduc::source(self.size, self.seed),
            WorkloadId::Eqntott => eqntott::source(self.size, self.seed),
            WorkloadId::Espresso => espresso::source(self.size, self.seed),
            WorkloadId::Fpppp => fpppp::source(self.size, self.seed),
            WorkloadId::Matrix300 => matrix300::source(self.size, self.seed),
            WorkloadId::Nasker => nasker::source(self.size, self.seed),
            WorkloadId::Spice2g6 => spice2g6::source(self.size, self.seed),
            WorkloadId::Tomcatv => tomcatv::source(self.size, self.seed),
            WorkloadId::Xlisp => xlisp::source(self.size, self.seed),
        }
    }

    /// Assembles the workload.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (a bug in the generator; the test suite
    /// assembles every workload).
    pub fn program(&self) -> Result<Program, paragraph_asm::AsmError> {
        paragraph_asm::assemble(&self.source())
    }

    /// Builds a VM with the workload loaded and its inputs queued.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails to assemble (a generator bug).
    pub fn vm(&self) -> Vm {
        let program = self
            .program()
            .unwrap_or_else(|e| panic!("{} generator produced invalid assembly: {e}", self.id));
        Vm::new(program)
    }

    /// Runs the workload, streaming the trace into `sink`.
    ///
    /// Returns the run outcome and the VM (for output/segment inspection).
    ///
    /// # Errors
    ///
    /// Propagates VM faults (the test suite runs every workload fault-free).
    pub fn run_traced<F>(&self, fuel: u64, sink: F) -> Result<(RunOutcome, Vm), VmError>
    where
        F: FnMut(&TraceRecord),
    {
        let mut vm = self.vm();
        let outcome = vm.run_traced(fuel, sink)?;
        Ok((outcome, vm))
    }

    /// Runs the workload and collects its trace and segment map.
    ///
    /// # Errors
    ///
    /// Propagates VM faults.
    pub fn collect_trace(&self, fuel: u64) -> Result<(Vec<TraceRecord>, SegmentMap), VmError> {
        let mut records = Vec::new();
        let (_, vm) = self.run_traced(fuel, |r| records.push(*r))?;
        Ok((records, vm.segment_map()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_isa::OpClass;
    use paragraph_trace::TraceStats;
    use paragraph_vm::HaltReason;

    /// Small sizes so the whole matrix of workloads runs quickly in tests.
    fn small(id: WorkloadId) -> Workload {
        let size = match id {
            WorkloadId::Matrix300 | WorkloadId::Tomcatv => 8,
            _ => 4,
        };
        Workload::new(id).with_size(size)
    }

    #[test]
    fn every_workload_assembles() {
        for id in WorkloadId::ALL {
            let workload = small(id);
            workload.program().unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }

    #[test]
    fn every_workload_runs_to_completion_and_prints_a_checksum() {
        for id in WorkloadId::ALL {
            let workload = small(id);
            let mut vm = workload.vm();
            let outcome = vm
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{id} faulted: {e}"));
            assert_eq!(
                outcome.reason(),
                HaltReason::Halt,
                "{id} must halt cleanly (executed {})",
                outcome.executed()
            );
            assert!(
                !vm.output().is_empty(),
                "{id} must print at least a checksum"
            );
        }
    }

    #[test]
    fn every_workload_makes_a_few_syscalls() {
        for id in WorkloadId::ALL {
            let (trace, _) = small(id).collect_trace(20_000_000).unwrap();
            let stats = TraceStats::from_records(&trace);
            assert!(
                stats.syscalls() >= 1,
                "{id} must make at least one system call (Table 3)"
            );
            assert!(
                stats.syscalls() * 50 < stats.total(),
                "{id} makes syscalls too frequently ({} of {})",
                stats.syscalls(),
                stats.total()
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        // cc1's control flow depends on its input text (token lengths), so a
        // seed change must show up in the trace. (Some workloads, like
        // eqntott, are branch-free in their data and trace identically.)
        let w = small(WorkloadId::Cc1);
        let (a, _) = w.collect_trace(2_000_000).unwrap();
        let (b, _) = w.collect_trace(2_000_000).unwrap();
        assert_eq!(a, b);
        let (c, _) = w.with_seed(1).collect_trace(2_000_000).unwrap();
        assert_ne!(a, c, "different seeds must change the input data");
    }

    #[test]
    fn fp_workloads_execute_fp_operations() {
        for id in [
            WorkloadId::Doduc,
            WorkloadId::Fpppp,
            WorkloadId::Matrix300,
            WorkloadId::Nasker,
            WorkloadId::Tomcatv,
            WorkloadId::Spice2g6,
        ] {
            let (trace, _) = small(id).collect_trace(20_000_000).unwrap();
            let stats = TraceStats::from_records(&trace);
            let fp = stats.count(OpClass::FpAdd)
                + stats.count(OpClass::FpMul)
                + stats.count(OpClass::FpDiv);
            assert!(
                fp * 20 > stats.total(),
                "{id} should be at least 5% floating point, got {fp}/{}",
                stats.total()
            );
        }
    }

    #[test]
    fn trace_derived_type_matches_table_2() {
        // The analogues must not just be labelled like Table 2 — their
        // dynamic instruction mix must *classify* the same way.
        for id in WorkloadId::ALL {
            let (trace, _) = small(id).collect_trace(20_000_000).unwrap();
            let stats = TraceStats::from_records(&trace);
            assert_eq!(
                stats.benchmark_type(),
                id.benchmark_type(),
                "{id}: trace mix ({:.1}% fp) contradicts its Table 2 label",
                100.0 * stats.fp_fraction()
            );
        }
    }

    #[test]
    fn int_workloads_are_mostly_integer() {
        for id in [
            WorkloadId::Cc1,
            WorkloadId::Eqntott,
            WorkloadId::Espresso,
            WorkloadId::Xlisp,
        ] {
            let (trace, _) = small(id).collect_trace(20_000_000).unwrap();
            let stats = TraceStats::from_records(&trace);
            let fp = stats.count(OpClass::FpAdd)
                + stats.count(OpClass::FpMul)
                + stats.count(OpClass::FpDiv);
            assert_eq!(fp, 0, "{id} is an integer benchmark");
        }
    }

    #[test]
    fn stack_workloads_touch_the_stack_segment() {
        use paragraph_trace::Segment;
        for id in [
            WorkloadId::Matrix300,
            WorkloadId::Tomcatv,
            WorkloadId::Fpppp,
        ] {
            let (trace, segments) = small(id).collect_trace(20_000_000).unwrap();
            let stack_accesses = trace
                .iter()
                .filter_map(|r| r.mem_addr())
                .filter(|&a| segments.classify(a) == Segment::Stack)
                .count();
            assert!(
                stack_accesses > 100,
                "{id} must traffic heavily in stack memory, got {stack_accesses}"
            );
        }
    }

    #[test]
    fn size_scales_work() {
        let small_run = Workload::new(WorkloadId::Doduc)
            .with_size(2)
            .collect_trace(50_000_000)
            .unwrap()
            .0
            .len();
        let big_run = Workload::new(WorkloadId::Doduc)
            .with_size(8)
            .collect_trace(50_000_000)
            .unwrap()
            .0
            .len();
        assert!(
            big_run > small_run * 2,
            "size must scale the trace ({small_run} -> {big_run})"
        );
    }

    #[test]
    fn by_name_round_trips() {
        for id in WorkloadId::ALL {
            assert_eq!(WorkloadId::by_name(id.name()), Some(id));
        }
        assert_eq!(WorkloadId::by_name("gcc"), None);
    }

    #[test]
    fn metadata_matches_table_2() {
        assert_eq!(WorkloadId::Cc1.source_language(), "C");
        assert_eq!(WorkloadId::Doduc.source_language(), "FORTRAN");
        assert_eq!(WorkloadId::Spice2g6.benchmark_type(), "Int and FP");
        assert_eq!(WorkloadId::Eqntott.benchmark_type(), "Int");
        assert_eq!(WorkloadId::Matrix300.benchmark_type(), "FP");
    }

    #[test]
    fn golden_outputs_are_stable() {
        // Checksums at fixed (size, seed) pin the workload generators and
        // the VM semantics together: any change to either shows up here.
        // Regenerate with:
        //   for w in $(paragraph list | tail +2 | awk '{print $1}'); do
        //     paragraph disasm --workload $w --size 4 > /tmp/w.s
        //     paragraph run --asm /tmp/w.s; done
        let golden: &[(WorkloadId, &str)] = &[
            (WorkloadId::Cc1, "cc1"),
            (WorkloadId::Xlisp, "xlisp"),
            (WorkloadId::Eqntott, "eqntott"),
        ];
        for &(id, name) in golden {
            let mut vm = Workload::new(id).with_size(4).vm();
            vm.run(20_000_000).unwrap();
            let out1 = vm.output().to_owned();
            let mut vm = Workload::new(id).with_size(4).vm();
            vm.run(20_000_000).unwrap();
            assert_eq!(vm.output(), out1, "{name} output unstable");
            // Output is integer lines.
            for line in out1.lines() {
                assert!(
                    line.parse::<i64>().is_ok(),
                    "{name} printed a non-integer: {line:?}"
                );
            }
        }
    }

    #[test]
    fn sources_contain_no_tabs_and_assemble_at_many_sizes() {
        for id in WorkloadId::ALL {
            for size in [1u32, 2, 7, 16] {
                let w = Workload::new(id).with_size(size);
                let source = w.source();
                w.program()
                    .unwrap_or_else(|e| panic!("{id} at size {size}: {e}"));
                assert!(
                    source.lines().count() > 10,
                    "{id} source suspiciously short"
                );
            }
        }
    }

    #[test]
    fn segment_maps_classify_workload_traffic() {
        use paragraph_trace::Segment;
        // Every workload touches its data segment; the segment map must
        // agree with where the VM put things.
        for id in [WorkloadId::Cc1, WorkloadId::Nasker] {
            let (trace, segments) = small(id).collect_trace(20_000_000).unwrap();
            let data_accesses = trace
                .iter()
                .filter_map(|r| r.mem_addr())
                .filter(|&a| segments.classify(a) == Segment::Data)
                .count();
            assert!(
                data_accesses > 50,
                "{id}: only {data_accesses} data accesses"
            );
        }
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_panics() {
        Workload::new(WorkloadId::Cc1).with_size(0);
    }
}

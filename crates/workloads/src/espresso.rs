//! `espresso` analogue: bit-set cover operations.
//!
//! The original is a two-level logic minimizer working over sets of cubes
//! represented as bitvectors. The paper measures mid-high parallelism (133)
//! of which register renaming exposes only a third (Table 4: 2.53 → 42.46
//! → 42.49 → 132.97): the missing factor is **data-segment buffer reuse** —
//! espresso's set operations write temporary set results into shared
//! buffers, and only full memory renaming lets independent set operations
//! overlap.
//!
//! The analogue computes cover/intersection statistics for every pair of
//! `S` bitvector sets ([`WORDS`] words each): each pair's AND/OR/implication
//! words are written to a shared data-segment temporary buffer (serializing
//! without memory renaming), then folded into per-pair tallies.

use crate::common::{emit_checksum_and_halt, emit_words, random_ints, rng};
use std::fmt::Write;

/// Words per bit-set.
const WORDS: u32 = 16;

/// Slots in the distributed tally (power of two). Deliberately narrow: the
/// tally chains are the analogue's stand-in for espresso's serial cover
/// bookkeeping, pinning parallelism in the paper's mid-range.
const TALLY: u32 = 2;

/// Generates the workload with `s` sets.
pub(crate) fn source(s: u32, seed: u64) -> String {
    let s = s.max(4);
    let mut rng = rng(seed);
    let len = (s * WORDS) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# espresso analogue: {s} sets x {WORDS} words, all pairs"
    );
    let _ = writeln!(out, "    .data");
    emit_words(
        &mut out,
        "sets",
        &random_ints(&mut rng, len, i64::MIN / 2, i64::MAX / 2),
    );
    let _ = writeln!(out, "tmp_and:\n    .space {WORDS}");
    let _ = writeln!(out, "tmp_or:\n    .space {WORDS}");
    let _ = writeln!(out, "counts:\n    .space {TALLY}");
    let _ = writeln!(
        out,
        "    .text
main:
    li   r20, 0             # i
    li   r21, {s}
i_loop:
    addi r22, r20, 1        # j
j_loop:
    li   r8, {WORDS}
    mul  r9, r20, r8
    la   r10, sets
    add  r9, r9, r10        # &sets[i][0]
    mul  r11, r22, r8
    add  r11, r11, r10      # &sets[j][0]
    la   r18, tmp_and       # shared temporaries: storage deps across pairs
    la   r19, tmp_or
    li   r12, 0
    li   r26, 0             # per-pair fold (local, short chain)
set_loop:
    lw   r14, 0(r9)
    lw   r15, 0(r11)
    and  r16, r14, r15
    sw   r16, 0(r18)
    or   r17, r14, r15
    sw   r17, 0(r19)
    # fold the temporaries back (reads the just-written buffer words)
    lw   r23, 0(r18)
    lw   r24, 0(r19)
    xor  r25, r23, r24
    add  r26, r26, r25
    addi r9, r9, 1
    addi r11, r11, 1
    addi r18, r18, 1
    addi r19, r19, 1
    addi r12, r12, 1
    blt  r12, r8, set_loop
    # publish the pair result into a distributed tally (true read-add-
    # write chains, TALLY-way parallel)
    add  r24, r20, r22
    andi r24, r24, {tally_mask}
    la   r23, counts
    add  r23, r23, r24
    lw   r25, 0(r23)
    add  r25, r25, r26
    sw   r25, 0(r23)
    addi r22, r22, 1
    blt  r22, r21, j_loop
    addi r20, r20, 1
    addi r27, r21, -1
    blt  r20, r27, i_loop
    # one progress syscall before the checksum
    li   r4, {s}
    li   r2, 1
    syscall
    li   r16, 0
    la   r23, counts
    li   r12, 0
fold_loop:
    lw   r25, 0(r23)
    add  r16, r16, r25
    addi r23, r23, 1
    addi r12, r12, 1
    li   r13, {TALLY}
    blt  r12, r13, fold_loop
    andi r16, r16, 0xffff
",
        tally_mask = TALLY - 1,
        s = s,
        WORDS = WORDS,
        TALLY = TALLY,
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn checksum_matches_independent_computation() {
        let s = 8u32;
        let program = assemble(&source(s, 13)).unwrap();
        let words: Vec<i64> = program.data_words()[..(s * WORDS) as usize]
            .iter()
            .map(|&w| w as i64)
            .collect();
        let w = WORDS as usize;
        let mut total: i64 = 0;
        for i in 0..s as usize {
            for j in (i + 1)..s as usize {
                for k in 0..w {
                    let a = words[i * w + k];
                    let b = words[j * w + k];
                    total = total.wrapping_add((a & b) ^ (a | b));
                }
            }
        }
        let expect = total & 0xffff;
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        let printed: i64 = vm.output().lines().last().unwrap().parse().unwrap();
        assert_eq!(printed, expect);
    }
}

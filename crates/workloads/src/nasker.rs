//! `nasker` analogue: FP kernels pinned by true recurrences.
//!
//! The original (the NAS kernels) mixes vectorizable loops with kernels
//! built around genuine loop-carried recurrences. The paper's signature for
//! nasker is *renaming insensitivity*: its modest parallelism (51) is
//! already exposed by register renaming alone (Table 4: 2.58 → 50.84 →
//! 50.85 → 50.97), because what limits it are **true** data dependencies
//! that no amount of renaming can remove.
//!
//! The analogue alternates three kernels over vectors of length `V`:
//!
//! 1. a first-order linear recurrence `x[i] = a*x[i-1] + b[i]` (fully
//!    serial),
//! 2. a dot-product reduction (serial accumulation chain), and
//! 3. many accumulating SAXPY passes `y[i] += a * u[i]` whose cross-pass
//!    dependence on `y[i]` is a *true* read-add-write chain — parallel
//!    across `i`, serial across passes, and insensitive to renaming.

use crate::common::{emit_checksum_and_halt, emit_floats, random_floats, rng};
use std::fmt::Write;

/// Accumulating SAXPY passes per repetition.
const PASSES: u32 = 60;

/// Outer repetitions.
const REPS: u32 = 2;

/// Generates the workload at vector length `v`.
pub(crate) fn source(v: u32, seed: u64) -> String {
    let v = v.max(8);
    let mut rng = rng(seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# nasker analogue: recurrence + reduction + {PASSES} saxpy passes over {v} elements"
    );
    let _ = writeln!(out, "    .data");
    emit_floats(
        &mut out,
        "nb",
        &random_floats(&mut rng, v as usize, 0.0, 1.0),
    );
    emit_floats(
        &mut out,
        "nu",
        &random_floats(&mut rng, v as usize, 0.0, 1.0),
    );
    let _ = writeln!(out, "nx:\n    .space {v}");
    let _ = writeln!(out, "ny:\n    .space {v}");
    let _ = writeln!(
        out,
        "    .text
main:
    li   r20, 0             # repetition counter
rep_loop:

    # Kernel 1: x[i] = 0.9 * x[i-1] + b[i]   (true serial recurrence)
    la   r8, nx
    la   r9, nb
    li   r10, 9
    cvtif f1, r10
    li   r10, 10
    cvtif f2, r10
    fdiv f1, f1, f2         # 0.9
    flw  f3, 0(r9)          # x[0] = b[0]
    fsw  f3, 0(r8)
    li   r10, 1
    li   r21, {v}
k1_loop:
    add  r12, r8, r10       # &x[i]
    flw  f4, -1(r12)        # x[i-1]
    fmul f4, f4, f1
    add  r11, r9, r10
    flw  f5, 0(r11)         # b[i]
    fadd f4, f4, f5
    fsw  f4, 0(r12)
    addi r10, r10, 1
    blt  r10, r21, k1_loop

    # Kernel 2: dot = sum x[i]*b[i]          (serial reduction chain)
    la   r8, nx
    la   r9, nb
    cvtif f6, r0            # dot = 0
    li   r10, 0
k2_loop:
    flw  f4, 0(r8)
    flw  f5, 0(r9)
    fmul f4, f4, f5
    fadd f6, f6, f4
    addi r8, r8, 1
    addi r9, r9, 1
    addi r10, r10, 1
    blt  r10, r21, k2_loop

    # Kernel 3: PASSES accumulating saxpy passes: y[i] += 0.9 * u[i]
    li   r13, 0             # pass counter
k3_pass:
    la   r8, ny
    la   r9, nu
    li   r10, 0
k3_loop:
    flw  f4, 0(r9)
    fmul f4, f4, f1
    flw  f5, 0(r8)
    fadd f5, f5, f4         # true chain through y[i] across passes
    fsw  f5, 0(r8)
    addi r8, r8, 1
    addi r9, r9, 1
    addi r10, r10, 1
    blt  r10, r21, k3_loop
    addi r13, r13, 1
    li   r14, {PASSES}
    blt  r13, r14, k3_pass

    addi r20, r20, 1
    li   r15, {REPS}
    blt  r20, r15, rep_loop

    # progress syscall after the repetitions (inside the loop it would
    # firewall the repetitions against each other): print floor(dot)
    cvtfi r4, f6
    li   r2, 1
    syscall

    la   r8, ny
    flw  f7, {mid}(r8)
    li   r9, 1000
    cvtif f8, r9
    fmul f7, f7, f8
    cvtfi r16, f7
",
        mid = v / 2,
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn recurrence_and_reduction_produce_finite_values() {
        let program = assemble(&source(16, 2)).unwrap();
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        for line in vm.output().lines() {
            let v: i64 = line.parse().unwrap();
            assert!(v.abs() < 1_000_000_000, "diverged: {v}");
        }
    }
}

//! `matrix300` analogue: dense matrix–matrix multiply on the stack.
//!
//! The original is a FORTRAN dense-matrix benchmark (repeated 300x300
//! multiplies into the same result array) whose arrays the MIPS compiler
//! keeps on the stack; the paper singles it out twice:
//!
//! * it has the **highest** available parallelism of the suite (23,302), and
//! * register renaming alone exposes only a sliver of it — "the exception
//!   being matrix300 and tomcatv where many of the values (vectors) used are
//!   not allocated to registers" — the jump comes with *stack* renaming
//!   (Table 4: 2.05 → 1,235 → 23,302).
//!
//! The analogue runs [`CALLS`] back-to-back multiplies of two DATA-segment
//! input matrices into one **stack-resident** result matrix `c`, with the
//! inner product accumulated *in memory* (`c[i][j]` is loaded, updated and
//! stored every `k` step, like a memory-resident FORTRAN array element):
//!
//! * within one call, the `c[i][j]` load–add–store chain is a **true**
//!   dependence — this is what bounds the register-renamed parallelism;
//! * across calls, the first (overwriting) store of call `t+1` to `c[i][j]`
//!   has a **storage** dependence on call `t`'s deep accumulation chain, so
//!   without stack renaming the calls serialize — stack renaming is what
//!   lets all [`CALLS`] multiplies overlap, reproducing the paper's jump.

use crate::common::{emit_checksum_and_halt, emit_floats, random_floats, rng};
use std::fmt::Write;

/// Number of repeated multiply "calls" reusing the stack-resident result.
const CALLS: u32 = 6;

/// Generates the workload at matrix dimension `n`.
pub(crate) fn source(n: u32, seed: u64) -> String {
    let n = n.max(2);
    let mut rng = rng(seed);
    let nn = (n * n) as usize;
    let mut out = String::new();
    let _ = writeln!(out, "# matrix300 analogue: {n}x{n} multiply, {CALLS} calls");
    let _ = writeln!(out, "    .data");
    emit_floats(&mut out, "mat_a", &random_floats(&mut rng, nn, -1.0, 1.0));
    emit_floats(&mut out, "mat_b", &random_floats(&mut rng, nn, -1.0, 1.0));
    let _ = writeln!(
        out,
        "    .text
main:
    addi sp, sp, -{nn}      # c[{n}][{n}] on the stack
    li   r21, {n}           # N
    li   r20, 0             # call counter
call_loop:
    li   r8, 0              # i
i_loop:
    li   r9, 0              # j
j_loop:
    mul  r11, r8, r21       # i*N
    la   r12, mat_a
    add  r12, r12, r11      # &a[i][0]
    la   r13, mat_b
    add  r13, r13, r9       # &b[0][j]
    add  r14, r11, r9
    add  r14, r14, sp       # &c[i][j] (stack)
    # k = 0: overwrite c[i][j] — the storage dependence between calls
    flw  f0, 0(r12)
    flw  f1, 0(r13)
    fmul f3, f0, f1
    fsw  f3, 0(r14)
    addi r12, r12, 1
    add  r13, r13, r21
    li   r10, 1             # k
k_loop:
    flw  f0, 0(r12)
    flw  f1, 0(r13)
    fmul f3, f0, f1
    flw  f2, 0(r14)         # memory-resident accumulation (true chain)
    fadd f2, f2, f3
    fsw  f2, 0(r14)
    addi r12, r12, 1
    add  r13, r13, r21
    addi r10, r10, 1
    blt  r10, r21, k_loop
    addi r9, r9, 1
    blt  r9, r21, j_loop
    addi r8, r8, 1
    blt  r8, r21, i_loop
    addi r20, r20, 1
    li   r22, {CALLS}
    blt  r20, r22, call_loop
    # report once at the end: a per-call syscall would firewall the calls
    # against each other and mask the stack-renaming effect under study
    flw  f4, 0(sp)
    li   r16, 1000
    cvtif f5, r16
    fmul f4, f4, f5
    cvtfi r4, f4            # checksum: 1000 * c[0][0]
    li   r2, 1
    syscall
    mv   r16, r4
"
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::{HaltReason, Vm};

    #[test]
    fn computes_a_real_matrix_product() {
        let n = 4;
        let program = assemble(&source(n, 7)).unwrap();
        let mut vm = Vm::new(program);
        let outcome = vm.run(5_000_000).unwrap();
        assert_eq!(outcome.reason(), HaltReason::Halt);
        // c[0][0] = sum_k a[0][k] * b[k][0], recomputed from the DATA image.
        let program = assemble(&source(n, 7)).unwrap();
        let a0 = program.symbol("mat_a").unwrap();
        let b0 = program.symbol("mat_b").unwrap();
        let mut expect = 0.0f64;
        for k in 0..n as u64 {
            let a = f64::from_bits(program.data_words()[(a0 + k - program.data_base()) as usize]);
            let b = f64::from_bits(
                program.data_words()[(b0 + k * n as u64 - program.data_base()) as usize],
            );
            expect += a * b;
        }
        let printed: i64 = vm.output().lines().next().unwrap().parse().unwrap();
        assert_eq!(printed, (expect * 1000.0) as i64);
    }

    #[test]
    fn size_is_clamped() {
        assert!(source(1, 0).contains("2x2"));
    }
}

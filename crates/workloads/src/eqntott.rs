//! `eqntott` analogue: PLA term comparison.
//!
//! The original converts boolean equations to truth tables and spends its
//! time in `cmppt`, comparing pairs of product terms represented as short
//! vectors. The paper measures high parallelism (782): the pairwise
//! comparisons are mutually independent, with a last factor unlocked by
//! memory renaming (Table 4: 532 → 538 → 782) from reused result storage.
//!
//! The analogue compares every pair of `T` terms (each [`WORDS`] integer
//! words), computing an order/equality verdict per pair with branch-free
//! integer logic, tallying verdict counts, and writing each verdict into a
//! small **data-segment result buffer reused by every pair** — the storage
//! dependence that full memory renaming removes.

use crate::common::{emit_checksum_and_halt, emit_words, random_ints, rng};
use std::fmt::Write;

/// Words per product term.
const WORDS: u32 = 8;

/// Slots in the shared verdict/tally buffers.
const RES: u32 = 32;

/// Generates the workload with `t` terms.
pub(crate) fn source(t: u32, seed: u64) -> String {
    let t = t.max(4);
    let mut rng = rng(seed);
    let len = (t * WORDS) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# eqntott analogue: {t} terms x {WORDS} words, all pairs"
    );
    let _ = writeln!(out, "    .data");
    // Terms are ternary-ish patterns (0/1/2), as in PLA cubes.
    emit_words(&mut out, "terms", &random_ints(&mut rng, len, 0, 3));
    let _ = writeln!(out, "verdicts:\n    .space {RES}");
    let _ = writeln!(out, "tallies:\n    .space {RES}");
    let _ = writeln!(
        out,
        "    .text
main:
    li   r20, 0             # i
    li   r21, {t}           # T
i_loop:
    addi r22, r20, 1        # j = i+1
j_loop:
    # compare term i and term j word by word, branch-free
    li   r8, {WORDS}
    mul  r9, r20, r8
    la   r10, terms
    add  r9, r9, r10        # &terms[i][0]
    mul  r11, r22, r8
    add  r11, r11, r10      # &terms[j][0]
    li   r12, 0             # w
    li   r13, 0             # difference accumulator
cmp_loop:
    lw   r14, 0(r9)
    lw   r15, 0(r11)
    sub  r16, r14, r15
    xor  r17, r14, r15
    or   r13, r13, r17      # any difference so far
    add  r18, r16, r17      # mixes order info into the verdict
    addi r9, r9, 1
    addi r11, r11, 1
    addi r12, r12, 1
    blt  r12, r8, cmp_loop
    # verdict slot (i+j) mod RES; the slot is reused by many pairs, a
    # storage dependence only memory renaming removes
    add  r24, r20, r22
    andi r24, r24, {res_mask}
    la   r19, verdicts
    add  r19, r19, r24
    sw   r18, 0(r19)
    # equality tally: distributed read-add-write counters (true chains,
    # RES-way parallel) instead of one serial register accumulator
    sltu r25, r0, r13       # 1 if any difference
    xori r25, r25, 1        # 1 if equal
    la   r23, tallies
    add  r23, r23, r24
    lw   r28, 0(r23)
    add  r28, r28, r25
    sw   r28, 0(r23)
    addi r22, r22, 1
    blt  r22, r21, j_loop
    addi r20, r20, 1
    addi r28, r21, -1
    blt  r20, r28, i_loop
    # progress syscall, then checksum = number of identical pairs
    li   r4, {t}
    li   r2, 1
    syscall
    li   r26, 0
    la   r23, tallies
    li   r12, 0
sum_loop:
    lw   r25, 0(r23)
    add  r26, r26, r25
    addi r23, r23, 1
    addi r12, r12, 1
    li   r13, {RES}
    blt  r12, r13, sum_loop
",
        res_mask = RES - 1,
        t = t,
        WORDS = WORDS,
        RES = RES,
    );
    emit_checksum_and_halt(&mut out, "r26");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn counts_identical_pairs_correctly() {
        // Independently recompute the number of identical term pairs from
        // the generated data and compare with the printed checksum.
        let t = 12;
        let program = assemble(&source(t, 5)).unwrap();
        let words = program.data_words();
        let w = WORDS as usize;
        let mut expect = 0i64;
        for i in 0..t as usize {
            for j in (i + 1)..t as usize {
                let a = &words[i * w..(i + 1) * w];
                let b = &words[j * w..(j + 1) * w];
                if a == b {
                    expect += 1;
                }
            }
        }
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        let printed: i64 = vm.output().lines().last().unwrap().parse().unwrap();
        assert_eq!(printed, expect);
    }
}

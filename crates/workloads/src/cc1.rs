//! `cc1` analogue: tokenizer and symbol interning.
//!
//! The original is the GNU C compiler front end. Its dynamic behaviour is
//! integer-heavy scanning, hashing, and table traffic, with parallelism that
//! register renaming already exposes almost completely (Table 4: 3.65 →
//! 33.70 → 36.19 → 36.21) — storage reuse in memory barely matters because
//! the hash-table updates are *true* read-modify-write chains.
//!
//! The analogue tokenizes several independent fragments of synthetic source
//! text (identifiers, numbers, separators). Each token's hash is a serial
//! multiply-add chain over its characters (the within-token recurrence);
//! tokens are interned into a shared open-addressing hash table whose bucket
//! counters are bumped with read-add-write sequences. Fragments are
//! independent, bounding the scan-pointer recurrence at fragment length,
//! like compiling independent functions.

use crate::common::{emit_checksum_and_halt, emit_words, rng};
use rand::Rng;
use std::fmt::Write;

/// Independent text fragments ("functions").
const FRAGMENTS: u32 = 6;

/// Hash-table buckets (power of two).
const BUCKETS: u32 = 64;

/// Generates the workload; each fragment is `40 * size` characters.
pub(crate) fn source(size: u32, seed: u64) -> String {
    let frag_len = (40 * size.max(1)) as usize;
    let mut rng = rng(seed);
    // Character classes: 1..=26 letters, 27..=36 digits, 0 separator.
    let mut text = Vec::with_capacity(frag_len * FRAGMENTS as usize);
    for _ in 0..FRAGMENTS {
        let mut remaining = frag_len;
        while remaining > 0 {
            let token_len = rng.gen_range(1..=7).min(remaining);
            let digit_token = rng.gen_bool(0.3);
            for _ in 0..token_len {
                let c: i64 = if digit_token {
                    rng.gen_range(27..=36)
                } else {
                    rng.gen_range(1..=26)
                };
                text.push(c);
            }
            remaining -= token_len;
            if remaining > 0 {
                text.push(0);
                remaining -= 1;
            }
        }
    }
    let total_len = text.len();
    let frag_words = total_len / FRAGMENTS as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cc1 analogue: tokenize {FRAGMENTS} fragments of {frag_words} chars"
    );
    let _ = writeln!(out, "    .data");
    emit_words(&mut out, "text", &text);
    let _ = writeln!(out, "buckets:\n    .space {BUCKETS}");
    let _ = writeln!(
        out,
        "    .text
main:
    li   r20, 0             # fragment index
frag_loop:
    li   r8, {frag_words}
    mul  r9, r20, r8
    la   r10, text
    add  r9, r9, r10        # scan pointer
    add  r11, r9, r8        # fragment end
    li   r12, 0             # current token hash
    li   r13, 0             # token count for this fragment
scan_loop:
    lw   r14, 0(r9)
    beqz r14, token_end
    # hash = hash*31 + c   (the within-token serial chain)
    li   r15, 31
    mul  r12, r12, r15
    add  r12, r12, r14
    j    scan_next
token_end:
    beqz r12, scan_next     # consecutive separators
    # intern: buckets[hash mod BUCKETS] += hash (read-add-write)
    andi r16, r12, {bucket_mask}
    la   r17, buckets
    add  r17, r17, r16
    lw   r18, 0(r17)
    add  r18, r18, r12
    sw   r18, 0(r17)
    addi r13, r13, 1
    li   r12, 0
scan_next:
    addi r9, r9, 1
    blt  r9, r11, scan_loop
    # flush the final token of the fragment, if any
    beqz r12, frag_done
    andi r16, r12, {bucket_mask}
    la   r17, buckets
    add  r17, r17, r16
    lw   r18, 0(r17)
    add  r18, r18, r12
    sw   r18, 0(r17)
    addi r13, r13, 1
    li   r12, 0
frag_done:
    addi r20, r20, 1
    li   r21, {FRAGMENTS}
    blt  r20, r21, frag_loop
    # one progress syscall after all fragments (a per-fragment syscall
    # would firewall the fragments against each other and serialize them)
    mv   r4, r13
    li   r2, 1
    syscall
    # checksum: fold the bucket table
    li   r16, 0
    la   r17, buckets
    li   r12, 0
fold_loop:
    lw   r18, 0(r17)
    xor  r16, r16, r18
    addi r17, r17, 1
    addi r12, r12, 1
    li   r13, {BUCKETS}
    blt  r12, r13, fold_loop
    andi r16, r16, 0xffffff
",
        bucket_mask = BUCKETS - 1,
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn token_count_matches_the_generated_text() {
        let program = assemble(&source(2, 9)).unwrap();
        // Count tokens per fragment in the generated character stream.
        let words = program.data_words();
        let frag_words = (words.len() - BUCKETS as usize) / FRAGMENTS as usize;
        let text = &words[..frag_words * FRAGMENTS as usize];
        let last_frag = &text[(FRAGMENTS as usize - 1) * frag_words..];
        let mut tokens = 0u64;
        let mut in_token = false;
        for &c in last_frag {
            if c == 0 {
                if in_token {
                    tokens += 1;
                }
                in_token = false;
            } else {
                in_token = true;
            }
        }
        if in_token {
            tokens += 1;
        }
        let mut vm = Vm::new(program);
        vm.run(20_000_000).unwrap();
        // The progress syscall prints the LAST fragment's token count.
        let printed: u64 = vm.output().lines().next().unwrap().parse().unwrap();
        assert_eq!(printed, tokens);
    }
}

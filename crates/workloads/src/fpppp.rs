//! `fpppp` analogue: huge straight-line floating-point blocks.
//!
//! The original computes two-electron integrals and is famous for enormous
//! basic blocks of floating-point code. The paper measures very high
//! parallelism (2,000) that appears only with full memory renaming
//! (Table 4: 1.69 → 18 → 81 → 1,999): the blocks communicate through a
//! small set of memory temporaries that are rewritten constantly.
//!
//! The analogue executes `blocks` iterations of a generated straight-line
//! block of independent FP expressions over a sliding window of a large
//! input array. Each block spills intermediate results into a small pool of
//! **data-segment scratch words and stack slots that every block reuses** —
//! so block overlap requires renaming that storage — and folds a result
//! into an accumulator vector by read-add-write (a shallow true-dependence
//! chain, as in the original's integral accumulation).

use crate::common::{emit_checksum_and_halt, emit_floats, random_floats, rng};
use std::fmt::Write;

/// Independent expression steps generated per block. The real fpppp's
/// claim to fame is basic blocks of thousands of instructions; per-block
/// parallelism is bounded by this, so it is large.
const EXPRS: u32 = 1600;

/// Data-segment scratch words reused by every block.
const SCRATCH: u32 = 24;

/// Stack spill slots reused by every block.
const SPILLS: u32 = 8;

/// Input window step per block.
const STRIDE: u32 = 7;

/// Generates the workload; `size` scales the number of blocks (`3 * size`).
pub(crate) fn source(size: u32, seed: u64) -> String {
    let blocks = 3 * size.max(1);
    let mut rng = rng(seed);
    let input_len = (blocks * STRIDE + 16) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fpppp analogue: {blocks} straight-line blocks of {EXPRS} FP exprs"
    );
    let _ = writeln!(out, "    .data");
    emit_floats(
        &mut out,
        "finput",
        &random_floats(&mut rng, input_len, 0.25, 2.0),
    );
    let _ = writeln!(out, "fscratch:");
    let _ = writeln!(out, "    .space {SCRATCH}");
    let _ = writeln!(out, "facc:");
    let _ = writeln!(out, "    .space 4");
    let _ = writeln!(
        out,
        "    .text
main:
    addi sp, sp, -{SPILLS}
    li   r20, 0             # block counter
    la   r17, finput
block_loop:"
    );
    // Block body: load an 8-value window, then EXPRS mostly independent
    // expressions cycling through a small fp register pool (heavy reuse,
    // so register renaming matters), spilling every few results.
    let _ = writeln!(
        out,
        "    flw f1, 0(r17)
    flw f2, 1(r17)
    flw f3, 2(r17)
    flw f4, 3(r17)
    flw f5, 4(r17)
    flw f6, 5(r17)
    flw f7, 6(r17)
    flw f8, 7(r17)"
    );
    let mut spill = 0u32;
    let mut scratch = 0u32;
    for e in 0..EXPRS {
        // Mostly-independent expressions over the loaded window: each reads
        // two of f1..f8 and overwrites one of the pool registers f9..f28.
        let a = 1 + (e * 5 + 1) % 8;
        let b = 1 + (e * 3 + 2) % 8;
        let d = 9 + e % 20;
        let op = match e % 3 {
            0 => "fadd",
            1 => "fmul",
            _ => "fsub",
        };
        let _ = writeln!(out, "    {op} f{d}, f{a}, f{b}");
        if e % 20 == 19 {
            // Spill to a stack slot that every block reuses.
            let _ = writeln!(out, "    fsw f{d}, {spill}(sp)");
            spill = (spill + 1) % SPILLS;
        } else if e % 20 == 9 {
            // Spill to a data-segment scratch word that every block reuses.
            let _ = writeln!(out, "    la   r9, fscratch");
            let _ = writeln!(out, "    fsw f{d}, {scratch}(r9)");
            scratch = (scratch + 1) % SCRATCH;
        }
    }
    // Publish the block result (overwrite: a storage dependency between
    // blocks, removable by renaming — there is deliberately no global
    // read-add-write chain, which would serialize every block).
    let _ = writeln!(
        out,
        "    la   r10, facc
    fsw  f28, 0(r10)
    addi r17, r17, {STRIDE}
    addi r20, r20, 1
    li   r21, {blocks}
    blt  r20, r21, block_loop
    # one progress syscall at the end of the block sweep
    la   r10, facc
    flw  f30, 0(r10)
    cvtfi r4, f30
    li   r2, 1
    syscall
    mv   r16, r4
"
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn blocks_scale_with_size_and_finish_finite() {
        let program = assemble(&source(2, 17)).unwrap();
        let facc = program.symbol("facc").unwrap();
        let mut vm = Vm::new(program);
        let outcome = vm.run(10_000_000).unwrap();
        assert!(outcome.halted());
        let result = f64::from_bits(vm.mem_word(facc).unwrap());
        assert!(result.is_finite());
        // Inputs are in [0.25, 2]; fadd/fsub/fmul over them stay bounded
        // within a generous envelope.
        assert!(result.abs() < 1e9);
    }

    #[test]
    fn scratch_slots_are_rewritten_by_every_block() {
        let src = source(1, 17);
        // Every 20th expression spills; with 1600 exprs there are spills to
        // both the stack and the data scratch in each block.
        assert!(src.contains("fscratch"));
        assert!(src.matches("fsw").count() > 100);
    }
}

//! `doduc` analogue: branchy per-particle floating-point simulation.
//!
//! The original is a Monte Carlo simulation of a nuclear reactor component:
//! many independent histories, each advancing through data-dependent
//! branches and chained floating-point state updates. The paper measures
//! mid-range parallelism (103) that register renaming alone fully exposes —
//! the limits are each particle's serial state chain, while different
//! particles overlap freely.
//!
//! The analogue integrates `P` independent particles for a fixed number of
//! steps: each step updates velocity and position through multiply/add
//! chains and reflects the particle off a wall when it crosses (the
//! data-dependent branch). Particle state lives in registers during its own
//! loop and in data-segment arrays between phases.

use crate::common::{emit_checksum_and_halt, emit_floats, random_floats, rng};
use std::fmt::Write;

/// Integration steps per particle.
const STEPS: u32 = 40;

/// Generates the workload with `p` particles.
pub(crate) fn source(p: u32, seed: u64) -> String {
    let p = p.max(2);
    let mut rng = rng(seed);
    let mut out = String::new();
    let _ = writeln!(out, "# doduc analogue: {p} particles x {STEPS} steps");
    let _ = writeln!(out, "    .data");
    emit_floats(
        &mut out,
        "px",
        &random_floats(&mut rng, p as usize, 0.0, 1.0),
    );
    emit_floats(
        &mut out,
        "pv",
        &random_floats(&mut rng, p as usize, -1.0, 1.0),
    );
    let _ = writeln!(out, "pout:\n    .space {p}");
    let _ = writeln!(
        out,
        "    .text
main:
    # constants
    li   r8, 99
    cvtif f10, r8
    li   r8, 100
    cvtif f11, r8
    fdiv f10, f10, f11      # damping 0.99
    li   r8, 1
    cvtif f12, r8
    li   r8, 64
    cvtif f13, r8
    fdiv f12, f12, f13      # dt = 1/64
    cvtif f14, r8           # wall at 1.0

    li   r20, 0             # particle index
particle_loop:
    la   r9, px
    add  r9, r9, r20
    flw  f0, 0(r9)          # x
    la   r10, pv
    add  r10, r10, r20
    flw  f1, 0(r10)         # v
    li   r21, 0             # step
step_loop:
    fmul f1, f1, f10        # v *= damping
    fmul f2, f0, f12        # force term ~ x*dt
    fadd f1, f1, f2         # v += force
    fmul f3, f1, f12
    fadd f0, f0, f3         # x += v*dt
    fclt r11, f0, f14       # x < wall ?
    bne  r11, r0, no_bounce
    fsub f0, f0, f14        # reflect: x -= wall
    fneg f1, f1             #          v = -v
no_bounce:
    addi r21, r21, 1
    li   r12, {STEPS}
    blt  r21, r12, step_loop
    la   r13, pout
    add  r13, r13, r20
    fsw  f0, 0(r13)
    addi r20, r20, 1
    li   r14, {p}
    blt  r20, r14, particle_loop

    # progress syscall: print scaled final position of the last particle
    li   r15, 1000
    cvtif f5, r15
    fmul f6, f0, f5
    cvtfi r4, f6
    li   r2, 1
    syscall
    mv   r16, r4
"
    );
    emit_checksum_and_halt(&mut out, "r16");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_asm::assemble;
    use paragraph_vm::Vm;

    #[test]
    fn particles_bounce_off_the_wall() {
        // Final positions are stored to pout; all must be below the wall
        // (reflection keeps x < 1 after any step that crossed it... the
        // reflected x is x - 1, which is < 1 since x < 2).
        let p = 16u32;
        let program = assemble(&source(p, 11)).unwrap();
        let pout = program.symbol("pout").unwrap();
        let mut vm = Vm::new(program);
        vm.run(5_000_000).unwrap();
        for i in 0..p as u64 {
            let x = f64::from_bits(vm.mem_word(pout + i).unwrap());
            assert!(x.is_finite(), "particle {i} diverged");
            assert!(x < 2.0, "particle {i} escaped: {x}");
        }
    }

    #[test]
    fn step_count_scales_instructions_linearly() {
        let run = |p: u32| {
            let mut vm = Vm::new(assemble(&source(p, 1)).unwrap());
            vm.run(50_000_000).unwrap().executed()
        };
        let small = run(4);
        let big = run(16);
        assert!(big > 3 * small && big < 5 * small);
    }
}

//! Shared helpers for the workload generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Deterministic RNG for input-data generation.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Emits a `.word` data block of `values`, 12 values per line.
pub(crate) fn emit_words(out: &mut String, label: &str, values: &[i64]) {
    let _ = writeln!(out, "{label}:");
    for chunk in values.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "    .word {}", row.join(", "));
    }
}

/// Emits a `.float` data block of `values`, 8 values per line.
pub(crate) fn emit_floats(out: &mut String, label: &str, values: &[f64]) {
    let _ = writeln!(out, "{label}:");
    for chunk in values.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v:?}")).collect();
        let _ = writeln!(out, "    .float {}", row.join(", "));
    }
}

/// `n` random integers in `lo..hi`.
pub(crate) fn random_ints(rng: &mut SmallRng, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` random floats in `lo..hi`.
pub(crate) fn random_floats(rng: &mut SmallRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Emits the standard epilogue: print the checksum in the named register
/// (as an integer) and halt.
pub(crate) fn emit_checksum_and_halt(out: &mut String, checksum_reg: &str) {
    let _ = writeln!(
        out,
        "    mv r4, {checksum_reg}
    li r2, 1            # print_int
    syscall
    halt"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_words_formats_rows() {
        let mut out = String::new();
        emit_words(&mut out, "xs", &[1, 2, 3]);
        assert!(out.starts_with("xs:\n"));
        assert!(out.contains(".word 1, 2, 3"));
    }

    #[test]
    fn emit_floats_uses_exact_debug_format() {
        let mut out = String::new();
        emit_floats(&mut out, "fs", &[0.5, 1.0]);
        assert!(out.contains(".float 0.5, 1.0"));
    }

    #[test]
    fn rng_is_deterministic() {
        let a = random_ints(&mut rng(7), 10, 0, 100);
        let b = random_ints(&mut rng(7), 10, 0, 100);
        assert_eq!(a, b);
    }
}

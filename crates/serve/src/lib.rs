//! `paragraph serve` — a fault-isolated, load-shedding, gracefully
//! draining multi-tenant analysis daemon.
//!
//! The Paragraph toolkit's batch front end (`paragraph analyze`) pays the
//! trace decode on every invocation and serves one analysis per process.
//! This crate turns the same engine into a long-lived service: traces are
//! uploaded once, decoded once under strict admission limits, and
//! analyzed many times — concurrently, under different configurations,
//! incrementally through sessions — over plain HTTP/1.1 with **zero new
//! dependencies** (`std::net` sockets, a hand-rolled parser for a small
//! HTTP subset, and the vendored `signal-lite` shim on the CLI side for
//! `SIGTERM`/`SIGINT`).
//!
//! The module map mirrors the request lifecycle:
//!
//! * [`http`] — the bounded HTTP/1.1 subset (request line, headers and
//!   body all capped; `Expect: 100-continue` honoured).
//! * [`pool`] — the bounded worker pool: full queue ⇒ 429, panicking
//!   handler ⇒ 500 + worker recycled, never a dead process.
//! * [`store`] — governed trace admission ([`Limits::strict`] by
//!   default), crash-consistent spool, byte-budgeted decode cache.
//! * [`session`] — incremental analyses with checkpoint eviction: idle
//!   sessions over the live budget are written as standard PGCP
//!   checkpoints and resumed on next touch.
//! * [`server`] — routing, drain semantics, `/healthz` + `/metrics`.
//! * [`fault`] — `PARAGRAPH_FAULT_REQUEST`, the deterministic request
//!   fault injector mirroring the sweep supervisor's
//!   `PARAGRAPH_FAULT_CELL`.
//! * [`client`] — the matching minimal client (used by `paragraph
//!   client` and the test suites).
//! * [`error`] — the failure taxonomy and its HTTP status mapping,
//!   aligned with the CLI's exit codes 2–7 (see the README table).
//!
//! Responses are **byte-identical** to the CLI for the same trace and
//! configuration: a JSON report body equals the `--json` artifact, a text
//! body equals `analyze`'s stdout ([`render_report_text`] is the single
//! shared renderer), and `jobs` variation never changes the bytes, by the
//! parallel engine's determinism contract.
//!
//! [`Limits::strict`]: paragraph_trace::Limits::strict

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fault;
pub mod http;
pub mod pool;
pub mod server;
pub mod session;
pub mod store;

pub use client::{request, ClientResponse, Endpoint};
pub use error::ServeError;
pub use fault::{RequestFault, RequestFaultKind};
pub use server::{ServeOptions, ServeSummary, Server};

use paragraph_core::AnalysisReport;
use std::fmt::Write as _;

/// Renders a report exactly as `paragraph analyze` prints it to stdout:
/// the report's `Display` form followed by the optional value-lifetime
/// and sharing-degree lines. The CLI and the daemon both call this, so
/// "served text == CLI stdout" holds by construction rather than by
/// parallel maintenance.
pub fn render_report_text(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = write!(out, "{report}");
    if let Some(lifetimes) = report.value_lifetimes() {
        let _ = writeln!(
            out,
            "  value lifetimes       : mean {:.2} levels, p50 {}, p99 {}, max {}",
            lifetimes.mean(),
            lifetimes.percentile(0.5).unwrap_or(0),
            lifetimes.percentile(0.99).unwrap_or(0),
            lifetimes.max().unwrap_or(0)
        );
    }
    if let Some(sharing) = report.sharing_degrees() {
        let _ = writeln!(
            out,
            "  degree of sharing     : mean {:.2} consumers, p99 {}, max {}",
            sharing.mean(),
            sharing.percentile(0.99).unwrap_or(0),
            sharing.max().unwrap_or(0)
        );
    }
    out
}

//! A deliberately small HTTP/1.1 subset over blocking streams.
//!
//! Just enough protocol for the daemon's API: one request per connection
//! (`Connection: close` on every response), bounded request line, bounded
//! headers, bounded body, `Expect: 100-continue` honoured so well-behaved
//! clients learn about a 413 before shipping a gigabyte. Everything else —
//! chunked bodies, keep-alive, pipelining, TLS — is deliberately out of
//! scope; the attack surface of a parser is proportional to what it
//! accepts.
//!
//! Every cap violation is a typed [`ServeError`] so the connection loop
//! can answer with the right status instead of hanging up.

use crate::error::ServeError;
use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most header bytes accepted in total.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Most individual headers accepted.
pub const MAX_HEADERS: usize = 64;

/// One parsed request: method, percent-decoded path, query parameters and
/// (optionally deferred) body metadata.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token.
    pub method: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: u64,
    /// Whether the client sent `Expect: 100-continue`.
    pub expect_continue: bool,
    /// The request body (read by [`read_body`] after admission checks).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether flag-style parameter `name` is present (bare or `=true`/`=1`).
    pub fn flag(&self, name: &str) -> bool {
        self.query
            .iter()
            .any(|(k, v)| k == name && (v.is_empty() || v == "true" || v == "1"))
    }
}

/// A connection failure while reading the request. I/O errors mean the
/// peer is gone (no response possible); protocol errors map to a status.
#[derive(Debug)]
pub enum HttpError {
    /// The peer disconnected or the socket failed; nothing to answer.
    Io(io::Error),
    /// The bytes do not parse as the accepted HTTP subset.
    Protocol(ServeError),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn protocol(msg: impl Into<String>) -> HttpError {
    HttpError::Protocol(ServeError::BadRequest(msg.into()))
}

/// Decodes `%XX` escapes (and `+` as space in query values when `plus`).
fn percent_decode(s: &str, plus: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi << 4 | lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one `\r\n`-terminated line, refusing lines longer than `cap`.
fn read_line<R: BufRead>(reader: &mut R, cap: usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a full request line",
                    )));
                }
                return Err(protocol("truncated header line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(String::from_utf8_lossy(&line).into_owned());
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(protocol(format!("header line exceeds {cap} bytes")));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Parses the request head: request line plus headers, stopping at the
/// blank line. The body is *not* read — the router first checks the
/// declared length against policy, then calls [`read_body`].
pub fn parse_request_head<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let request_line = read_line(reader, MAX_REQUEST_LINE)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| protocol("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| protocol("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| protocol("request line has no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(protocol(format!(
            "target `{raw_path}` is not an absolute path"
        )));
    }
    let path = percent_decode(raw_path, false);
    if path.contains("..") {
        // No route uses dot segments; refusing them here keeps any future
        // file-backed route from being traversable by construction.
        return Err(protocol("dot segments are not accepted in request paths"));
    }
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = match pair.split_once('=') {
                Some((k, v)) => (k, v),
                None => (pair, ""),
            };
            query.push((percent_decode(k, true), percent_decode(v, true)));
        }
    }

    let mut content_length: u64 = 0;
    let mut expect_continue = false;
    let mut header_bytes = 0usize;
    let mut header_count = 0usize;
    loop {
        let line = read_line(reader, MAX_HEADER_BYTES)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        header_count += 1;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(protocol(format!("headers exceed {MAX_HEADER_BYTES} bytes")));
        }
        if header_count > MAX_HEADERS {
            return Err(protocol(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = match line.split_once(':') {
            Some((n, v)) => (n.trim().to_ascii_lowercase(), v.trim()),
            None => return Err(protocol(format!("malformed header `{line}`"))),
        };
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| protocol(format!("unparseable Content-Length `{value}`")))?;
            }
            "transfer-encoding" => {
                return Err(HttpError::Protocol(ServeError::BadRequest(
                    "chunked transfer encoding is not accepted; send Content-Length".into(),
                )));
            }
            "expect" => {
                expect_continue = value.eq_ignore_ascii_case("100-continue");
            }
            _ => {}
        }
    }

    Ok(Request {
        method,
        path,
        query,
        content_length,
        expect_continue,
        body: Vec::new(),
    })
}

/// Checks the declared body length against `cap` — *before* anything is
/// allocated for it, so an adversarial Content-Length costs nothing.
pub fn check_body_cap(req: &Request, cap: u64) -> Result<(), ServeError> {
    if req.content_length > cap {
        return Err(ServeError::PayloadTooLarge {
            what: "request body".into(),
            actual: req.content_length,
            cap,
        });
    }
    Ok(())
}

/// Acknowledges `Expect: 100-continue` once admission has passed, so a
/// well-behaved client learns about a 413 before shipping the body.
pub fn ack_continue<W: Write>(req: &Request, writer: &mut W) -> io::Result<()> {
    if req.expect_continue && req.content_length > 0 {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Reads the declared body into `req.body`. Call [`check_body_cap`] (and
/// [`ack_continue`]) first.
pub fn read_body<R: BufRead>(req: &mut Request, reader: &mut R) -> Result<(), HttpError> {
    let mut body = vec![0u8; req.content_length as usize];
    reader.read_exact(&mut body)?;
    req.body = body;
    Ok(())
}

/// One response: status, content type, body, optional Retry-After.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds for 429/503.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A 200 with a plain-text body.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }
}

impl From<&ServeError> for Response {
    fn from(e: &ServeError) -> Response {
        Response {
            status: e.status(),
            content_type: "application/json",
            body: e.body_json().into_bytes(),
            retry_after: e.retry_after(),
        }
    }
}

/// The reason phrase for the statuses this daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serializes `resp` onto the wire with `Connection: close`.
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&resp.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_request_head(&mut Cursor::new(raw.as_bytes()))
    }

    #[test]
    fn parses_method_path_and_query() {
        let req = parse("POST /analyze?trace=t1&window=64&optimistic HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("well-formed request parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.param("trace"), Some("t1"));
        assert_eq!(req.param("window"), Some("64"));
        assert!(req.flag("optimistic"));
        assert!(!req.flag("value-stats"));
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let req = parse("GET /sessions/s%31?label=a+b%21 HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.path, "/sessions/s1");
        assert_eq!(req.param("label"), Some("a b!"));
    }

    #[test]
    fn refuses_dot_segments_and_chunked_bodies() {
        assert!(matches!(
            parse("GET /../etc/passwd HTTP/1.1\r\n\r\n"),
            Err(HttpError::Protocol(ServeError::BadRequest(_)))
        ));
        assert!(matches!(
            parse("POST /traces HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Protocol(ServeError::BadRequest(_)))
        ));
    }

    #[test]
    fn body_cap_refuses_before_allocating() {
        let raw = b"POST /traces HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        let mut reader = Cursor::new(raw.to_vec());
        let req = parse_request_head(&mut reader).expect("head parses");
        let err = check_body_cap(&req, 1024).expect_err("a body over the cap must be refused");
        match err {
            ServeError::PayloadTooLarge { actual, cap, .. } => {
                assert_eq!(actual, 1_000_000);
                assert_eq!(cap, 1024);
            }
            other => panic!("wrong classification: {other:?}"),
        }
    }

    #[test]
    fn expect_continue_is_acknowledged_then_body_read() {
        let raw =
            b"POST /traces HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\nhello";
        let mut reader = Cursor::new(raw.to_vec());
        let mut req = parse_request_head(&mut reader).expect("head parses");
        check_body_cap(&req, 1024).expect("within cap");
        let mut out = Vec::new();
        ack_continue(&req, &mut out).expect("ack writes");
        read_body(&mut req, &mut reader).expect("body reads");
        assert_eq!(req.body, b"hello");
        assert!(out.starts_with(b"HTTP/1.1 100 Continue"));
    }

    #[test]
    fn response_serializes_with_connection_close_and_retry_after() {
        let mut out = Vec::new();
        let resp = Response {
            status: 429,
            content_type: "application/json",
            body: b"{}".to_vec(),
            retry_after: Some(2),
        };
        write_response(&mut out, &resp).expect("write to Vec");
        let text = String::from_utf8(out).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn oversized_request_line_is_a_protocol_error() {
        let long = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE + 10)
        );
        assert!(matches!(parse(&long), Err(HttpError::Protocol(_))));
    }
}

//! A bounded worker pool that survives panicking jobs.
//!
//! The daemon's unit of work is one connection; the pool gives it three
//! properties the acceptance criteria hinge on:
//!
//! * **Bounded admission** — the queue has a fixed capacity and
//!   [`Pool::try_submit`] refuses instead of growing, so the accept loop
//!   can shed load with a 429 rather than buffering unbounded sockets.
//! * **Fault isolation** — each job runs under `catch_unwind` at the
//!   worker's top frame. A panicking job kills only its worker thread,
//!   which is immediately replaced, so the pool's capacity is restored
//!   and the process never dies. (Connection-level `catch_unwind` inside
//!   the job writes the 500 *before* re-raising; the pool-level catch is
//!   the backstop that does the recycling.)
//! * **Observability** — queue depth, active count, and cumulative
//!   recycle count are readable at any time for `/healthz`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    queue: VecDeque<Job>,
    active: usize,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
    capacity: usize,
    /// Worker threads recycled after a panicking job.
    recycled: AtomicU64,
    /// Live worker handles; replacements are pushed as they spawn.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The bounded, panic-surviving worker pool.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

fn spawn_worker(shared: &Arc<Shared>) {
    let worker_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("serve-worker".into())
        .spawn(move || worker_loop(worker_shared));
    // Thread spawn failing (resource exhaustion) leaves the pool smaller;
    // queued work still drains through surviving workers. A poisoned
    // handle registry only affects join-at-shutdown; the worker itself is
    // already running.
    if let Ok(h) = handle {
        if let Ok(mut handles) = shared.handles.lock() {
            handles.push(h);
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut state = match shared.state.lock() {
                Ok(s) => s,
                // The queue mutex poisons only if a thread panicked while
                // holding it, which no code path here does (jobs run
                // outside the lock). Treat it as shutdown.
                Err(_) => return,
            };
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = match shared.available.wait(state) {
                    Ok(s) => s,
                    Err(_) => return,
                };
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        if let Ok(mut state) = shared.state.lock() {
            state.active -= 1;
        }
        if outcome.is_err() {
            // This worker's stack is tainted by the unwound job; retire it
            // and restore capacity with a fresh thread. The panic payload
            // was already turned into a 500 by the connection loop.
            shared.recycled.fetch_add(1, Ordering::Relaxed);
            spawn_worker(&shared);
            return;
        }
    }
}

impl Pool {
    /// A pool of `workers` threads behind a queue of `capacity` slots.
    pub fn new(workers: usize, capacity: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                active: 0,
                shutting_down: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            recycled: AtomicU64::new(0),
            handles: Mutex::new(Vec::with_capacity(workers)),
        });
        for _ in 0..workers {
            spawn_worker(&shared);
        }
        Pool { shared, workers }
    }

    /// Enqueues `job` unless the queue is at capacity (or the pool is
    /// shutting down). `false` means the caller should shed load.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let Ok(mut state) = self.shared.state.lock() else {
            return false;
        };
        if state.shutting_down || state.queue.len() >= self.shared.capacity {
            return false;
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
        true
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().map_or(0, |s| s.queue.len())
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.shared.state.lock().map_or(0, |s| s.active)
    }

    /// Whether the pool has nothing queued and nothing running — the
    /// drain loop's exit condition.
    pub fn idle(&self) -> bool {
        self.shared
            .state
            .lock()
            .map_or(true, |s| s.queue.is_empty() && s.active == 0)
    }

    /// Workers recycled after panicking jobs, cumulatively.
    pub fn recycled(&self) -> u64 {
        self.shared.recycled.load(Ordering::Relaxed)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Finishes every queued job, then joins all workers. Jobs submitted
    /// after this call are refused. Idempotent.
    pub fn shutdown(&self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutting_down = true;
        }
        self.shared.available.notify_all();
        // Replacement workers may be spawned while we join (a panicking
        // job during drain), so keep draining the registry until empty.
        loop {
            let batch = match self.shared.handles.lock() {
                Ok(mut handles) => std::mem::take(&mut *handles),
                Err(_) => return,
            };
            if batch.is_empty() {
                return;
            }
            for handle in batch {
                let _ = handle.join();
            }
            self.shared.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("condition not reached within 5s");
    }

    #[test]
    fn runs_jobs_and_reports_idle() {
        let pool = Pool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let done = Arc::clone(&done);
            assert!(pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        wait_until(|| done.load(Ordering::SeqCst) == 6);
        wait_until(|| pool.idle());
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn refuses_when_the_queue_is_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker until released.
        let blocker = Arc::clone(&gate);
        assert!(pool.try_submit(move || {
            let (lock, cv) = &*blocker;
            let mut open = lock.lock().expect("test gate");
            while !*open {
                open = cv.wait(open).expect("test gate");
            }
        }));
        wait_until(|| pool.active() == 1);
        // Fill the queue, then the next submit must shed.
        assert!(pool.try_submit(|| {}));
        assert!(pool.try_submit(|| {}));
        assert!(!pool.try_submit(|| {}), "queue at capacity must refuse");
        let (lock, cv) = &*gate;
        *lock.lock().expect("test gate") = true;
        cv.notify_all();
        wait_until(|| pool.idle());
        pool.shutdown();
    }

    #[test]
    fn panicking_job_recycles_the_worker_and_keeps_serving() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = Pool::new(1, 8);
        assert!(pool.try_submit(|| panic!("injected job panic")));
        wait_until(|| pool.recycled() == 1);
        // The replacement worker still serves.
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        assert!(pool.try_submit(move || {
            flag.fetch_add(1, Ordering::SeqCst);
        }));
        wait_until(|| done.load(Ordering::SeqCst) == 1);
        pool.shutdown();
        std::panic::set_hook(prev_hook);
    }

    #[test]
    fn shutdown_finishes_queued_jobs() {
        let pool = Pool::new(2, 32);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = Arc::clone(&done);
            assert!(pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20, "shutdown drains the queue");
    }
}

//! Multi-tenant analysis sessions with checkpoint eviction.
//!
//! A session is a [`LiveWell`] analyzing one uploaded trace incrementally:
//! `POST /sessions` opens it, `POST /sessions/<id>/advance` feeds it a
//! bounded number of records, `POST /sessions/<id>/finish` consumes the
//! rest and returns the report. Between requests a session is pure state;
//! the store keeps at most `max_live` of them resident. When the budget
//! overflows, the least-recently-touched idle session is **evicted by
//! checkpoint**: its live well is written through the crash-consistent
//! artifact writer as a standard PGCP checkpoint, the in-memory analyzer
//! is dropped, and the next request that touches the session resumes from
//! the checkpoint — verifying the trace identity, exactly like the CLI's
//! `--resume` path. Graceful drain uses the same mechanism on every live
//! session, so a `SIGTERM` never loses analysis progress.
//!
//! Every session operation holds only that session's lock; the store map
//! lock is held just long enough to clone the `Arc`. Busy sessions are
//! skipped by eviction (`try_lock`), never blocked on.

use crate::error::ServeError;
use crate::store::{ResolvedTrace, TraceStore};
use paragraph_core::{AnalysisConfig, CheckpointError, LiveWell, TraceIdentity};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where a session's analyzer currently lives.
enum Analyzer {
    /// Resident in memory.
    Live(Box<LiveWell>),
    /// Checkpointed to disk; resumed on next touch.
    Evicted,
}

/// One analysis session.
struct Session {
    trace_id: String,
    config: AnalysisConfig,
    identity: TraceIdentity,
    checkpoint: PathBuf,
    analyzer: Analyzer,
    records_processed: u64,
}

/// What a status/advance request reports.
#[derive(Debug, Clone)]
pub struct SessionStatus {
    /// The session id.
    pub id: String,
    /// The trace under analysis.
    pub trace_id: String,
    /// Records fed so far.
    pub records_processed: u64,
    /// Total records in the trace.
    pub records_total: u64,
    /// Critical path length so far.
    pub critical_path: u64,
    /// Available parallelism so far.
    pub parallelism: f64,
    /// Whether the analyzer is resident (`live`) or checkpointed.
    pub resident: bool,
}

struct SessionMap {
    sessions: HashMap<String, Arc<Mutex<Session>>>,
    /// LRU clock: monotonically increasing touch stamps.
    order: HashMap<String, u64>,
    next_id: u64,
    clock: u64,
    evicted: u64,
    resumed: u64,
}

/// The shared session store.
pub struct SessionStore {
    dir: PathBuf,
    max_live: usize,
    state: Mutex<SessionMap>,
}

fn checkpoint_err(scope: &str, e: CheckpointError) -> ServeError {
    match e {
        CheckpointError::LimitExceeded(v) => ServeError::rejected(scope, &v),
        other => ServeError::Internal(format!("{scope}: {other}")),
    }
}

impl Session {
    /// Makes the analyzer resident, resuming from the checkpoint when
    /// evicted. Returns whether a resume happened.
    fn ensure_live(&mut self, scope: &str) -> Result<bool, ServeError> {
        match self.analyzer {
            Analyzer::Live(_) => Ok(false),
            Analyzer::Evicted => {
                let file = std::fs::File::open(&self.checkpoint).map_err(|e| {
                    ServeError::Internal(format!(
                        "{scope}: checkpoint {}: {e}",
                        self.checkpoint.display()
                    ))
                })?;
                let well =
                    LiveWell::resume_from(std::io::BufReader::new(file), self.config.clone())
                        .map_err(|e| checkpoint_err(scope, e))?;
                well.verify_trace_identity(&self.identity)
                    .map_err(|e| checkpoint_err(scope, e))?;
                self.records_processed = well.records_processed();
                self.analyzer = Analyzer::Live(Box::new(well));
                Ok(true)
            }
        }
    }

    fn live(&mut self) -> Result<&mut LiveWell, ServeError> {
        match &mut self.analyzer {
            Analyzer::Live(well) => Ok(well),
            Analyzer::Evicted => Err(ServeError::Internal(
                "session analyzer absent after ensure_live".into(),
            )),
        }
    }

    /// Checkpoints the live analyzer crash-consistently and drops it.
    fn evict(&mut self, scope: &str) -> Result<(), ServeError> {
        let well = match &self.analyzer {
            Analyzer::Live(well) => well,
            Analyzer::Evicted => return Ok(()),
        };
        paragraph_core::artifact::write_atomic(&self.checkpoint, |out| {
            well.save_checkpoint(out)
                .map_err(|e| std::io::Error::other(e.to_string()))
        })
        .map_err(|e| {
            ServeError::Internal(format!(
                "{scope}: checkpoint {}: {e}",
                self.checkpoint.display()
            ))
        })?;
        self.analyzer = Analyzer::Evicted;
        Ok(())
    }
}

impl SessionStore {
    /// Opens the store; checkpoints land under `dir`.
    pub fn open(dir: PathBuf, max_live: usize) -> Result<SessionStore, ServeError> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Internal(format!("sessions {}: {e}", dir.display())))?;
        paragraph_core::artifact::clean_orphaned_tmp(&dir);
        Ok(SessionStore {
            dir,
            max_live: max_live.max(1),
            state: Mutex::new(SessionMap {
                sessions: HashMap::new(),
                order: HashMap::new(),
                next_id: 0,
                clock: 0,
                evicted: 0,
                resumed: 0,
            }),
        })
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, SessionMap>, ServeError> {
        self.state
            .lock()
            .map_err(|_| ServeError::Internal("session store lock poisoned".into()))
    }

    /// Opens a session over `trace` with `config`.
    pub fn open_session(
        &self,
        trace: &ResolvedTrace,
        config: AnalysisConfig,
    ) -> Result<String, ServeError> {
        let mut well = LiveWell::new(config.clone());
        well.set_trace_identity(Some(trace.identity));
        let mut state = self.lock()?;
        state.next_id += 1;
        state.clock += 1;
        let id = format!("s{}", state.next_id);
        let session = Session {
            trace_id: trace.id.clone(),
            config,
            identity: trace.identity,
            checkpoint: self.dir.join(format!("{id}.pgcp")),
            analyzer: Analyzer::Live(Box::new(well)),
            records_processed: 0,
        };
        let clock = state.clock;
        state
            .sessions
            .insert(id.clone(), Arc::new(Mutex::new(session)));
        state.order.insert(id.clone(), clock);
        drop(state);
        self.evict_over_budget(&id)?;
        Ok(id)
    }

    /// Clones the session handle and stamps its LRU touch.
    fn handle(&self, id: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        let mut state = self.lock()?;
        state.clock += 1;
        let clock = state.clock;
        let handle = state
            .sessions
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::NotFound(format!("no session `{id}`")))?;
        state.order.insert(id.to_owned(), clock);
        Ok(handle)
    }

    fn note_resumed(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.resumed += 1;
        }
    }

    /// Feeds up to `count` more records into the session, resuming it
    /// first if evicted. `deadline` bounds this request's analysis time;
    /// overruns reject with the governor taxonomy (422) without losing
    /// the session.
    pub fn advance(
        &self,
        id: &str,
        store: &TraceStore,
        count: u64,
        deadline: Option<std::time::Duration>,
    ) -> Result<SessionStatus, ServeError> {
        let handle = self.handle(id)?;
        let started = Instant::now();
        let mut session = handle
            .lock()
            .map_err(|_| ServeError::Internal(format!("session `{id}` lock poisoned")))?;
        if session.ensure_live(id)? {
            self.note_resumed();
        }
        let trace = store.resolve(&session.trace_id)?;
        let total = trace.records.len() as u64;
        let from = session.records_processed.min(total) as usize;
        let to = ((session.records_processed.saturating_add(count)).min(total)) as usize;
        // Feed in slices so a configured deadline is honoured between
        // batches; the slice size only affects check granularity, never
        // the analysis output.
        for slice in trace.records[from..to].chunks(4096) {
            if let Some(limit) = deadline {
                let elapsed = started.elapsed();
                if elapsed > limit {
                    session.records_processed = session.live()?.records_processed();
                    self.evict_over_budget(id)?;
                    return Err(ServeError::Rejected {
                        scope: format!("session {id}"),
                        limit: "deadline".into(),
                        what: "analysis time".into(),
                        actual: elapsed.as_millis() as u64,
                        cap: limit.as_millis() as u64,
                        detail: format!(
                            "analysis deadline exceeded after {}ms (cap {}ms); \
                             progress is preserved",
                            elapsed.as_millis(),
                            limit.as_millis()
                        ),
                    });
                }
            }
            session.live()?.process_slice(slice);
        }
        session.records_processed = session.live()?.records_processed();
        let (_, _, critical_path, parallelism) = session.live()?.snapshot();
        let status = SessionStatus {
            id: id.to_owned(),
            trace_id: session.trace_id.clone(),
            records_processed: session.records_processed,
            records_total: total,
            critical_path,
            parallelism,
            resident: true,
        };
        drop(session);
        self.evict_over_budget(id)?;
        Ok(status)
    }

    /// Reports a session's progress without advancing it.
    pub fn status(&self, id: &str, store: &TraceStore) -> Result<SessionStatus, ServeError> {
        let handle = self.handle(id)?;
        let session = handle
            .lock()
            .map_err(|_| ServeError::Internal(format!("session `{id}` lock poisoned")))?;
        let total = store
            .resolve(&session.trace_id)
            .map(|t| t.records.len() as u64)
            .unwrap_or(0);
        let (resident, critical_path, parallelism) = match &session.analyzer {
            Analyzer::Live(well) => {
                let (_, _, cp, par) = well.snapshot();
                (true, cp, par)
            }
            Analyzer::Evicted => (false, 0, 0.0),
        };
        Ok(SessionStatus {
            id: id.to_owned(),
            trace_id: session.trace_id.clone(),
            records_processed: session.records_processed,
            records_total: total,
            critical_path,
            parallelism,
            resident,
        })
    }

    /// Feeds any remaining records, closes the session, and returns the
    /// finished report. The checkpoint file, if any, is removed.
    pub fn finish(
        &self,
        id: &str,
        store: &TraceStore,
        deadline: Option<std::time::Duration>,
    ) -> Result<paragraph_core::AnalysisReport, ServeError> {
        // Drive to completion through the same governed path.
        let status = self.advance(id, store, u64::MAX, deadline)?;
        debug_assert_eq!(status.records_processed, status.records_total);
        let handle = {
            let mut state = self.lock()?;
            state.order.remove(id);
            state
                .sessions
                .remove(id)
                .ok_or_else(|| ServeError::NotFound(format!("no session `{id}`")))?
        };
        let mut session = handle
            .lock()
            .map_err(|_| ServeError::Internal(format!("session `{id}` lock poisoned")))?;
        session.ensure_live(id)?;
        let well = match std::mem::replace(&mut session.analyzer, Analyzer::Evicted) {
            Analyzer::Live(well) => well,
            Analyzer::Evicted => {
                return Err(ServeError::Internal(
                    "session analyzer absent at finish".into(),
                ))
            }
        };
        let _ = std::fs::remove_file(&session.checkpoint);
        Ok(well.finish())
    }

    /// Closes a session without finishing it, discarding its state.
    pub fn delete(&self, id: &str) -> Result<(), ServeError> {
        let mut state = self.lock()?;
        state.order.remove(id);
        let handle = state
            .sessions
            .remove(id)
            .ok_or_else(|| ServeError::NotFound(format!("no session `{id}`")))?;
        drop(state);
        if let Ok(session) = handle.lock() {
            let _ = std::fs::remove_file(&session.checkpoint);
        }
        Ok(())
    }

    /// Evicts least-recently-touched idle sessions until at most
    /// `max_live` analyzers are resident. `just_touched` is exempt. Busy
    /// sessions (lock held by a request) are skipped, not blocked on.
    fn evict_over_budget(&self, just_touched: &str) -> Result<(), ServeError> {
        loop {
            let victim = {
                let state = self.lock()?;
                let mut live: Vec<(String, u64, Arc<Mutex<Session>>)> = Vec::new();
                for (id, handle) in &state.sessions {
                    if id == just_touched {
                        continue;
                    }
                    if let Ok(session) = handle.try_lock() {
                        if matches!(session.analyzer, Analyzer::Live(_)) {
                            let stamp = state.order.get(id).copied().unwrap_or(0);
                            live.push((id.clone(), stamp, Arc::clone(handle)));
                        }
                    }
                }
                // Count the exempt session as resident if it is.
                let exempt_live = state
                    .sessions
                    .get(just_touched)
                    .and_then(|h| {
                        h.try_lock()
                            .ok()
                            .map(|s| matches!(s.analyzer, Analyzer::Live(_)))
                    })
                    .unwrap_or(false);
                let resident = live.len() + usize::from(exempt_live);
                if resident <= self.max_live {
                    return Ok(());
                }
                live.sort_by_key(|(_, stamp, _)| *stamp);
                match live.into_iter().next() {
                    Some((id, _, handle)) => (id, handle),
                    None => return Ok(()),
                }
            };
            let (victim_id, handle) = victim;
            match handle.try_lock() {
                Ok(mut session) => {
                    session.evict(&victim_id)?;
                    if let Ok(mut state) = self.state.lock() {
                        state.evicted += 1;
                    }
                }
                Err(_) => {
                    // Became busy between scans; try again next touch.
                    return Ok(());
                }
            };
        }
    }

    /// Checkpoints every live session — the drain path. Returns how many
    /// sessions were written. Failures are collected, not short-circuited:
    /// one bad disk sector must not stop the rest of the drain.
    pub fn checkpoint_all(&self) -> Result<usize, Vec<String>> {
        let handles: Vec<(String, Arc<Mutex<Session>>)> = match self.state.lock() {
            Ok(state) => state
                .sessions
                .iter()
                .map(|(id, h)| (id.clone(), Arc::clone(h)))
                .collect(),
            Err(_) => return Err(vec!["session store lock poisoned".into()]),
        };
        let mut written = 0;
        let mut failures = Vec::new();
        for (id, handle) in handles {
            match handle.lock() {
                Ok(mut session) => {
                    let was_live = matches!(session.analyzer, Analyzer::Live(_));
                    match session.evict(&id) {
                        Ok(()) if was_live => written += 1,
                        Ok(()) => {}
                        Err(e) => failures.push(format!("{id}: {e}")),
                    }
                }
                Err(_) => failures.push(format!("{id}: lock poisoned")),
            }
        }
        if failures.is_empty() {
            Ok(written)
        } else {
            Err(failures)
        }
    }

    /// Sessions currently open.
    pub fn count(&self) -> usize {
        self.state.lock().map_or(0, |s| s.sessions.len())
    }

    /// Sessions with a resident analyzer right now.
    pub fn live_count(&self) -> usize {
        self.state.lock().map_or(0, |state| {
            state
                .sessions
                .values()
                .filter_map(|h| h.try_lock().ok())
                .filter(|s| matches!(s.analyzer, Analyzer::Live(_)))
                .count()
        })
    }

    /// Checkpoint evictions, cumulatively.
    pub fn evicted(&self) -> u64 {
        self.state.lock().map_or(0, |s| s.evicted)
    }

    /// Checkpoint resumes, cumulatively.
    pub fn resumed(&self) -> u64 {
        self.state.lock().map_or(0, |s| s.resumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_trace::binary::TraceWriter;
    use paragraph_trace::{synthetic, Limits, SegmentMap};
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paragraph-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_with_chain(dir: &Path, len: usize) -> (TraceStore, String) {
        let records = synthetic::chain(len);
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, SegmentMap::default()).expect("header writes");
        for record in &records {
            writer.write_record(record).expect("record writes");
        }
        writer.finish().expect("trailer writes");
        let store =
            TraceStore::open(dir.join("spool"), Limits::default(), u64::MAX).expect("store opens");
        let id = store.upload(out, false).expect("upload admits").id;
        (store, id)
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig::dataflow_limit().with_segments(SegmentMap::default())
    }

    #[test]
    fn advance_then_finish_matches_one_shot_analysis() {
        let dir = scratch("incremental");
        let (store, trace_id) = store_with_chain(&dir, 100);
        let sessions = SessionStore::open(dir.join("sessions"), 4).expect("sessions open");
        let trace = store.resolve(&trace_id).expect("resolve");
        let id = sessions.open_session(&trace, config()).expect("opens");
        let status = sessions.advance(&id, &store, 30, None).expect("advances");
        assert_eq!(status.records_processed, 30);
        assert_eq!(status.records_total, 100);
        let report = sessions.finish(&id, &store, None).expect("finishes");
        // A 100-op dependence chain has a critical path of 100 levels.
        assert_eq!(report.total_records(), 100);
        let oneshot = paragraph_core::analyze_refs(trace.records.iter(), &config());
        assert_eq!(
            report.to_json(),
            oneshot.to_json(),
            "incremental == one-shot"
        );
        assert_eq!(sessions.count(), 0, "finish closes the session");
    }

    #[test]
    fn eviction_checkpoints_and_resume_preserves_the_answer() {
        let dir = scratch("evict");
        let (store, trace_id) = store_with_chain(&dir, 200);
        // Budget of one live session: opening a second evicts the first.
        let sessions = SessionStore::open(dir.join("sessions"), 1).expect("sessions open");
        let trace = store.resolve(&trace_id).expect("resolve");
        let a = sessions.open_session(&trace, config()).expect("a opens");
        sessions.advance(&a, &store, 80, None).expect("a advances");
        let b = sessions.open_session(&trace, config()).expect("b opens");
        assert!(sessions.evicted() >= 1, "opening b must evict a");
        assert!(
            dir.join("sessions").join(format!("{a}.pgcp")).exists(),
            "eviction writes a's checkpoint"
        );
        // No orphaned temp files from the checkpoint write.
        let tmps = std::fs::read_dir(dir.join("sessions"))
            .expect("dir")
            .filter(|e| {
                e.as_ref()
                    .expect("entry")
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count();
        assert_eq!(tmps, 0);
        // Touching a again resumes it from the checkpoint and the final
        // answer is identical to an uninterrupted run.
        let report = sessions.finish(&a, &store, None).expect("a finishes");
        assert!(sessions.resumed() >= 1, "a must have resumed");
        let oneshot = paragraph_core::analyze_refs(trace.records.iter(), &config());
        assert_eq!(report.to_json(), oneshot.to_json());
        let _ = sessions.delete(&b);
    }

    #[test]
    fn deadline_overrun_rejects_but_preserves_progress() {
        let dir = scratch("deadline");
        let (store, trace_id) = store_with_chain(&dir, 50_000);
        let sessions = SessionStore::open(dir.join("sessions"), 4).expect("sessions open");
        let trace = store.resolve(&trace_id).expect("resolve");
        let id = sessions.open_session(&trace, config()).expect("opens");
        let err = sessions
            .advance(&id, &store, u64::MAX, Some(std::time::Duration::ZERO))
            .expect_err("a zero deadline must overrun");
        assert_eq!(err.status(), 422);
        assert!(err.body_json().contains("\"limit\":\"deadline\""));
        // The session survives and can still finish.
        let report = sessions.finish(&id, &store, None).expect("finishes");
        assert_eq!(report.total_records(), 50_000);
    }

    #[test]
    fn delete_discards_the_session_and_its_checkpoint() {
        let dir = scratch("delete");
        let (store, trace_id) = store_with_chain(&dir, 10);
        let sessions = SessionStore::open(dir.join("sessions"), 4).expect("sessions open");
        let trace = store.resolve(&trace_id).expect("resolve");
        let id = sessions.open_session(&trace, config()).expect("opens");
        sessions.delete(&id).expect("deletes");
        assert_eq!(sessions.count(), 0);
        assert_eq!(
            sessions.status(&id, &store).expect_err("gone").status(),
            404
        );
    }

    #[test]
    fn checkpoint_all_drains_every_live_session() {
        let dir = scratch("drain");
        let (store, trace_id) = store_with_chain(&dir, 40);
        let sessions = SessionStore::open(dir.join("sessions"), 8).expect("sessions open");
        let trace = store.resolve(&trace_id).expect("resolve");
        let a = sessions.open_session(&trace, config()).expect("a");
        let b = sessions.open_session(&trace, config()).expect("b");
        sessions.advance(&a, &store, 10, None).expect("a advances");
        let written = sessions.checkpoint_all().expect("drain checkpoints");
        assert_eq!(written, 2);
        assert_eq!(sessions.live_count(), 0);
        // Both resume cleanly afterwards.
        for id in [a, b] {
            let report = sessions.finish(&id, &store, None).expect("finishes");
            assert_eq!(report.total_records(), 40);
        }
    }
}

//! The daemon's trace store: governed admission, crash-consistent spool,
//! budgeted in-memory cache.
//!
//! Uploaded traces are decoded **before** anything touches disk, under the
//! server's [`Limits`] — by default [`Limits::strict`], because every
//! upload is untrusted input (docs/ingest.md). A trace that decodes is
//! spooled through the shared crash-consistent artifact writer (unique
//! temp, `sync_all`, rename, parent fsync), so a crash mid-upload never
//! leaves a half-written spool entry, and the startup sweep removes any
//! orphaned temps a previous hard kill left behind.
//!
//! Decoded records are cached in memory under a byte budget. When the
//! budget overflows, least-recently-used entries drop their records (the
//! spool file remains); the next request that needs them re-decodes from
//! the spool under the same limits. The store therefore never holds more
//! decoded state than the budget allows, no matter how many traces have
//! been uploaded.

use crate::error::ServeError;
use paragraph_core::TraceIdentity;
use paragraph_trace::binary::TraceReader;
use paragraph_trace::{
    Limits, ResourceGovernor, SegmentMap, TraceError, TraceErrorKind, TraceRecord, TraceSource,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What `POST /traces` reports back.
#[derive(Debug, Clone)]
pub struct UploadSummary {
    /// The assigned trace id (`t1`, `t2`, ...).
    pub id: String,
    /// Records decoded.
    pub records: u64,
    /// Spooled (binary) size in bytes.
    pub bytes: u64,
}

/// A resolved trace, records resident.
#[derive(Debug, Clone)]
pub struct ResolvedTrace {
    /// The trace id.
    pub id: String,
    /// The decoded records, shared with the cache.
    pub records: Arc<Vec<TraceRecord>>,
    /// The trace's segment map.
    pub segments: SegmentMap,
    /// Stream identity, for checkpoint verification.
    pub identity: TraceIdentity,
}

struct StoredTrace {
    path: PathBuf,
    segments: SegmentMap,
    identity: TraceIdentity,
    /// Decoded records, present while within the cache budget.
    records: Option<Arc<Vec<TraceRecord>>>,
    last_use: u64,
}

impl StoredTrace {
    fn resident_bytes(&self) -> u64 {
        match &self.records {
            Some(records) => (records.len() * std::mem::size_of::<TraceRecord>()) as u64,
            None => 0,
        }
    }
}

struct StoreState {
    traces: HashMap<String, StoredTrace>,
    next_id: u64,
    clock: u64,
    evictions: u64,
    reloads: u64,
}

/// The shared trace store.
pub struct TraceStore {
    spool: PathBuf,
    limits: Limits,
    cache_budget: u64,
    state: Mutex<StoreState>,
}

/// Classifies a decode failure: governor rejection, damage, or I/O.
fn decode_err(scope: &str, e: TraceError) -> ServeError {
    if let Some(v) = e.limit_violation() {
        return ServeError::rejected(scope, v);
    }
    match e.kind() {
        TraceErrorKind::Io(_) => ServeError::Internal(format!("{scope}: {e}")),
        _ => ServeError::BadRequest(format!("{scope}: {e}")),
    }
}

/// Decodes v2 trace bytes under `limits`. Used both for fresh uploads and
/// for spool reloads after a cache eviction.
fn decode_governed(
    scope: &str,
    bytes: Vec<u8>,
    limits: Limits,
) -> Result<(Vec<TraceRecord>, SegmentMap), ServeError> {
    let mut reader = TraceReader::from_source(TraceSource::from_bytes(bytes))
        .map_err(|e| decode_err(scope, e))?
        .with_governor(ResourceGovernor::new(limits));
    let segments = reader.segment_map();
    let mut records = Vec::new();
    while reader
        .read_block(&mut records)
        .map_err(|e| decode_err(scope, e))?
        > 0
    {}
    Ok((records, segments))
}

impl TraceStore {
    /// Opens the store over `spool`, creating the directory and sweeping
    /// any orphaned temp files a crashed predecessor left behind.
    pub fn open(
        spool: PathBuf,
        limits: Limits,
        cache_budget: u64,
    ) -> Result<TraceStore, ServeError> {
        std::fs::create_dir_all(&spool)
            .map_err(|e| ServeError::Internal(format!("spool {}: {e}", spool.display())))?;
        paragraph_core::artifact::clean_orphaned_tmp(&spool);
        Ok(TraceStore {
            spool,
            limits,
            cache_budget: cache_budget.max(1),
            state: Mutex::new(StoreState {
                traces: HashMap::new(),
                next_id: 0,
                clock: 0,
                evictions: 0,
                reloads: 0,
            }),
        })
    }

    /// The admission limits uploads decode under.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, StoreState>, ServeError> {
        self.state
            .lock()
            .map_err(|_| ServeError::Internal("trace store lock poisoned".into()))
    }

    /// Admits one upload: decode under the governor (text input is first
    /// converted through the ingest pipeline), then spool the binary bytes
    /// crash-consistently, then cache the decoded records.
    pub fn upload(&self, body: Vec<u8>, text: bool) -> Result<UploadSummary, ServeError> {
        let binary = if text {
            let mut converted = Vec::new();
            let mut governor = ResourceGovernor::new(self.limits);
            paragraph_trace::ingest::ingest_text(
                std::io::Cursor::new(&body),
                &mut converted,
                &mut governor,
            )
            .map_err(|e| {
                if let Some(v) = e.limit_violation() {
                    ServeError::rejected("upload", v)
                } else {
                    ServeError::BadRequest(format!("upload: {e}"))
                }
            })?;
            converted
        } else {
            body
        };
        let (records, segments) = decode_governed("upload", binary.clone(), self.limits)?;
        let identity = TraceIdentity::of_records(&records);
        let record_count = records.len() as u64;
        let bytes = binary.len() as u64;

        let (id, path) = {
            let mut state = self.lock()?;
            state.next_id += 1;
            let id = format!("t{}", state.next_id);
            let path = self.spool.join(format!("{id}.pgtr"));
            (id, path)
        };
        paragraph_core::artifact::write_atomic_bytes(&path, &binary)
            .map_err(|e| ServeError::Internal(format!("spool {}: {e}", path.display())))?;

        let mut state = self.lock()?;
        state.clock += 1;
        let now = state.clock;
        state.traces.insert(
            id.clone(),
            StoredTrace {
                path,
                segments,
                identity,
                records: Some(Arc::new(records)),
                last_use: now,
            },
        );
        Self::enforce_budget(&mut state, self.cache_budget, &id);
        Ok(UploadSummary {
            id,
            records: record_count,
            bytes,
        })
    }

    /// Resolves `id` to resident records, reloading from the spool when
    /// the cache dropped them.
    pub fn resolve(&self, id: &str) -> Result<ResolvedTrace, ServeError> {
        let (cached, path) = {
            let mut state = self.lock()?;
            state.clock += 1;
            let now = state.clock;
            let entry = state
                .traces
                .get_mut(id)
                .ok_or_else(|| ServeError::NotFound(format!("no trace `{id}`")))?;
            entry.last_use = now;
            match &entry.records {
                Some(records) => (
                    Some(ResolvedTrace {
                        id: id.to_owned(),
                        records: Arc::clone(records),
                        segments: entry.segments,
                        identity: entry.identity,
                    }),
                    PathBuf::new(),
                ),
                None => (None, entry.path.clone()),
            }
        };
        if let Some(resolved) = cached {
            return Ok(resolved);
        }
        // Cache miss: re-decode from the spool outside the store lock so a
        // large reload never blocks unrelated requests.
        let bytes = std::fs::read(&path)
            .map_err(|e| ServeError::Internal(format!("spool {}: {e}", path.display())))?;
        let (records, segments) = decode_governed(id, bytes, self.limits)?;
        let identity = TraceIdentity::of_records(&records);
        let records = Arc::new(records);
        let mut state = self.lock()?;
        state.reloads += 1;
        state.clock += 1;
        let now = state.clock;
        let entry = state
            .traces
            .get_mut(id)
            .ok_or_else(|| ServeError::NotFound(format!("no trace `{id}`")))?;
        if entry.identity != identity {
            return Err(ServeError::Internal(format!(
                "spool {}: reloaded trace does not match its recorded identity",
                path.display()
            )));
        }
        entry.records = Some(Arc::clone(&records));
        entry.segments = segments;
        entry.last_use = now;
        let resolved = ResolvedTrace {
            id: id.to_owned(),
            records,
            segments,
            identity,
        };
        Self::enforce_budget(&mut state, self.cache_budget, id);
        Ok(resolved)
    }

    /// Drops LRU records until resident bytes fit the budget. `keep` (the
    /// entry just touched) is never dropped, so a trace larger than the
    /// whole budget still serves — it just shares the cache with nothing.
    fn enforce_budget(state: &mut StoreState, budget: u64, keep: &str) {
        let mut resident: u64 = state.traces.values().map(StoredTrace::resident_bytes).sum();
        while resident > budget {
            let victim = state
                .traces
                .iter()
                .filter(|(id, t)| t.records.is_some() && id.as_str() != keep)
                .min_by_key(|(_, t)| t.last_use)
                .map(|(id, _)| id.clone());
            let Some(victim) = victim else { break };
            if let Some(entry) = state.traces.get_mut(&victim) {
                resident -= entry.resident_bytes();
                entry.records = None;
                state.evictions += 1;
            }
        }
    }

    /// Uploaded traces currently known.
    pub fn count(&self) -> usize {
        self.state.lock().map_or(0, |s| s.traces.len())
    }

    /// Decoded bytes currently resident in the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.state.lock().map_or(0, |s| {
            s.traces.values().map(StoredTrace::resident_bytes).sum()
        })
    }

    /// Cache evictions (records dropped to the spool), cumulatively.
    pub fn evictions(&self) -> u64 {
        self.state.lock().map_or(0, |s| s.evictions)
    }

    /// Spool reloads after cache misses, cumulatively.
    pub fn reloads(&self) -> u64 {
        self.state.lock().map_or(0, |s| s.reloads)
    }

    /// The spool directory.
    pub fn spool_dir(&self) -> &Path {
        &self.spool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_trace::binary::TraceWriter;
    use paragraph_trace::synthetic;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paragraph-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn encoded_chain(len: usize) -> Vec<u8> {
        let records = synthetic::chain(len);
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, SegmentMap::default()).expect("header writes");
        for record in &records {
            writer.write_record(record).expect("record writes");
        }
        writer.finish().expect("trailer writes");
        out
    }

    #[test]
    fn upload_then_resolve_roundtrips() {
        let store = TraceStore::open(scratch("roundtrip"), Limits::default(), u64::MAX)
            .expect("store opens");
        let summary = store
            .upload(encoded_chain(64), false)
            .expect("upload admits");
        assert_eq!(summary.records, 64);
        let resolved = store.resolve(&summary.id).expect("resolve hits");
        assert_eq!(resolved.records.len(), 64);
        // The spool holds exactly the uploaded bytes, no temp files.
        let entries: Vec<_> = std::fs::read_dir(store.spool_dir())
            .expect("spool dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        assert_eq!(entries, vec![format!("{}.pgtr", summary.id)]);
    }

    #[test]
    fn rejects_oversized_declarations_without_spooling() {
        let store = TraceStore::open(
            scratch("reject"),
            Limits {
                max_records: 8,
                ..Limits::default()
            },
            u64::MAX,
        )
        .expect("store opens");
        let err = store
            .upload(encoded_chain(64), false)
            .expect_err("64 records over an 8-record limit must be rejected");
        assert_eq!(err.status(), 422, "governor rejection maps to 422: {err}");
        // Nothing reached the spool.
        let count = std::fs::read_dir(store.spool_dir())
            .expect("spool dir")
            .count();
        assert_eq!(count, 0, "a rejected upload must leave no spool entry");
    }

    #[test]
    fn garbage_uploads_are_bad_requests() {
        let store =
            TraceStore::open(scratch("garbage"), Limits::default(), u64::MAX).expect("store opens");
        let err = store
            .upload(b"not a trace at all".to_vec(), false)
            .expect_err("garbage must be refused");
        assert_eq!(err.status(), 400);
        assert!(matches!(err, ServeError::BadRequest(_)));
    }

    #[test]
    fn unknown_ids_are_not_found() {
        let store =
            TraceStore::open(scratch("missing"), Limits::default(), u64::MAX).expect("store opens");
        let err = store.resolve("t99").expect_err("unknown id");
        assert_eq!(err.status(), 404);
    }

    #[test]
    fn cache_evicts_lru_and_reloads_from_spool() {
        // Budget fits roughly one trace's records, not two.
        let budget = (96 * std::mem::size_of::<TraceRecord>()) as u64;
        let store =
            TraceStore::open(scratch("evict"), Limits::default(), budget).expect("store opens");
        let a = store.upload(encoded_chain(64), false).expect("upload a");
        let b = store.upload(encoded_chain(64), false).expect("upload b");
        assert!(
            store.evictions() >= 1,
            "the second upload must evict the first"
        );
        // Resolving the evicted trace reloads it from the spool with the
        // same contents.
        let ra = store.resolve(&a.id).expect("a reloads from spool");
        assert_eq!(ra.records.len(), 64);
        assert!(store.reloads() >= 1);
        let rb = store.resolve(&b.id).expect("b still resolves");
        assert_eq!(rb.records.len(), 64);
    }

    #[test]
    fn text_uploads_go_through_the_ingest_pipeline() {
        let store =
            TraceStore::open(scratch("text"), Limits::default(), u64::MAX).expect("store opens");
        let text = "# comment\n!segments heap=64 stack=256\n0x100 int-alu -> r8\n";
        let summary = store
            .upload(text.as_bytes().to_vec(), true)
            .expect("text admits");
        assert_eq!(summary.records, 1);
        let resolved = store.resolve(&summary.id).expect("resolves");
        assert_eq!(resolved.records.len(), 1);
    }
}

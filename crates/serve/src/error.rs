//! The daemon's failure taxonomy and its mapping onto HTTP statuses.
//!
//! The CLI classifies failures into exit codes 2–7 (see the consolidated
//! table in the README); the daemon maps the same taxonomy onto statuses so
//! a supervisor scripting against either front end dispatches on the same
//! classes:
//!
//! | class                      | CLI exit | HTTP status |
//! |----------------------------|---------:|------------:|
//! | usage / unknown route      |        2 | 404 / 405   |
//! | malformed request or trace |        4 | 400         |
//! | body larger than policy    |        7 | 413         |
//! | governor rejection         |        7 | 422         |
//! | queue full (shed)          |        — | 429         |
//! | handler panic (recycled)   |        — | 500         |
//! | draining                   |        — | 503         |
//!
//! A 422 body is byte-compatible with the CLI's exit-7 stderr report:
//! one JSON object with `error`, `path`, `limit`, `what`, `actual`, `cap`.

use paragraph_trace::LimitViolation;
use std::fmt;

/// Minimal JSON string escaping, mirroring the CLI's rejection reports.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A classified request failure. Every handler returns `Result<Response,
/// ServeError>`; the connection loop turns the error into a status + JSON
/// body. Panics are *not* represented here — they unwind through
/// `catch_unwind` in the connection loop and become 500s with the worker
/// recycled.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request or its payload is malformed (unparseable HTTP, damaged
    /// trace bytes, invalid query parameter). Maps to 400.
    BadRequest(String),
    /// No such route, trace, or session. Maps to 404.
    NotFound(String),
    /// The route exists but not under this method. Maps to 405.
    MethodNotAllowed(String),
    /// The declared or actual body size exceeds the admission cap — refused
    /// before buffering, so an adversarial Content-Length never allocates.
    /// Maps to 413.
    PayloadTooLarge {
        /// What was being sized (e.g. `request body`).
        what: String,
        /// Declared or observed size.
        actual: u64,
        /// The admission cap it exceeded.
        cap: u64,
    },
    /// A resource governor rejected well-formed-looking input that declares
    /// more than policy allows — the serve-side face of CLI exit code 7.
    /// Maps to 422 with the CLI-shaped JSON rejection report as the body.
    Rejected {
        /// What was being decoded (stands in for the CLI report's `path`).
        scope: String,
        /// Which limit tripped (`max_records`, `deadline`, ...).
        limit: String,
        /// What was being measured.
        what: String,
        /// The measured or declared value.
        actual: u64,
        /// The configured cap.
        cap: u64,
        /// Human-readable diagnostic.
        detail: String,
    },
    /// The bounded admission queue is full; the client should back off.
    /// Maps to 429 with Retry-After.
    Busy {
        /// Suggested back-off, seconds.
        retry_after_secs: u64,
    },
    /// The daemon is draining: health endpoints still answer, work is
    /// refused. Maps to 503 with Retry-After.
    Draining {
        /// Suggested back-off, seconds.
        retry_after_secs: u64,
    },
    /// An internal failure that is not the client's fault (spool I/O,
    /// poisoned lock). Maps to 500; the daemon keeps serving.
    Internal(String),
}

impl ServeError {
    /// The governor rejection for `scope`, carrying the violation's fields
    /// into the CLI-shaped report.
    pub fn rejected(scope: impl Into<String>, v: &LimitViolation) -> ServeError {
        ServeError::Rejected {
            scope: scope.into(),
            limit: v.limit.to_owned(),
            what: v.what.to_owned(),
            actual: v.actual,
            cap: v.cap,
            detail: v.to_string(),
        }
    }

    /// The HTTP status this failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::Rejected { .. } => 422,
            ServeError::Busy { .. } => 429,
            ServeError::Internal(_) => 500,
            ServeError::Draining { .. } => 503,
        }
    }

    /// Retry-After seconds for back-pressure statuses, `None` otherwise.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServeError::Busy { retry_after_secs } | ServeError::Draining { retry_after_secs } => {
                Some(*retry_after_secs)
            }
            _ => None,
        }
    }

    /// The JSON body. For `Rejected` this is byte-compatible with the
    /// CLI's exit-7 rejection report (`path` carries the scope).
    pub fn body_json(&self) -> String {
        match self {
            ServeError::Rejected {
                scope,
                limit,
                what,
                actual,
                cap,
                ..
            } => format!(
                "{{\"error\":\"input-rejected\",\"path\":\"{}\",\"limit\":\"{}\",\
                 \"what\":\"{}\",\"actual\":{actual},\"cap\":{cap}}}",
                json_escape(scope),
                json_escape(limit),
                json_escape(what),
            ),
            ServeError::PayloadTooLarge { what, actual, cap } => format!(
                "{{\"error\":\"payload-too-large\",\"what\":\"{}\",\
                 \"actual\":{actual},\"cap\":{cap}}}",
                json_escape(what),
            ),
            ServeError::Busy { retry_after_secs } => {
                format!("{{\"error\":\"overloaded\",\"retry_after_secs\":{retry_after_secs}}}")
            }
            ServeError::Draining { retry_after_secs } => {
                format!("{{\"error\":\"draining\",\"retry_after_secs\":{retry_after_secs}}}")
            }
            ServeError::BadRequest(m) => {
                format!(
                    "{{\"error\":\"bad-request\",\"detail\":\"{}\"}}",
                    json_escape(m)
                )
            }
            ServeError::NotFound(m) => {
                format!(
                    "{{\"error\":\"not-found\",\"detail\":\"{}\"}}",
                    json_escape(m)
                )
            }
            ServeError::MethodNotAllowed(m) => format!(
                "{{\"error\":\"method-not-allowed\",\"detail\":\"{}\"}}",
                json_escape(m)
            ),
            ServeError::Internal(m) => {
                format!(
                    "{{\"error\":\"internal\",\"detail\":\"{}\"}}",
                    json_escape(m)
                )
            }
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(m) => write!(f, "not found: {m}"),
            ServeError::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            ServeError::PayloadTooLarge { what, actual, cap } => {
                write!(f, "payload too large: {what} is {actual} bytes, cap {cap}")
            }
            ServeError::Rejected { detail, .. } => write!(f, "input rejected: {detail}"),
            ServeError::Busy { .. } => f.write_str("admission queue full"),
            ServeError::Draining { .. } => f.write_str("daemon is draining"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_trace::{Limits, ResourceGovernor};

    #[test]
    fn statuses_cover_the_taxonomy() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::MethodNotAllowed("x".into()).status(), 405);
        assert_eq!(
            ServeError::PayloadTooLarge {
                what: "body".into(),
                actual: 2,
                cap: 1
            }
            .status(),
            413
        );
        assert_eq!(
            ServeError::Busy {
                retry_after_secs: 1
            }
            .status(),
            429
        );
        assert_eq!(ServeError::Internal("x".into()).status(), 500);
        assert_eq!(
            ServeError::Draining {
                retry_after_secs: 1
            }
            .status(),
            503
        );
    }

    #[test]
    fn rejection_body_matches_the_cli_report_shape() {
        let mut governor = ResourceGovernor::new(Limits {
            max_records: 1,
            ..Limits::default()
        });
        governor.charge_records(1).expect("first record fits");
        let v = governor.charge_records(1).expect_err("limit must trip");
        let err = ServeError::rejected("upload", &v);
        assert_eq!(err.status(), 422);
        let body = err.body_json();
        assert!(body.starts_with("{\"error\":\"input-rejected\",\"path\":\"upload\""));
        assert!(body.contains("\"limit\":\"max-records\""));
        assert!(body.contains("\"actual\":2"));
        assert!(body.contains("\"cap\":1"));
    }

    #[test]
    fn retry_after_only_on_backpressure() {
        assert_eq!(
            ServeError::Busy {
                retry_after_secs: 3
            }
            .retry_after(),
            Some(3)
        );
        assert_eq!(
            ServeError::Draining {
                retry_after_secs: 5
            }
            .retry_after(),
            Some(5)
        );
        assert_eq!(ServeError::Internal("x".into()).retry_after(), None);
    }
}

//! The daemon: listeners, routing, admission, drain.
//!
//! One [`Server`] owns a TCP or unix-domain listener, a bounded worker
//! [`Pool`], a governed [`TraceStore`], and a checkpoint-evicting
//! [`SessionStore`]. The accept loop is non-blocking so it can interleave
//! three duties: accepting connections, polling the shutdown signal, and
//! deciding when a drain is complete.
//!
//! Robustness properties, by construction:
//!
//! * Every handler runs under `catch_unwind`; a panic answers 500, the
//!   worker is recycled, and the process keeps serving.
//! * Admission is bounded: a full queue answers 429 + Retry-After from
//!   the accept thread without buffering the connection.
//! * Work requests during a drain answer 503 + Retry-After while
//!   `/healthz` and `/metrics` stay observable.
//! * A completed drain checkpoints every live session through the
//!   crash-consistent artifact writer and returns a [`ServeSummary`]; the
//!   CLI turns that into exit 0.

use crate::error::ServeError;
use crate::fault::{injected_error, RequestFault, RequestFaultKind};
use crate::http::{
    ack_continue, check_body_cap, parse_request_head, read_body, write_response, HttpError,
    Request, Response,
};
use crate::pool::Pool;
use crate::session::{SessionStatus, SessionStore};
use crate::store::TraceStore;
use paragraph_core::branch::{BranchPolicy, PredictorKind};
use paragraph_core::telemetry;
use paragraph_core::{
    AnalysisConfig, AnalysisReport, LatencyModel, LiveWell, MemoryModel, RenameSet, SyscallPolicy,
    WindowSize,
};
use paragraph_trace::{Limits, SegmentMap};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the daemon is configured. `Default` is a loopback TCP listener on
/// an ephemeral port with strict admission limits.
pub struct ServeOptions {
    /// TCP bind address (e.g. `127.0.0.1:0`). Ignored when `uds` is set.
    pub addr: String,
    /// Unix-domain socket path instead of TCP.
    pub uds: Option<PathBuf>,
    /// Worker threads.
    pub workers: usize,
    /// Admission queue capacity; beyond it, 429.
    pub queue_capacity: usize,
    /// Most analyzers resident at once; beyond it, checkpoint eviction.
    pub max_live_sessions: usize,
    /// Spool directory for uploaded traces and session checkpoints.
    pub spool: PathBuf,
    /// Admission limits for uploads ([`Limits::strict`] by default —
    /// every upload is untrusted input).
    pub limits: Limits,
    /// Per-request analysis deadline.
    pub deadline: Option<Duration>,
    /// Largest accepted request body.
    pub max_body_bytes: u64,
    /// Byte budget for decoded records held in memory.
    pub cache_budget_bytes: u64,
    /// Written once the listener is bound: one line with the bound
    /// address (`http://IP:PORT` or `unix:PATH`), crash-consistently, so
    /// a launcher can poll for readiness.
    pub ready_file: Option<PathBuf>,
    /// Request fault injection (defaults from `PARAGRAPH_FAULT_REQUEST`).
    pub fault: Option<RequestFault>,
    /// Polled by the accept loop; `true` triggers the same graceful
    /// drain as `POST /shutdown`. The CLI wires the process signal flag
    /// in here, so the flag stays server-local and in-process tests
    /// never drain each other.
    pub external_shutdown: Option<Box<dyn Fn() -> bool + Send>>,
    /// Retry-After seconds suggested on 429/503.
    pub retry_after_secs: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            uds: None,
            workers: 4,
            queue_capacity: 64,
            max_live_sessions: 8,
            spool: PathBuf::from("paragraph-serve"),
            limits: Limits::strict(),
            deadline: None,
            max_body_bytes: 256 * 1024 * 1024,
            cache_budget_bytes: 512 * 1024 * 1024,
            ready_file: None,
            fault: None,
            external_shutdown: None,
            retry_after_secs: 1,
        }
    }
}

/// What a completed run reports back to the operator.
#[derive(Debug, Default)]
pub struct ServeSummary {
    /// Requests accepted (including those answered with errors).
    pub requests: u64,
    /// Connections shed with 429.
    pub shed: u64,
    /// Workers recycled after panicking handlers.
    pub workers_recycled: u64,
    /// Sessions checkpointed by the final drain.
    pub sessions_checkpointed: usize,
    /// Drain-time checkpoint failures (empty on a clean drain).
    pub checkpoint_failures: Vec<String>,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted connection, unified over TCP and unix sockets.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_timeouts(&self, timeout: Duration) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_read_timeout(Some(timeout));
                let _ = s.set_write_timeout(Some(timeout));
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.set_read_timeout(Some(timeout));
                let _ = s.set_write_timeout(Some(timeout));
            }
        }
    }
}

/// Shared server state, visible to every worker.
struct ServerState {
    store: TraceStore,
    sessions: SessionStore,
    pool: Pool,
    fault: Option<RequestFault>,
    /// Server-local drain flag — deliberately not process-global, so two
    /// in-process servers (tests) never drain each other.
    draining: AtomicBool,
    requests: AtomicU64,
    shed: AtomicU64,
    max_body_bytes: u64,
    deadline: Option<Duration>,
    retry_after_secs: u64,
    started: Instant,
}

/// The daemon. [`Server::bind`] claims the listener (so the bound port is
/// knowable before serving); [`Server::run`] serves until drained.
pub struct Server {
    listener: Listener,
    state: Arc<ServerState>,
    external_shutdown: Option<Box<dyn Fn() -> bool + Send>>,
    ready_file: Option<PathBuf>,
    uds_path: Option<PathBuf>,
}

impl Server {
    /// Binds the listener and opens the stores. Nothing is served yet.
    pub fn bind(options: ServeOptions) -> Result<Server, ServeError> {
        let ServeOptions {
            addr,
            uds,
            workers,
            queue_capacity,
            max_live_sessions,
            spool,
            limits,
            deadline,
            max_body_bytes,
            cache_budget_bytes,
            ready_file,
            fault,
            external_shutdown,
            retry_after_secs,
        } = options;
        let (listener, uds_path) = match uds {
            #[cfg(unix)]
            Some(path) => {
                // A stale socket file from a crashed predecessor would
                // make bind fail; remove it (connect-refused proves no
                // live daemon owns it — and a live one would be serving).
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)
                    .map_err(|e| ServeError::Internal(format!("bind {}: {e}", path.display())))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServeError::Internal(format!("nonblocking: {e}")))?;
                (Listener::Unix(listener), Some(path))
            }
            #[cfg(not(unix))]
            Some(path) => {
                return Err(ServeError::Internal(format!(
                    "unix sockets are not supported on this platform ({})",
                    path.display()
                )))
            }
            None => {
                let listener = TcpListener::bind(&addr)
                    .map_err(|e| ServeError::Internal(format!("bind {addr}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServeError::Internal(format!("nonblocking: {e}")))?;
                (Listener::Tcp(listener), None)
            }
        };
        let store = TraceStore::open(spool.join("traces"), limits, cache_budget_bytes)?;
        let sessions = SessionStore::open(spool.join("sessions"), max_live_sessions)?;
        let pool = Pool::new(workers, queue_capacity);
        // /metrics serves the global registry's Prometheus snapshot; flip
        // it on so the serve counters below actually count.
        telemetry::global().enable();
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                store,
                sessions,
                pool,
                fault,
                draining: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                max_body_bytes,
                deadline,
                retry_after_secs,
                started: Instant::now(),
            }),
            external_shutdown,
            ready_file,
            uds_path,
        })
    }

    /// The bound TCP address (`None` for unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// The one-line endpoint description written to the ready file.
    pub fn endpoint(&self) -> String {
        match (&self.uds_path, self.local_addr()) {
            (Some(path), _) => format!("unix:{}", path.display()),
            (None, Some(addr)) => format!("http://{addr}"),
            (None, None) => "http://unknown".into(),
        }
    }

    /// Serves until a drain completes. The drain is triggered by
    /// `POST /shutdown` or by the `external_shutdown` hook (the CLI wires
    /// `SIGTERM`/`SIGINT` there); it stops admitting work, lets in-flight
    /// requests finish, checkpoints every live session, and returns.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let Server {
            listener,
            state,
            external_shutdown,
            ready_file,
            uds_path,
        } = self;
        if let Some(path) = &ready_file {
            let line = format!(
                "{}\n",
                match (&uds_path, &listener) {
                    (Some(p), _) => format!("unix:{}", p.display()),
                    (None, Listener::Tcp(l)) => match l.local_addr() {
                        Ok(addr) => format!("http://{addr}"),
                        Err(_) => "http://unknown".into(),
                    },
                    #[cfg(unix)]
                    (None, Listener::Unix(_)) => "http://unknown".into(),
                }
            );
            paragraph_core::artifact::write_atomic_bytes(path, line.as_bytes())
                .map_err(|e| ServeError::Internal(format!("ready file {}: {e}", path.display())))?;
        }

        loop {
            if !state.draining.load(Ordering::Acquire) {
                if let Some(hook) = &external_shutdown {
                    if hook() {
                        state.draining.store(true, Ordering::Release);
                    }
                }
            } else if state.pool.idle() {
                // Drained: nothing queued, nothing running. In-flight
                // requests all completed; checkpoint what remains.
                break;
            }

            let conn = match &listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((stream, _)) => Some(Conn::Tcp(stream)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                #[cfg(unix)]
                Listener::Unix(l) => match l.accept() {
                    Ok((stream, _)) => Some(Conn::Unix(stream)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            let Some(conn) = conn else {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            };
            let _ = match &conn {
                Conn::Tcp(s) => s.set_nonblocking(false),
                #[cfg(unix)]
                Conn::Unix(s) => s.set_nonblocking(false),
            };
            conn.set_timeouts(Duration::from_secs(30));
            // The connection rides in a shared slot so a refused submit
            // can take it back and answer 429 instead of dropping it.
            let slot = Arc::new(std::sync::Mutex::new(Some(conn)));
            let worker_state = Arc::clone(&state);
            let worker_slot = Arc::clone(&slot);
            let submitted = state.pool.try_submit(move || {
                if let Some(conn) = worker_slot.lock().ok().and_then(|mut s| s.take()) {
                    serve_connection(conn, worker_state);
                }
            });
            if !submitted {
                // Shed on the accept thread: a canned 429 and close. The
                // write is bounded by the socket timeout set above.
                if let Some(mut conn) = slot.lock().ok().and_then(|mut s| s.take()) {
                    state.shed.fetch_add(1, Ordering::Relaxed);
                    paragraph_core::counter!("serve.shed", 1);
                    let err = ServeError::Busy {
                        retry_after_secs: state.retry_after_secs,
                    };
                    let _ = write_response(&mut conn, &Response::from(&err));
                }
            }
        }

        // Final drain: checkpoint every live session crash-consistently.
        let mut summary = ServeSummary {
            requests: state.requests.load(Ordering::Relaxed),
            shed: state.shed.load(Ordering::Relaxed),
            workers_recycled: state.pool.recycled(),
            ..ServeSummary::default()
        };
        match state.sessions.checkpoint_all() {
            Ok(written) => summary.sessions_checkpointed = written,
            Err(failures) => summary.checkpoint_failures = failures,
        }
        state.pool.shutdown();
        summary.workers_recycled = state.pool.recycled();
        if let Some(path) = &uds_path {
            let _ = std::fs::remove_file(path);
        }
        if let Some(path) = &ready_file {
            let _ = std::fs::remove_file(path);
        }
        Ok(summary)
    }
}

/// One connection, on a worker thread: parse, route under `catch_unwind`,
/// answer. A panic answers 500 first, then re-raises so the pool recycles
/// this worker.
fn serve_connection(conn: Conn, state: Arc<ServerState>) {
    let mut reader = BufReader::new(conn);
    let mut req = match parse_request_head(&mut reader) {
        Ok(req) => req,
        Err(HttpError::Io(_)) => return, // peer vanished; nothing to answer
        Err(HttpError::Protocol(e)) => {
            let _ = write_response(reader.get_mut(), &Response::from(&e));
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    paragraph_core::counter!("serve.requests", 1);

    // Body admission happens before fault arming so a 413 is deterministic
    // regardless of injected faults.
    if let Err(e) = check_body_cap(&req, state.max_body_bytes) {
        let _ = write_response(reader.get_mut(), &Response::from(&e));
        return;
    }
    if ack_continue(&req, reader.get_mut()).is_err() {
        return;
    }
    if read_body(&mut req, &mut reader).is_err() {
        // Mid-upload disconnect: the body never arrived; there is nobody
        // to answer. The daemon just moves on.
        return;
    }

    let fault = state
        .fault
        .as_ref()
        .and_then(|f| f.arm(&req.method, &req.path));
    if fault == Some(RequestFaultKind::Disconnect) {
        // Injected server-side disconnect: drop without a response.
        return;
    }
    if fault == Some(RequestFaultKind::Stall) {
        std::thread::sleep(Duration::from_secs(1));
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(&state, &req, fault)));
    let response = match outcome {
        Ok(Ok(response)) => response,
        Ok(Err(e)) => {
            count_status(e.status());
            Response::from(&e)
        }
        Err(payload) => {
            // The handler panicked. Answer 500, then re-raise so the pool
            // retires this worker's (tainted) thread and spawns a fresh
            // one. The daemon itself never dies.
            count_status(500);
            paragraph_core::counter!("serve.panics", 1);
            let detail = panic_message(payload.as_ref());
            let e = ServeError::Internal(format!("handler panicked: {detail}"));
            let _ = write_response(reader.get_mut(), &Response::from(&e));
            resume_unwind(payload);
        }
    };
    count_status(response.status);
    let _ = write_response(reader.get_mut(), &response);
}

/// Best-effort panic payload rendering (mirrors the sweep supervisor's).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn count_status(status: u16) {
    match status / 100 {
        2 => paragraph_core::counter!("serve.responses_2xx", 1),
        4 => paragraph_core::counter!("serve.responses_4xx", 1),
        5 => paragraph_core::counter!("serve.responses_5xx", 1),
        _ => {}
    }
}

/// Routes one fully-read request. Pure: takes the request, returns the
/// response; all stream handling stays in [`serve_connection`].
fn handle_request(
    state: &ServerState,
    req: &Request,
    fault: Option<RequestFaultKind>,
) -> Result<Response, ServeError> {
    if let Some(kind) = fault {
        if kind == RequestFaultKind::Panic {
            panic!("injected request fault: {} {}", req.method, req.path);
        }
        if let Some(err) = injected_error(kind, &req.path) {
            return Err(err);
        }
    }

    let draining = state.draining.load(Ordering::Acquire);
    let method = req.method.as_str();
    let path = req.path.as_str();

    match (method, path) {
        ("GET", "/healthz") => return Ok(healthz(state, draining)),
        ("GET", "/metrics") => {
            return Ok(Response::text(
                telemetry::global().snapshot().to_prometheus(),
            ))
        }
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::Release);
            return Ok(Response::json("{\"status\":\"draining\"}"));
        }
        ("GET", "/healthz/") | ("GET", "/metrics/") => {
            return Err(ServeError::NotFound(format!("no route `{path}`")))
        }
        _ => {}
    }

    // Everything below is work; during a drain it is refused while the
    // observability routes above keep answering.
    if draining {
        return Err(ServeError::Draining {
            retry_after_secs: state.retry_after_secs,
        });
    }

    match (method, path) {
        ("POST", "/traces") => {
            let text = req.param("format") == Some("text");
            let summary = state.store.upload(req.body.clone(), text)?;
            paragraph_core::counter!("serve.uploads", 1);
            Ok(Response::json(format!(
                "{{\"id\":\"{}\",\"records\":{},\"bytes\":{}}}",
                summary.id, summary.records, summary.bytes
            )))
        }
        ("POST", "/analyze") => analyze(state, req),
        ("POST", "/sessions") => {
            let trace_id = req
                .param("trace")
                .ok_or_else(|| ServeError::BadRequest("`trace` parameter is required".into()))?;
            let trace = state.store.resolve(trace_id)?;
            let config = config_from_query(req, trace.segments)?;
            let id = state.sessions.open_session(&trace, config)?;
            Ok(Response::json(format!(
                "{{\"id\":\"{id}\",\"trace\":\"{trace_id}\"}}"
            )))
        }
        ("GET", p) if p.starts_with("/sessions/") => {
            let id = &p["/sessions/".len()..];
            if id.is_empty() || id.contains('/') {
                return Err(ServeError::NotFound(format!("no route `{p}`")));
            }
            let status = state.sessions.status(id, &state.store)?;
            Ok(Response::json(session_status_json(&status)))
        }
        ("POST", p) if p.starts_with("/sessions/") && p.ends_with("/advance") => {
            let id = &p["/sessions/".len()..p.len() - "/advance".len()];
            let count: u64 = match req.param("records") {
                Some(n) => n
                    .parse()
                    .map_err(|_| ServeError::BadRequest(format!("bad record count `{n}`")))?,
                None => 4096,
            };
            let deadline = request_deadline(state, req)?;
            let status = state.sessions.advance(id, &state.store, count, deadline)?;
            Ok(Response::json(session_status_json(&status)))
        }
        ("POST", p) if p.starts_with("/sessions/") && p.ends_with("/finish") => {
            let id = &p["/sessions/".len()..p.len() - "/finish".len()];
            let deadline = request_deadline(state, req)?;
            let report = state.sessions.finish(id, &state.store, deadline)?;
            report_response(&report, req)
        }
        ("DELETE", p) if p.starts_with("/sessions/") => {
            let id = &p["/sessions/".len()..];
            state.sessions.delete(id)?;
            Ok(Response::json("{\"status\":\"deleted\"}"))
        }
        // Known routes under the wrong method answer 405, not 404, so a
        // client typo is distinguishable from a missing resource.
        (_, "/traces" | "/analyze" | "/sessions" | "/shutdown" | "/healthz" | "/metrics") => Err(
            ServeError::MethodNotAllowed(format!("`{path}` does not accept {method}")),
        ),
        (_, p) if p.starts_with("/sessions/") => Err(ServeError::MethodNotAllowed(format!(
            "`{path}` does not accept {method}"
        ))),
        _ => Err(ServeError::NotFound(format!("no route `{path}`"))),
    }
}

/// `POST /analyze?trace=tN[&config...][&jobs=N][&format=json|text]` — one
/// complete analysis, byte-identical to the CLI's output for the same
/// configuration (JSON bodies match `--json` artifacts, text bodies match
/// `analyze`'s stdout; `jobs` never changes the bytes, by the parallel
/// engine's determinism contract).
fn analyze(state: &ServerState, req: &Request) -> Result<Response, ServeError> {
    let trace_id = req
        .param("trace")
        .ok_or_else(|| ServeError::BadRequest("`trace` parameter is required".into()))?;
    let trace = state.store.resolve(trace_id)?;
    let config = config_from_query(req, trace.segments)?;
    let jobs = match req.param("jobs") {
        Some(n) => n
            .parse()
            .map_err(|_| ServeError::BadRequest(format!("bad job count `{n}`")))?,
        None => 1,
    };
    let report = if let Some(deadline) = request_deadline(state, req)? {
        // Deadline-governed path: feed in slices, checking the clock
        // between batches. Slice size affects only check granularity —
        // the output bytes are identical to the one-shot path.
        let started = Instant::now();
        let mut well = LiveWell::new(config);
        for slice in trace.records.chunks(4096) {
            let elapsed = started.elapsed();
            if elapsed > deadline {
                return Err(ServeError::Rejected {
                    scope: format!("analyze {trace_id}"),
                    limit: "deadline".into(),
                    what: "analysis time".into(),
                    actual: elapsed.as_millis() as u64,
                    cap: deadline.as_millis() as u64,
                    detail: format!(
                        "analysis deadline exceeded after {}ms (cap {}ms)",
                        elapsed.as_millis(),
                        deadline.as_millis()
                    ),
                });
            }
            well.process_slice(slice);
        }
        well.finish()
    } else {
        paragraph_core::analyze_parallel(&trace.records, &config, jobs.max(1))
    };
    paragraph_core::counter!("serve.analyses", 1);
    report_response(&report, req)
}

/// The analysis deadline for one request: `deadline-ms` in the query
/// overrides — and may only *tighten* — the server-wide deadline, so a
/// tenant can bound its own wait without loosening the operator's policy.
fn request_deadline(state: &ServerState, req: &Request) -> Result<Option<Duration>, ServeError> {
    let Some(raw) = req.param("deadline-ms") else {
        return Ok(state.deadline);
    };
    let ms: u64 = raw
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("bad deadline `{raw}`")))?;
    let requested = Duration::from_millis(ms);
    Ok(Some(match state.deadline {
        Some(server) => server.min(requested),
        None => requested,
    }))
}

/// Renders a finished report in the requested format.
fn report_response(report: &AnalysisReport, req: &Request) -> Result<Response, ServeError> {
    match req.param("format") {
        None | Some("json") => Ok(Response::json(report.to_json())),
        Some("text") => Ok(Response::text(crate::render_report_text(report))),
        Some(other) => Err(ServeError::BadRequest(format!(
            "unknown format `{other}` (json|text)"
        ))),
    }
}

fn session_status_json(status: &SessionStatus) -> String {
    format!(
        "{{\"id\":\"{}\",\"trace\":\"{}\",\"records_processed\":{},\
         \"records_total\":{},\"critical_path\":{},\"parallelism\":{:.4},\
         \"resident\":{}}}",
        status.id,
        status.trace_id,
        status.records_processed,
        status.records_total,
        status.critical_path,
        status.parallelism,
        status.resident
    )
}

fn healthz(state: &ServerState, draining: bool) -> Response {
    let queue_depth = state.pool.queue_depth();
    paragraph_core::gauge!("serve.queue_depth", queue_depth as i64);
    Response::json(format!(
        "{{\"status\":\"{}\",\"draining\":{draining},\
         \"workers\":{},\"queue_depth\":{queue_depth},\"queue_capacity\":{},\
         \"active\":{},\"workers_recycled\":{},\
         \"traces\":{},\"cache_resident_bytes\":{},\"cache_evictions\":{},\
         \"sessions\":{},\"sessions_live\":{},\"sessions_evicted\":{},\
         \"sessions_resumed\":{},\"requests\":{},\"shed\":{},\"uptime_ms\":{}}}",
        if draining { "draining" } else { "ok" },
        state.pool.workers(),
        state.pool.capacity(),
        state.pool.active(),
        state.pool.recycled(),
        state.store.count(),
        state.store.resident_bytes(),
        state.store.evictions(),
        state.sessions.count(),
        state.sessions.live_count(),
        state.sessions.evicted(),
        state.sessions.resumed(),
        state.requests.load(Ordering::Relaxed),
        state.shed.load(Ordering::Relaxed),
        state.started.elapsed().as_millis()
    ))
}

/// Builds the analysis configuration from query parameters, mirroring the
/// CLI's flags one-for-one (same names, same value grammars) so a request
/// and a command line describe the same analysis:
/// `window`, `rename`, `optimistic`, `branch`, `units`,
/// `no-disambiguation`, `value-stats`, `unit-latency`, `live-well-cap`.
fn config_from_query(req: &Request, segments: SegmentMap) -> Result<AnalysisConfig, ServeError> {
    let bad = |msg: String| ServeError::BadRequest(msg);
    let mut config = AnalysisConfig::dataflow_limit().with_segments(segments);
    if let Some(mode) = req.param("rename") {
        config = config.with_renames(match mode {
            "none" => RenameSet::none(),
            "regs" => RenameSet::registers_only(),
            "regs-stack" => RenameSet::registers_and_stack(),
            "all" => RenameSet::all(),
            _ => return Err(bad(format!("unknown rename mode `{mode}`"))),
        });
    }
    if req.flag("optimistic") {
        config = config.with_syscall_policy(SyscallPolicy::Optimistic);
    }
    if let Some(w) = req.param("window") {
        let w: usize = w.parse().map_err(|_| bad(format!("bad window `{w}`")))?;
        config = config.with_window(WindowSize::bounded(w));
    }
    if let Some(mode) = req.param("branch") {
        config = config.with_branch_policy(parse_branch_policy(mode).map_err(bad)?);
    }
    if let Some(units) = req.param("units") {
        let units: usize = units
            .parse()
            .map_err(|_| bad(format!("bad unit count `{units}`")))?;
        config = config.with_issue_limit(units);
    }
    if req.flag("no-disambiguation") {
        config = config.with_memory_model(MemoryModel::NoDisambiguation);
    }
    if req.flag("value-stats") {
        config = config.with_value_stats(true);
    }
    if req.flag("unit-latency") {
        config = config.with_latency(LatencyModel::unit());
    }
    if let Some(cap) = req.param("live-well-cap") {
        let cap: usize = cap
            .parse()
            .map_err(|_| bad(format!("bad live well cap `{cap}`")))?;
        if cap == 0 {
            return Err(bad("live-well-cap requires a positive size".into()));
        }
        config = config.with_live_well_cap(cap);
    }
    Ok(config)
}

/// The CLI's `--branch` grammar, accepted verbatim as the `branch` query
/// parameter.
fn parse_branch_policy(mode: &str) -> Result<BranchPolicy, String> {
    Ok(match mode {
        "perfect" => BranchPolicy::Perfect,
        "stall" => BranchPolicy::StallAlways,
        "always-taken" => BranchPolicy::Predict(PredictorKind::AlwaysTaken),
        "never-taken" => BranchPolicy::Predict(PredictorKind::NeverTaken),
        "btfn" => BranchPolicy::Predict(PredictorKind::Btfn),
        other => {
            let (kind, bits) = other
                .split_once(':')
                .ok_or_else(|| format!("unknown branch policy `{other}`"))?;
            let index_bits: u8 = bits
                .parse()
                .map_err(|_| format!("invalid predictor size `{bits}`"))?;
            match kind {
                "bimodal" => BranchPolicy::Predict(PredictorKind::Bimodal { index_bits }),
                "gshare" => BranchPolicy::Predict(PredictorKind::Gshare { index_bits }),
                _ => return Err(format!("unknown branch policy `{other}`")),
            }
        }
    })
}

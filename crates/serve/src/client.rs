//! A minimal HTTP/1.1 client for the daemon's API.
//!
//! Shared by `paragraph client` and the test suites. Speaks exactly the
//! dialect the server emits: one request per connection, `Connection:
//! close`, body delimited by `Content-Length` (falling back to
//! read-to-EOF). No redirects, no TLS, no keep-alive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:PATH`, `http://HOST:PORT`, or a
    /// bare `HOST:PORT`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a socket path".into());
            }
            return Ok(Endpoint::Uds(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("http://").unwrap_or(s);
        let hostport = hostport.trim_end_matches('/');
        if hostport.is_empty() || !hostport.contains(':') {
            return Err(format!("endpoint `{s}` is not unix:PATH or HOST:PORT"));
        }
        Ok(Endpoint::Tcp(hostport.to_owned()))
    }
}

/// A decoded response: status code and body bytes.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds, when the server sent one.
    pub retry_after: Option<u64>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn connect(endpoint: &Endpoint, timeout: Duration) -> std::io::Result<Stream> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
            Ok(Stream::Tcp(stream))
        }
        #[cfg(unix)]
        Endpoint::Uds(path) => {
            let stream = UnixStream::connect(path)?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
            Ok(Stream::Unix(stream))
        }
        #[cfg(not(unix))]
        Endpoint::Uds(path) => Err(std::io::Error::other(format!(
            "unix sockets are not supported on this platform ({})",
            path.display()
        ))),
    }
}

/// Issues one request. `body` is sent with `Content-Length`; the default
/// timeout bounds both connect I/O directions.
pub fn request(
    endpoint: &Endpoint,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = connect(endpoint, Duration::from_secs(120))?;
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: paragraph\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    // Skip an interim 100 Continue if the server sent one.
    if status_line.starts_with("HTTP/1.1 100") {
        let mut blank = String::new();
        reader.read_line(&mut blank)?; // the interim response's blank line
        status_line.clear();
        reader.read_line(&mut status_line)?;
    }
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line `{}`", status_line.trim_end()),
            )
        })?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_grammar_covers_all_three_forms() {
        assert!(matches!(
            Endpoint::parse("unix:/tmp/p.sock"),
            Ok(Endpoint::Uds(_))
        ));
        assert!(matches!(
            Endpoint::parse("http://127.0.0.1:8080"),
            Ok(Endpoint::Tcp(hp)) if hp == "127.0.0.1:8080"
        ));
        assert!(matches!(
            Endpoint::parse("127.0.0.1:8080"),
            Ok(Endpoint::Tcp(_))
        ));
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("no-port").is_err());
    }
}

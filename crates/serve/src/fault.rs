//! Deterministic request-level fault injection.
//!
//! `PARAGRAPH_FAULT_REQUEST=<METHOD>@<path-prefix>[:<fails>[:<kind>]]`
//! mirrors the sweep supervisor's `PARAGRAPH_FAULT_CELL` grammar: the
//! first `<fails>` requests whose method matches `<METHOD>` (or `*`) and
//! whose path starts with `<path-prefix>` are made to fail with `<kind>`.
//! Subsequent matching requests proceed normally, so a soak test can
//! assert both the failure *and* the recovery behind it.
//!
//! Kinds:
//!
//! * `panic` — the handler panics mid-request; the connection loop turns
//!   it into a 500 and the worker is recycled. The default.
//! * `reject` — a synthetic governor rejection: 422 with the standard
//!   JSON rejection report (`limit` = `injected-fault`).
//! * `corrupt` — the request is treated as undecodable: 400.
//! * `deadline` — a synthetic deadline overrun: 422 with `limit` =
//!   `deadline`.
//! * `disconnect` — the server drops the connection without writing a
//!   response, exercising client-side disconnect handling.
//! * `stall` — the handler sleeps one second before proceeding normally,
//!   for queue-pressure tests.

use crate::error::ServeError;
use std::sync::atomic::{AtomicU32, Ordering};

/// What an armed fault does to the matched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFaultKind {
    /// Panic inside the handler (worker recycled, response 500).
    Panic,
    /// Synthetic governor rejection (422).
    Reject,
    /// Synthetic corruption (400).
    Corrupt,
    /// Synthetic deadline overrun (422, limit `deadline`).
    Deadline,
    /// Drop the connection without a response.
    Disconnect,
    /// Sleep one second, then handle normally.
    Stall,
}

/// A parsed `PARAGRAPH_FAULT_REQUEST` spec plus its live injection count.
#[derive(Debug)]
pub struct RequestFault {
    method: String,
    path_prefix: String,
    fails: u32,
    kind: RequestFaultKind,
    injected: AtomicU32,
}

impl RequestFault {
    /// Parses the spec grammar. `None` for the empty string.
    pub fn parse(spec: &str) -> Result<Option<RequestFault>, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(None);
        }
        let (method, rest) = spec.split_once('@').ok_or_else(|| {
            format!("fault spec `{spec}` is missing `@` (METHOD@path[:fails[:kind]])")
        })?;
        let mut parts = rest.splitn(3, ':');
        let path_prefix = parts
            .next()
            .filter(|p| p.starts_with('/'))
            .ok_or_else(|| format!("fault spec `{spec}` needs an absolute path prefix"))?;
        let fails = match parts.next() {
            None | Some("") => 1,
            Some(n) => n
                .parse()
                .map_err(|_| format!("fault spec `{spec}` has an unparseable fail count `{n}`"))?,
        };
        let kind = match parts.next() {
            None | Some("") | Some("panic") => RequestFaultKind::Panic,
            Some("reject") => RequestFaultKind::Reject,
            Some("corrupt") => RequestFaultKind::Corrupt,
            Some("deadline") => RequestFaultKind::Deadline,
            Some("disconnect") => RequestFaultKind::Disconnect,
            Some("stall") => RequestFaultKind::Stall,
            Some(other) => {
                return Err(format!(
                    "fault spec `{spec}` has unknown kind `{other}` \
                     (panic|reject|corrupt|deadline|disconnect|stall)"
                ))
            }
        };
        Ok(Some(RequestFault {
            method: method.to_ascii_uppercase(),
            path_prefix: path_prefix.to_owned(),
            fails,
            kind,
            injected: AtomicU32::new(0),
        }))
    }

    /// Reads `PARAGRAPH_FAULT_REQUEST` from the environment. A malformed
    /// spec is an error — fault injection that silently does nothing would
    /// make a soak test pass vacuously.
    pub fn from_env() -> Result<Option<RequestFault>, String> {
        match std::env::var("PARAGRAPH_FAULT_REQUEST") {
            Ok(spec) => RequestFault::parse(&spec),
            Err(_) => Ok(None),
        }
    }

    /// If this request matches and the fail budget is not exhausted,
    /// consumes one failure and returns the kind to inject.
    pub fn arm(&self, method: &str, path: &str) -> Option<RequestFaultKind> {
        if self.method != "*" && self.method != method {
            return None;
        }
        if !path.starts_with(&self.path_prefix) {
            return None;
        }
        // Racing requests may both pass the gate; the budget is enforced
        // by the atomic increment, so at most `fails` ever arm.
        let prior = self.injected.fetch_add(1, Ordering::Relaxed);
        if prior < self.fails {
            Some(self.kind)
        } else {
            self.injected.fetch_sub(1, Ordering::Relaxed);
            None
        }
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u32 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// The synthetic error an armed `reject`/`corrupt`/`deadline` fault
/// produces; `panic`/`disconnect`/`stall` are enacted by the caller.
pub fn injected_error(kind: RequestFaultKind, path: &str) -> Option<ServeError> {
    match kind {
        RequestFaultKind::Reject => Some(ServeError::Rejected {
            scope: path.to_owned(),
            limit: "injected-fault".into(),
            what: "injected governor rejection".into(),
            actual: 1,
            cap: 0,
            detail: "injected governor rejection (PARAGRAPH_FAULT_REQUEST)".into(),
        }),
        RequestFaultKind::Corrupt => Some(ServeError::BadRequest(
            "injected corruption (PARAGRAPH_FAULT_REQUEST)".into(),
        )),
        RequestFaultKind::Deadline => Some(ServeError::Rejected {
            scope: path.to_owned(),
            limit: "deadline".into(),
            what: "injected deadline overrun".into(),
            actual: 1,
            cap: 0,
            detail: "injected deadline overrun (PARAGRAPH_FAULT_REQUEST)".into(),
        }),
        RequestFaultKind::Panic | RequestFaultKind::Disconnect | RequestFaultKind::Stall => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let f = RequestFault::parse("POST@/analyze:2:reject")
            .expect("valid spec")
            .expect("non-empty");
        assert_eq!(f.method, "POST");
        assert_eq!(f.path_prefix, "/analyze");
        assert_eq!(f.fails, 2);
        assert_eq!(f.kind, RequestFaultKind::Reject);
    }

    #[test]
    fn defaults_are_one_panic() {
        let f = RequestFault::parse("*@/traces")
            .expect("valid spec")
            .expect("non-empty");
        assert_eq!(f.fails, 1);
        assert_eq!(f.kind, RequestFaultKind::Panic);
    }

    #[test]
    fn empty_spec_is_no_fault_and_garbage_is_an_error() {
        assert!(RequestFault::parse("").expect("empty is fine").is_none());
        assert!(RequestFault::parse("no-at-sign").is_err());
        assert!(RequestFault::parse("GET@relative").is_err());
        assert!(RequestFault::parse("GET@/x:abc").is_err());
        assert!(RequestFault::parse("GET@/x:1:frobnicate").is_err());
    }

    #[test]
    fn arms_exactly_the_fail_budget_then_recovers() {
        let f = RequestFault::parse("POST@/analyze:2:corrupt")
            .expect("valid")
            .expect("non-empty");
        assert!(f.arm("GET", "/analyze").is_none(), "method must match");
        assert!(f.arm("POST", "/other").is_none(), "prefix must match");
        assert_eq!(f.arm("POST", "/analyze"), Some(RequestFaultKind::Corrupt));
        assert_eq!(
            f.arm("POST", "/analyze?x=1"),
            Some(RequestFaultKind::Corrupt)
        );
        assert!(f.arm("POST", "/analyze").is_none(), "budget exhausted");
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn wildcard_method_matches_everything() {
        let f = RequestFault::parse("*@/:3:stall")
            .expect("valid")
            .expect("non-empty");
        assert!(f.arm("GET", "/healthz").is_some());
        assert!(f.arm("POST", "/traces").is_some());
        assert!(f.arm("DELETE", "/sessions/s1").is_some());
        assert!(f.arm("GET", "/healthz").is_none());
    }

    #[test]
    fn injected_errors_carry_the_taxonomy() {
        let reject =
            injected_error(RequestFaultKind::Reject, "/analyze").expect("reject produces an error");
        assert_eq!(reject.status(), 422);
        let corrupt = injected_error(RequestFaultKind::Corrupt, "/analyze")
            .expect("corrupt produces an error");
        assert_eq!(corrupt.status(), 400);
        let deadline = injected_error(RequestFaultKind::Deadline, "/analyze")
            .expect("deadline produces an error");
        assert_eq!(deadline.status(), 422);
        assert!(deadline.body_json().contains("\"limit\":\"deadline\""));
        assert!(injected_error(RequestFaultKind::Panic, "/x").is_none());
    }
}

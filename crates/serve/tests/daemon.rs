//! In-process integration tests for the daemon: full request lifecycle,
//! fault isolation, load shedding, drain semantics, and byte-identity of
//! served reports against the library's one-shot analysis.

use paragraph_core::AnalysisConfig;
use paragraph_serve::client::{request, Endpoint};
use paragraph_serve::{RequestFault, ServeOptions, ServeSummary, Server};
use paragraph_trace::binary::TraceWriter;
use paragraph_trace::{synthetic, Limits, SegmentMap};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paragraph-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn encoded_chain(len: usize) -> Vec<u8> {
    let records = synthetic::chain(len);
    let mut out = Vec::new();
    let mut writer = TraceWriter::new(&mut out, SegmentMap::default()).expect("header writes");
    for record in &records {
        writer.write_record(record).expect("record writes");
    }
    writer.finish().expect("trailer writes");
    out
}

/// Starts a server on an ephemeral loopback port; returns the endpoint
/// and the running thread (joins to the drain summary).
fn start(
    options: ServeOptions,
) -> (
    Endpoint,
    std::thread::JoinHandle<Result<ServeSummary, paragraph_serve::ServeError>>,
) {
    let server = Server::bind(options).expect("server binds");
    let addr = server.local_addr().expect("tcp server has an address");
    let endpoint = Endpoint::Tcp(addr.to_string());
    let handle = std::thread::spawn(move || server.run());
    (endpoint, handle)
}

fn shutdown(endpoint: &Endpoint) {
    let resp = request(endpoint, "POST", "/shutdown", &[]).expect("shutdown reaches the server");
    assert_eq!(resp.status, 200);
}

fn field_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no `{key}` in {json}"))
        + pat.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` not numeric in {json}"))
}

fn field_str(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no `{key}` in {json}"))
        + pat.len();
    json[start..].chars().take_while(|c| *c != '"').collect()
}

#[test]
fn upload_analyze_and_reports_are_byte_identical_to_the_library() {
    let (endpoint, handle) = start(ServeOptions {
        spool: scratch("lifecycle"),
        limits: Limits::default(),
        ..ServeOptions::default()
    });

    // Upload a binary trace.
    let resp = request(&endpoint, "POST", "/traces", &encoded_chain(128)).expect("upload");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = resp.body_text();
    let trace_id = field_str(&body, "id");
    assert_eq!(field_u64(&body, "records"), 128);

    // A served JSON report is byte-identical to the library's one-shot
    // analysis, whatever the job count.
    let records = synthetic::chain(128);
    let config = AnalysisConfig::dataflow_limit().with_segments(SegmentMap::default());
    let expected = paragraph_core::analyze_refs(records.iter(), &config).to_json();
    for jobs in [1, 4] {
        let resp = request(
            &endpoint,
            "POST",
            &format!("/analyze?trace={trace_id}&jobs={jobs}"),
            &[],
        )
        .expect("analyze");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        assert_eq!(
            resp.body_text(),
            expected,
            "jobs={jobs} must not change bytes"
        );
    }

    // Text format matches the shared renderer.
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}&format=text"),
        &[],
    )
    .expect("analyze text");
    let report = paragraph_core::analyze_refs(records.iter(), &config);
    assert_eq!(
        resp.body_text(),
        paragraph_serve::render_report_text(&report)
    );

    // A config variation routes through the same grammar as the CLI.
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}&window=16&rename=all&value-stats"),
        &[],
    )
    .expect("configured analyze");
    assert_eq!(resp.status, 200);
    let configured = paragraph_core::analyze_refs(
        records.iter(),
        &config
            .clone()
            .with_window(paragraph_core::WindowSize::bounded(16))
            .with_renames(paragraph_core::RenameSet::all())
            .with_value_stats(true),
    );
    assert_eq!(resp.body_text(), configured.to_json());

    // Observability endpoints.
    let health = request(&endpoint, "GET", "/healthz", &[]).expect("healthz");
    assert_eq!(health.status, 200);
    let health_body = health.body_text();
    assert!(health_body.contains("\"status\":\"ok\""), "{health_body}");
    assert_eq!(field_u64(&health_body, "traces"), 1);
    let metrics = request(&endpoint, "GET", "/metrics", &[]).expect("metrics");
    assert!(
        metrics.body_text().contains("serve_requests"),
        "prometheus snapshot should carry serve counters: {}",
        metrics.body_text()
    );

    shutdown(&endpoint);
    let summary = handle.join().expect("server thread").expect("clean drain");
    assert!(summary.requests >= 8);
    assert_eq!(summary.workers_recycled, 0);
}

#[test]
fn taxonomy_statuses_reach_the_wire() {
    let (endpoint, handle) = start(ServeOptions {
        spool: scratch("taxonomy"),
        limits: Limits {
            max_records: 64,
            ..Limits::default()
        },
        max_body_bytes: 64 * 1024,
        ..ServeOptions::default()
    });

    // 400: garbage trace bytes.
    let resp = request(&endpoint, "POST", "/traces", b"definitely not a trace").expect("post");
    assert_eq!(resp.status, 400);
    // 404: unknown route and unknown trace.
    assert_eq!(
        request(&endpoint, "GET", "/nope", &[]).expect("get").status,
        404
    );
    let resp = request(&endpoint, "POST", "/analyze?trace=t99", &[]).expect("post");
    assert_eq!(resp.status, 404);
    // 405: wrong method on a known route.
    assert_eq!(
        request(&endpoint, "GET", "/traces", &[])
            .expect("get")
            .status,
        405
    );
    // 413: declared body over the cap.
    let big = vec![0u8; 128 * 1024];
    let resp = request(&endpoint, "POST", "/traces", &big).expect("post");
    assert_eq!(resp.status, 413);
    // 422: well-formed trace that declares more records than policy
    // allows, with the CLI-shaped rejection report.
    let resp = request(&endpoint, "POST", "/traces", &encoded_chain(128)).expect("post");
    assert_eq!(resp.status, 422);
    let body = resp.body_text();
    assert!(body.starts_with("{\"error\":\"input-rejected\""), "{body}");
    assert!(body.contains("\"limit\":\"max-records\""), "{body}");
    // 400: malformed query parameter.
    let ok = request(&endpoint, "POST", "/traces", &encoded_chain(16)).expect("post");
    let trace_id = field_str(&ok.body_text(), "id");
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}&window=banana"),
        &[],
    )
    .expect("post");
    assert_eq!(resp.status, 400);

    shutdown(&endpoint);
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn injected_panic_answers_500_recycles_the_worker_and_serving_continues() {
    // Silence the injected panic's default backtrace spew.
    std::panic::set_hook(Box::new(|_| {}));
    let fault = RequestFault::parse("POST@/analyze:1:panic")
        .expect("valid spec")
        .expect("non-empty");
    let (endpoint, handle) = start(ServeOptions {
        spool: scratch("panic"),
        limits: Limits::default(),
        fault: Some(fault),
        workers: 2,
        ..ServeOptions::default()
    });

    let up = request(&endpoint, "POST", "/traces", &encoded_chain(64)).expect("upload");
    let trace_id = field_str(&up.body_text(), "id");

    // First analyze hits the injected panic: 500, not a dead server.
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}"),
        &[],
    )
    .expect("the 500 must still be written before the worker dies");
    assert_eq!(resp.status, 500, "{}", resp.body_text());
    assert!(resp.body_text().contains("injected request fault"));

    // The daemon keeps serving, and the next identical request succeeds
    // with the canonical bytes.
    let records = synthetic::chain(64);
    let config = AnalysisConfig::dataflow_limit().with_segments(SegmentMap::default());
    let expected = paragraph_core::analyze_refs(records.iter(), &config).to_json();
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}"),
        &[],
    )
    .expect("analyze after panic");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text(), expected);

    // healthz reports the recycle.
    let health = request(&endpoint, "GET", "/healthz", &[]).expect("healthz");
    assert_eq!(field_u64(&health.body_text(), "workers_recycled"), 1);

    shutdown(&endpoint);
    let summary = handle.join().expect("server thread").expect("clean drain");
    assert_eq!(summary.workers_recycled, 1);
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // One worker, one queue slot; the first request stalls a second.
    let fault = RequestFault::parse("POST@/analyze:1:stall")
        .expect("valid spec")
        .expect("non-empty");
    let (endpoint, handle) = start(ServeOptions {
        spool: scratch("shed"),
        limits: Limits::default(),
        fault: Some(fault),
        workers: 1,
        queue_capacity: 1,
        ..ServeOptions::default()
    });
    let up = request(&endpoint, "POST", "/traces", &encoded_chain(16)).expect("upload");
    let trace_id = field_str(&up.body_text(), "id");

    // Fire the stalled request in the background, give it time to claim
    // the only worker, then flood: with the worker busy and one slot,
    // at least one of the following must be shed with 429.
    let bg_endpoint = endpoint.clone();
    let bg_path = format!("/analyze?trace={trace_id}");
    let stalled = std::thread::spawn(move || request(&bg_endpoint, "POST", &bg_path, &[]));
    std::thread::sleep(Duration::from_millis(300));
    // A sequential client can never overfill a one-slot queue (it waits on
    // each response), so the flood must be concurrent.
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let ep = endpoint.clone();
            std::thread::spawn(move || request(&ep, "GET", "/healthz", &[]))
        })
        .collect();
    let mut saw_429 = false;
    for t in flood {
        let resp = t.join().expect("flood thread").expect("flood request");
        if resp.status == 429 {
            assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After");
            saw_429 = true;
        }
    }
    assert!(
        saw_429,
        "a full queue must shed at least one request with 429"
    );
    let stalled = stalled.join().expect("stalled thread");
    assert_eq!(stalled.expect("stalled request completes").status, 200);

    shutdown(&endpoint);
    let summary = handle.join().expect("server thread").expect("clean drain");
    assert!(summary.shed >= 1);
}

#[test]
fn drain_refuses_work_checkpoints_sessions_and_leaves_no_temp_files() {
    let spool = scratch("drain");
    let (endpoint, handle) = start(ServeOptions {
        spool: spool.clone(),
        limits: Limits::default(),
        ..ServeOptions::default()
    });
    let up = request(&endpoint, "POST", "/traces", &encoded_chain(200)).expect("upload");
    let trace_id = field_str(&up.body_text(), "id");
    // Open a session and advance it partway.
    let resp = request(
        &endpoint,
        "POST",
        &format!("/sessions?trace={trace_id}"),
        &[],
    )
    .expect("session opens");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let session_id = field_str(&resp.body_text(), "id");
    let resp = request(
        &endpoint,
        "POST",
        &format!("/sessions/{session_id}/advance?records=80"),
        &[],
    )
    .expect("advance");
    assert_eq!(field_u64(&resp.body_text(), "records_processed"), 80);

    // Start the drain; health stays observable, work is refused with 503.
    shutdown(&endpoint);
    let mut saw_healthz_during_drain = false;
    let mut saw_503 = false;
    for _ in 0..10 {
        match request(&endpoint, "GET", "/healthz", &[]) {
            Ok(resp) if resp.status == 200 => {
                if resp.body_text().contains("\"status\":\"draining\"") {
                    saw_healthz_during_drain = true;
                }
            }
            _ => break, // listener already gone — drain completed
        }
        if let Ok(resp) = request(
            &endpoint,
            "POST",
            &format!("/analyze?trace={trace_id}"),
            &[],
        ) {
            if resp.status == 503 {
                assert_eq!(resp.retry_after, Some(1));
                saw_503 = true;
            }
        }
        if saw_healthz_during_drain && saw_503 {
            break;
        }
    }
    let summary = handle.join().expect("server thread").expect("clean drain");
    assert_eq!(
        summary.sessions_checkpointed, 1,
        "the live session must be checkpointed by the drain"
    );
    assert!(summary.checkpoint_failures.is_empty());
    // The in-flight session's checkpoint exists and no temp files remain
    // anywhere in the spool.
    assert!(spool
        .join("sessions")
        .join(format!("{session_id}.pgcp"))
        .exists());
    for sub in ["traces", "sessions"] {
        for entry in std::fs::read_dir(spool.join(sub)).expect("spool dir") {
            let name = entry
                .expect("entry")
                .file_name()
                .to_string_lossy()
                .into_owned();
            assert!(!name.ends_with(".tmp"), "orphaned temp file {sub}/{name}");
        }
    }
    // Drain-time probes may or may not have landed before the listener
    // closed; the invariants above are what matter.
    let _ = (saw_healthz_during_drain, saw_503);
}

#[test]
fn session_eviction_under_memory_pressure_resumes_transparently() {
    let (endpoint, handle) = start(ServeOptions {
        spool: scratch("evict"),
        limits: Limits::default(),
        max_live_sessions: 1,
        ..ServeOptions::default()
    });
    let up = request(&endpoint, "POST", "/traces", &encoded_chain(120)).expect("upload");
    let trace_id = field_str(&up.body_text(), "id");

    // Two sessions over a one-session budget: touching them alternately
    // forces checkpoint-evict + resume cycles.
    let mut ids = Vec::new();
    for _ in 0..2 {
        let resp = request(
            &endpoint,
            "POST",
            &format!("/sessions?trace={trace_id}"),
            &[],
        )
        .expect("session opens");
        ids.push(field_str(&resp.body_text(), "id"));
    }
    for round in 0..3 {
        for id in &ids {
            let resp = request(
                &endpoint,
                "POST",
                &format!("/sessions/{id}/advance?records=20"),
                &[],
            )
            .expect("advance");
            assert_eq!(resp.status, 200, "round {round}: {}", resp.body_text());
        }
    }
    let health = request(&endpoint, "GET", "/healthz", &[]).expect("healthz");
    assert!(
        field_u64(&health.body_text(), "sessions_evicted") >= 1,
        "alternating sessions over a 1-live budget must evict: {}",
        health.body_text()
    );
    assert!(field_u64(&health.body_text(), "sessions_resumed") >= 1);

    // Both sessions finish with the canonical report despite the churn.
    let records = synthetic::chain(120);
    let config = AnalysisConfig::dataflow_limit().with_segments(SegmentMap::default());
    let expected = paragraph_core::analyze_refs(records.iter(), &config).to_json();
    for id in &ids {
        let resp =
            request(&endpoint, "POST", &format!("/sessions/{id}/finish"), &[]).expect("finish");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body_text(),
            expected,
            "evicted/resumed session must match"
        );
    }

    shutdown(&endpoint);
    handle.join().expect("server thread").expect("clean drain");
}

#[cfg(unix)]
#[test]
fn unix_socket_mode_serves_the_same_api() {
    let spool = scratch("uds");
    std::fs::create_dir_all(&spool).expect("scratch dir");
    let sock = spool.join("daemon.sock");
    let server = Server::bind(ServeOptions {
        uds: Some(sock.clone()),
        spool: spool.clone(),
        limits: Limits::default(),
        ..ServeOptions::default()
    })
    .expect("uds server binds");
    let endpoint = Endpoint::Uds(sock.clone());
    let handle = std::thread::spawn(move || server.run());

    let up = request(&endpoint, "POST", "/traces", &encoded_chain(32)).expect("upload over uds");
    assert_eq!(up.status, 200);
    let trace_id = field_str(&up.body_text(), "id");
    let resp = request(
        &endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}"),
        &[],
    )
    .expect("analyze over uds");
    assert_eq!(resp.status, 200);

    shutdown(&endpoint);
    handle.join().expect("server thread").expect("clean drain");
    assert!(!sock.exists(), "the socket file is removed on drain");
}

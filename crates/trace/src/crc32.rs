//! CRC32 (IEEE 802.3 polynomial), table-driven, dependency-free.
//!
//! Guards v2 trace chunks and analyzer checkpoint files. Uses the
//! slice-by-16 technique — sixteen compile-time tables, sixteen input bytes
//! per step — because the analyze hot loop checksums every chunk of the
//! trace, so CRC throughput is on the decode critical path. The slice-by-8
//! step is kept behind `update8` as the differential reference for the
//! wider kernel.

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[t][b] = CRC of byte b followed by t zero bytes, so sixteen
    // lookups — one per input byte, at staggered distances from the end —
    // combine into one table-driven step over sixteen bytes.
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 16] = build_tables();

/// Incremental CRC32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum, sixteen bytes per table step.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for chunk in &mut chunks {
            let a = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
            let b = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            let c = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
            let d = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
            state = TABLES[15][(a & 0xff) as usize]
                ^ TABLES[14][((a >> 8) & 0xff) as usize]
                ^ TABLES[13][((a >> 16) & 0xff) as usize]
                ^ TABLES[12][(a >> 24) as usize]
                ^ TABLES[11][(b & 0xff) as usize]
                ^ TABLES[10][((b >> 8) & 0xff) as usize]
                ^ TABLES[9][((b >> 16) & 0xff) as usize]
                ^ TABLES[8][(b >> 24) as usize]
                ^ TABLES[7][(c & 0xff) as usize]
                ^ TABLES[6][((c >> 8) & 0xff) as usize]
                ^ TABLES[5][((c >> 16) & 0xff) as usize]
                ^ TABLES[4][(c >> 24) as usize]
                ^ TABLES[3][(d & 0xff) as usize]
                ^ TABLES[2][((d >> 8) & 0xff) as usize]
                ^ TABLES[1][((d >> 16) & 0xff) as usize]
                ^ TABLES[0][(d >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let index = ((state ^ u32::from(b)) & 0xff) as usize;
            state = (state >> 8) ^ TABLES[0][index];
        }
        self.state = state;
    }

    /// Slice-by-8 variant of [`Crc32::update`]: the previous production
    /// kernel, retained as the differential reference for slice-by-16.
    pub fn update8(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            state = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xff) as usize]
                ^ TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let index = ((state ^ u32::from(b)) & 0xff) as usize;
            state = (state >> 8) ^ TABLES[0][index];
        }
        self.state = state;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"chunked trace payload bytes";
        let mut crc = Crc32::new();
        crc.update(&data[..7]);
        crc.update(&data[7..]);
        assert_eq!(crc.finish(), crc32(data));
    }

    /// Bit-at-a-time reference implementation, no tables.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut state = !0u32;
        for &b in bytes {
            state ^= u32::from(b);
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    (state >> 1) ^ 0xedb8_8320
                } else {
                    state >> 1
                };
            }
        }
        !state
    }

    /// One-shot CRC through the retained slice-by-8 kernel.
    fn crc32_by8(bytes: &[u8]) -> u32 {
        let mut crc = Crc32::new();
        crc.update8(bytes);
        crc.finish()
    }

    #[test]
    fn slice_by_16_matches_the_bitwise_reference_at_every_length() {
        let data: Vec<u8> = (0..521u32)
            .map(|i| (i.wrapping_mul(37) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
        // Odd split points exercise the remainder path mid-stream.
        for split in [1usize, 3, 7, 8, 9, 15, 16, 17, 31, 100] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(&data));
        }
    }

    #[test]
    fn slice_by_16_matches_slice_by_8_at_every_length() {
        let data: Vec<u8> = (0..521u32)
            .map(|i| (i.wrapping_mul(131) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_by8(&data[..len]), "len {len}");
        }
        // Mixing kernels mid-stream must also agree: the state space is
        // shared, only the stride differs.
        for split in [1usize, 5, 8, 13, 16, 23, 64] {
            let mut crc = Crc32::new();
            crc.update8(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn slice_by_8_matches_the_bitwise_reference_at_every_length() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(37) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32_by8(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..=255u8).collect();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "byte {byte} bit {bit}");
            }
        }
    }
}

//! CRC32 (IEEE 802.3 polynomial), table-driven, dependency-free.
//!
//! Guards v2 trace chunks and analyzer checkpoint files. The table is built
//! at compile time; throughput is ample for framing checks (the payloads it
//! covers are a few tens of kilobytes).

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let index = ((self.state ^ u32::from(b)) & 0xff) as usize;
            self.state = (self.state >> 8) ^ TABLE[index];
        }
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"chunked trace payload bytes";
        let mut crc = Crc32::new();
        crc.update(&data[..7]);
        crc.update(&data[7..]);
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..=255u8).collect();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "byte {byte} bit {bit}");
            }
        }
    }
}

//! Varint / zig-zag wire primitives shared by the trace format and the
//! analyzer checkpoint format.

use std::io::{self, Read, Write};

/// Writes `v` as an LEB128 varint.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint.
///
/// # Errors
///
/// Returns `InvalidData` if the encoding overflows a `u64`, and propagates
/// I/O errors (including `UnexpectedEof` on truncation).
pub fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`
/// past the bytes consumed.
///
/// Slice-based twin of [`read_varint`] for the block decoder: same value
/// space and the same error contract, but no `Read` plumbing in the hot
/// loop.
///
/// # Errors
///
/// Returns `InvalidData` if the encoding overflows a `u64`, and
/// `UnexpectedEof` if the slice ends mid-varint.
#[inline]
pub fn read_varint_slice(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    // Fast path: the overwhelmingly common single-byte encoding.
    if let Some(&b) = buf.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "varint ends past the buffer",
            ));
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos` using SWAR bit
/// tricks: the next 8 bytes are loaded as one little-endian `u64`, the
/// terminator byte is located with `trailing_zeros` over the inverted
/// continuation bits, and the 7-bit payload lanes are compacted with three
/// shift-and-mask folds — no per-byte branch on the fast path.
///
/// Falls back to [`read_varint_slice`] when fewer than 8 bytes remain
/// (buffer tail) or no terminator appears within 8 bytes (9/10-byte
/// encodings, which need the scalar overflow check). Byte-for-byte
/// equivalent to `read_varint_slice` on every input, including
/// non-canonical encodings: same values, same errors, same cursor
/// positions.
///
/// # Errors
///
/// Returns `InvalidData` if the encoding overflows a `u64`, and
/// `UnexpectedEof` if the slice ends mid-varint.
#[inline]
pub fn read_varint_swar(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    const CONT: u64 = 0x8080_8080_8080_8080;
    const PAYLOAD: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    let p = *pos;
    let Some(window) = buf.get(p..p + 8) else {
        // Under 8 bytes left: the scalar loop handles tails and truncation.
        return read_varint_slice(buf, pos);
    };
    // The bounds check above guarantees the conversion succeeds; the
    // fallible form keeps the hot path free of panicking branches.
    let word = match <[u8; 8]>::try_from(window) {
        Ok(bytes) => u64::from_le_bytes(bytes),
        Err(_) => return read_varint_slice(buf, pos),
    };
    let stops = !word & CONT;
    if stops == 0 {
        // All 8 continuation bits set: a 9- or 10-byte encoding (or garbage
        // that overflows). The scalar loop owns the overflow contract.
        return read_varint_slice(buf, pos);
    }
    // Byte index of the terminator; the encoding spans n = k + 1 bytes and
    // at most 7 * 8 = 56 payload bits, so overflow is impossible here.
    let k = stops.trailing_zeros() >> 3;
    let n = k as usize + 1;
    let kept = word & (u64::MAX >> ((8 - n) * 8));
    // Three folds halve the lane count each time: 8 lanes of 7 bits ->
    // 4 lanes of 14 -> 2 lanes of 28 -> one 56-bit value.
    let x = kept & PAYLOAD;
    let x = ((x & 0x7f00_7f00_7f00_7f00) >> 1) | (x & 0x007f_007f_007f_007f);
    let x = ((x & 0x3fff_0000_3fff_0000) >> 2) | (x & 0x0000_3fff_0000_3fff);
    let x = ((x & 0x0fff_ffff_0000_0000) >> 4) | (x & 0x0000_0000_0fff_ffff);
    *pos = p + n;
    Ok(x)
}

/// Maps a signed value to an unsigned one with small magnitudes first.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let buf = [0xffu8; 11];
        assert!(read_varint(&buf[..]).is_err());
    }

    #[test]
    fn truncated_varint_reports_eof() {
        let buf = [0x80u8];
        let err = read_varint(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn slice_varint_matches_the_reader_on_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let mut pos = 0;
            assert_eq!(read_varint_slice(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "must consume exactly the encoding");
        }
    }

    #[test]
    fn slice_varint_advances_through_consecutive_values() {
        let mut buf = Vec::new();
        for v in [5u64, 300, 0, u64::MAX] {
            write_varint(&mut buf, v).unwrap();
        }
        let mut pos = 0;
        for v in [5u64, 300, 0, u64::MAX] {
            assert_eq!(read_varint_slice(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    /// Differential harness: SWAR and scalar must agree on value/error kind
    /// and on the cursor position after the call.
    fn assert_swar_matches_scalar(buf: &[u8], start: usize) {
        let mut scalar_pos = start;
        let mut swar_pos = start;
        let scalar = read_varint_slice(buf, &mut scalar_pos);
        let swar = read_varint_swar(buf, &mut swar_pos);
        match (&scalar, &swar) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "value mismatch on {buf:x?} at {start}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.kind(), b.kind(), "error mismatch on {buf:x?} at {start}");
            }
            _ => panic!("Ok/Err disagreement on {buf:x?} at {start}: {scalar:?} vs {swar:?}"),
        }
        if scalar.is_ok() {
            assert_eq!(
                scalar_pos, swar_pos,
                "cursor mismatch on {buf:x?} at {start}"
            );
        }
    }

    #[test]
    fn swar_varint_matches_scalar_on_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            0x3fff,
            0x4000,
            300,
            (1 << 7) - 1,
            1 << 7,
            (1 << 14) - 1,
            1 << 14,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            (1 << 35) - 1,
            1 << 35,
            (1 << 42) - 1,
            1 << 42,
            (1 << 49) - 1,
            1 << 49,
            (1 << 56) - 1,
            1 << 56,
            (1 << 63) - 1,
            1 << 63,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_swar_matches_scalar(&buf, 0);
            let mut pos = 0;
            assert_eq!(read_varint_swar(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "must consume exactly the encoding");
            // With trailing bytes present the 8-byte window is full of
            // garbage beyond the terminator; the mask must drop it.
            let mut padded = buf.clone();
            padded.extend_from_slice(&[0xffu8; 12]);
            let mut pos = 0;
            assert_eq!(read_varint_swar(&padded, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn swar_varint_matches_scalar_on_non_canonical_encodings() {
        // Trailing zero continuation bytes are non-canonical but accepted
        // by the scalar decoder; SWAR must agree exactly.
        for enc in [
            vec![0x80, 0x00],
            vec![0x80, 0x80, 0x00],
            vec![0xff, 0x80, 0x80, 0x80, 0x00],
            vec![0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00],
        ] {
            assert_swar_matches_scalar(&enc, 0);
        }
    }

    #[test]
    fn swar_varint_matches_scalar_on_truncation_and_overflow() {
        // Truncated at every length, including tails shorter than the
        // 8-byte SWAR window.
        for len in 0..10 {
            let buf = vec![0x80u8; len];
            assert_swar_matches_scalar(&buf, 0);
        }
        // Overflow shapes: ten continuation bytes, and a 10th byte > 1.
        assert_swar_matches_scalar(&[0xffu8; 11], 0);
        let mut max = Vec::new();
        write_varint(&mut max, u64::MAX).unwrap();
        assert_swar_matches_scalar(&max, 0);
        max[9] = 0x02; // still a terminator, but overflows bit 63
        assert_swar_matches_scalar(&max, 0);
    }

    #[test]
    fn swar_varint_matches_scalar_on_random_bytes() {
        // SplitMix64-style deterministic fuzz over arbitrary byte strings
        // and arbitrary start offsets, covering the window/tail boundary.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..4000 {
            let len = (next() % 24) as usize;
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            for start in 0..=buf.len() {
                assert_swar_matches_scalar(&buf, start);
            }
        }
    }

    #[test]
    fn swar_varint_advances_through_consecutive_values() {
        let values = [5u64, 300, 0, 1 << 42, u64::MAX, 127, 1 << 56];
        let mut buf = Vec::new();
        for v in values {
            write_varint(&mut buf, v).unwrap();
        }
        let mut pos = 0;
        for v in values {
            assert_eq!(read_varint_swar(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn slice_varint_rejects_overflow_and_truncation() {
        let overflow = [0xffu8; 11];
        let mut pos = 0;
        let err = read_varint_slice(&overflow, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let truncated = [0x80u8];
        let mut pos = 0;
        let err = read_varint_slice(&truncated, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

//! Varint / zig-zag wire primitives shared by the trace format and the
//! analyzer checkpoint format.

use std::io::{self, Read, Write};

/// Writes `v` as an LEB128 varint.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint.
///
/// # Errors
///
/// Returns `InvalidData` if the encoding overflows a `u64`, and propagates
/// I/O errors (including `UnexpectedEof` on truncation).
pub fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`
/// past the bytes consumed.
///
/// Slice-based twin of [`read_varint`] for the block decoder: same value
/// space and the same error contract, but no `Read` plumbing in the hot
/// loop.
///
/// # Errors
///
/// Returns `InvalidData` if the encoding overflows a `u64`, and
/// `UnexpectedEof` if the slice ends mid-varint.
#[inline]
pub fn read_varint_slice(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    // Fast path: the overwhelmingly common single-byte encoding.
    if let Some(&b) = buf.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "varint ends past the buffer",
            ));
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small magnitudes first.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let buf = [0xffu8; 11];
        assert!(read_varint(&buf[..]).is_err());
    }

    #[test]
    fn truncated_varint_reports_eof() {
        let buf = [0x80u8];
        let err = read_varint(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn slice_varint_matches_the_reader_on_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let mut pos = 0;
            assert_eq!(read_varint_slice(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "must consume exactly the encoding");
        }
    }

    #[test]
    fn slice_varint_advances_through_consecutive_values() {
        let mut buf = Vec::new();
        for v in [5u64, 300, 0, u64::MAX] {
            write_varint(&mut buf, v).unwrap();
        }
        let mut pos = 0;
        for v in [5u64, 300, 0, u64::MAX] {
            assert_eq!(read_varint_slice(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn slice_varint_rejects_overflow_and_truncation() {
        let overflow = [0xffu8; 11];
        let mut pos = 0;
        let err = read_varint_slice(&overflow, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let truncated = [0x80u8];
        let mut pos = 0;
        let err = read_varint_slice(&truncated, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

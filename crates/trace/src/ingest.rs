//! Streaming ingestion of external line-oriented text traces.
//!
//! Third-party instrumentation (a Pin tool, a QEMU plugin, a hand-rolled
//! interpreter hook) can feed the analyzer without linking this crate: it
//! emits the plain-text format below, and `paragraph ingest` (or
//! [`ingest_text`]) converts it to the binary v2 trace format. Conversion
//! is streaming — one bounded line in memory at a time — so arbitrarily
//! long traces convert in constant space, and a [`ResourceGovernor`]
//! bounds every quantity an untrusted producer controls.
//!
//! # Format
//!
//! One record per line, whitespace-separated fields; `#` starts a comment
//! (whole-line or trailing) and blank lines are ignored:
//!
//! ```text
//! # directives (optional, before the first record)
//! !segments heap=4096 stack=1048576
//!
//! # PC CLASS [SRC...] [-> DEST] [taken|not-taken TARGET]
//! 0x0  int-alu -> r4
//! 0x4  int-alu r4 r4 -> r5
//! 0x8  load    m:1000 r9 -> r10
//! 0xc  store   r10 r9 -> m:1001
//! 0x10 branch  r5 taken 0x0
//! ```
//!
//! * **PC** and **TARGET** are decimal or `0x`-prefixed hex.
//! * **CLASS** is an operation-class name as reported by
//!   [`OpClass::name`]: `int-alu`, `int-mul`, `int-div`, `fp-add`,
//!   `fp-mul`, `fp-div`, `load`, `store`, `syscall`, `branch`, `jump`,
//!   `nop`.
//! * **SRC**/**DEST** locations are `rN` (integer register, N < 32), `fN`
//!   (floating-point register, N < 32), or `m:ADDR` (memory word address).
//!   At most three sources. A destination requires a value-creating
//!   class; a memory destination is exactly the `store` class, and `load`
//!   must name a memory source.
//! * `taken TARGET` / `not-taken TARGET` record a branch outcome and are
//!   only valid on `branch` records.
//! * `!segments heap=H stack=S` sets the [`SegmentMap`] boundaries
//!   (`H <= S`); the default is all-data. It must precede the first
//!   record because the binary header is written first.
//!
//! Every syntax or consistency violation is rejected with the offending
//! line number — the text parser accepts no line the binary decoder could
//! not have produced, so `ingest | analyze` equals analyzing an
//! equivalent natively-written trace byte for byte.

use crate::binary::TraceWriter;
use crate::govern::{LimitViolation, ResourceGovernor};
use crate::loc::Loc;
use crate::record::TraceRecord;
use crate::segment::SegmentMap;
use paragraph_isa::OpClass;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// How often (in lines) the streaming loop re-checks the wall-clock
/// deadline.
const DEADLINE_CHECK_LINES: u64 = 4096;

/// What went wrong while ingesting a text trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum IngestErrorKind {
    /// Reading the input or writing the output failed.
    Io(io::Error),
    /// A line does not conform to the text format.
    Syntax(String),
    /// The input tripped a [`ResourceGovernor`] limit.
    LimitExceeded(LimitViolation),
}

/// A text-trace ingestion error, carrying the 1-based line number.
#[derive(Debug)]
pub struct IngestError {
    line: u64,
    kind: IngestErrorKind,
}

impl IngestError {
    fn syntax(line: u64, why: impl Into<String>) -> IngestError {
        IngestError {
            line,
            kind: IngestErrorKind::Syntax(why.into()),
        }
    }

    /// The 1-based line number the error was detected on (0 when the
    /// failure is not tied to a line, e.g. an output write error).
    pub fn line(&self) -> u64 {
        self.line
    }

    /// What went wrong.
    pub fn kind(&self) -> &IngestErrorKind {
        &self.kind
    }

    /// Whether this error is a resource-governor rejection, and if so
    /// which limit tripped.
    pub fn limit_violation(&self) -> Option<&LimitViolation> {
        match &self.kind {
            IngestErrorKind::LimitExceeded(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            IngestErrorKind::Io(e) => write!(f, "ingest I/O failed: {e}")?,
            IngestErrorKind::Syntax(why) => write!(f, "bad text trace: {why}")?,
            IngestErrorKind::LimitExceeded(v) => write!(f, "input rejected: {v}")?,
        }
        if self.line > 0 {
            write!(f, " at line {}", self.line)?;
        }
        Ok(())
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            IngestErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Tallies from a completed ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Records converted and written.
    pub records: u64,
    /// Input lines consumed (including comments and blanks).
    pub lines: u64,
    /// Comment, blank, and directive lines skipped.
    pub skipped_lines: u64,
    /// The segment map written into the output header.
    pub segments: SegmentMap,
}

/// Outcome of one bounded line read.
enum LineRead {
    Line,
    Eof,
    TooLong { attempted: u64 },
}

/// Reads one `\n`-terminated line into `line` (terminator excluded),
/// refusing to buffer more than `cap` bytes.
fn read_line_bounded<R: BufRead>(
    input: &mut R,
    line: &mut Vec<u8>,
    cap: usize,
) -> io::Result<LineRead> {
    line.clear();
    loop {
        let (advance, status) = {
            let buf = input.fill_buf()?;
            if buf.is_empty() {
                return Ok(if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if line.len() + i > cap {
                        return Ok(LineRead::TooLong {
                            attempted: (line.len() + i) as u64,
                        });
                    }
                    line.extend_from_slice(&buf[..i]);
                    (i + 1, Some(LineRead::Line))
                }
                None => {
                    if line.len() + buf.len() > cap {
                        return Ok(LineRead::TooLong {
                            attempted: (line.len() + buf.len()) as u64,
                        });
                    }
                    line.extend_from_slice(buf);
                    (buf.len(), None)
                }
            }
        };
        input.consume(advance);
        if let Some(status) = status {
            return Ok(status);
        }
    }
}

/// Parses a decimal or `0x`-prefixed hex number.
fn parse_num(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// Parses an operand location token (`rN`, `fN`, `m:ADDR`).
fn parse_loc(token: &str) -> Option<Loc> {
    if let Some(addr) = token.strip_prefix("m:") {
        return Some(Loc::Mem(parse_num(addr)?));
    }
    let (head, index) = token.split_at(1);
    let index: u8 = index.parse().ok()?;
    match head {
        "r" => paragraph_isa::IntReg::new(index).map(Loc::IntReg),
        "f" => paragraph_isa::FpReg::new(index).map(Loc::FpReg),
        _ => None,
    }
}

/// Looks an operation class up by its stable [`OpClass::name`].
fn class_by_name(name: &str) -> Option<OpClass> {
    OpClass::ALL.into_iter().find(|c| c.name() == name)
}

/// Validates the class/operand combination and builds the record.
///
/// Mirrors every assertion in [`TraceRecord::new`] as a returned error:
/// the text parser must never be able to reach a constructor panic from
/// untrusted input.
fn build_record(
    lineno: u64,
    pc: u64,
    class: OpClass,
    srcs: &[Loc],
    dest: Option<Loc>,
    outcome: Option<(bool, u64)>,
) -> Result<TraceRecord, IngestError> {
    if srcs.len() > 3 {
        return Err(IngestError::syntax(lineno, "more than three sources"));
    }
    if let Some(d) = dest {
        if !class.creates_value() {
            return Err(IngestError::syntax(
                lineno,
                format!("class {class} cannot name a destination"),
            ));
        }
        if d.is_mem() != (class == OpClass::Store) {
            return Err(IngestError::syntax(
                lineno,
                "memory destinations are exactly the store class",
            ));
        }
    } else if matches!(class, OpClass::Store | OpClass::Load) {
        return Err(IngestError::syntax(
            lineno,
            format!("{class} must name its memory destination/source"),
        ));
    }
    if class == OpClass::Load && !srcs.iter().any(|s| s.is_mem()) {
        return Err(IngestError::syntax(
            lineno,
            "load must name a memory source",
        ));
    }
    if outcome.is_some() && class != OpClass::Branch {
        return Err(IngestError::syntax(
            lineno,
            "branch outcome on a non-branch record",
        ));
    }
    Ok(match outcome {
        Some((taken, target)) => TraceRecord::branch_outcome(pc, srcs, taken, target),
        None => TraceRecord::new(pc, class, srcs, dest),
    })
}

/// One parsed non-blank line.
enum ParsedLine {
    Record(TraceRecord),
    Segments(SegmentMap),
}

/// Parses one text line; `None` for blanks and comments.
fn parse_line(lineno: u64, raw: &[u8]) -> Result<Option<ParsedLine>, IngestError> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Err(IngestError::syntax(lineno, "line is not valid UTF-8"));
    };
    let text = match text.find('#') {
        Some(at) => &text[..at],
        None => text,
    };
    let mut tokens = text.split_whitespace().peekable();
    let Some(&first) = tokens.peek() else {
        return Ok(None);
    };
    if first == "!segments" {
        tokens.next();
        let mut heap = None;
        let mut stack = None;
        for token in tokens {
            if let Some(v) = token.strip_prefix("heap=") {
                heap = parse_num(v);
            } else if let Some(v) = token.strip_prefix("stack=") {
                stack = parse_num(v);
            } else {
                return Err(IngestError::syntax(
                    lineno,
                    format!("unknown !segments field {token:?}"),
                ));
            }
        }
        let (Some(heap), Some(stack)) = (heap, stack) else {
            return Err(IngestError::syntax(
                lineno,
                "!segments needs heap=N and stack=N",
            ));
        };
        if heap > stack {
            return Err(IngestError::syntax(
                lineno,
                "segment boundaries are inverted (heap > stack)",
            ));
        }
        return Ok(Some(ParsedLine::Segments(SegmentMap::new(heap, stack))));
    }
    if first.starts_with('!') {
        return Err(IngestError::syntax(
            lineno,
            format!("unknown directive {first:?}"),
        ));
    }

    let pc_token = tokens.next().unwrap_or_default();
    let Some(pc) = parse_num(pc_token) else {
        return Err(IngestError::syntax(
            lineno,
            format!("bad program counter {pc_token:?}"),
        ));
    };
    let Some(class_token) = tokens.next() else {
        return Err(IngestError::syntax(lineno, "missing operation class"));
    };
    let Some(class) = class_by_name(class_token) else {
        return Err(IngestError::syntax(
            lineno,
            format!("unknown operation class {class_token:?}"),
        ));
    };

    let mut srcs: Vec<Loc> = Vec::with_capacity(3);
    let mut dest = None;
    let mut outcome = None;
    while let Some(token) = tokens.next() {
        match token {
            "->" => {
                let Some(dest_token) = tokens.next() else {
                    return Err(IngestError::syntax(lineno, "-> without a destination"));
                };
                let Some(d) = parse_loc(dest_token) else {
                    return Err(IngestError::syntax(
                        lineno,
                        format!("bad destination {dest_token:?}"),
                    ));
                };
                if dest.replace(d).is_some() {
                    return Err(IngestError::syntax(lineno, "more than one destination"));
                }
            }
            "taken" | "not-taken" => {
                let Some(target_token) = tokens.next() else {
                    return Err(IngestError::syntax(
                        lineno,
                        format!("{token} without a target"),
                    ));
                };
                let Some(target) = parse_num(target_token) else {
                    return Err(IngestError::syntax(
                        lineno,
                        format!("bad branch target {target_token:?}"),
                    ));
                };
                if outcome.replace((token == "taken", target)).is_some() {
                    return Err(IngestError::syntax(lineno, "more than one branch outcome"));
                }
            }
            _ => {
                if dest.is_some() || outcome.is_some() {
                    return Err(IngestError::syntax(
                        lineno,
                        format!("unexpected trailing token {token:?}"),
                    ));
                }
                let Some(loc) = parse_loc(token) else {
                    return Err(IngestError::syntax(
                        lineno,
                        format!("bad source operand {token:?}"),
                    ));
                };
                if srcs.len() == 3 {
                    return Err(IngestError::syntax(lineno, "more than three sources"));
                }
                srcs.push(loc);
            }
        }
    }
    build_record(lineno, pc, class, &srcs, dest, outcome).map(|r| Some(ParsedLine::Record(r)))
}

/// Claims the pending output writer. It is present until the
/// [`TraceWriter`] is built exactly once; a second claim means the writer
/// construction itself failed mid-way, which surfaces as an I/O error
/// rather than a panic.
fn take_out<W: Write>(pending_out: &mut Option<W>, lineno: u64) -> Result<W, IngestError> {
    pending_out.take().ok_or_else(|| IngestError {
        line: lineno,
        kind: IngestErrorKind::Io(io::Error::other("trace output already consumed")),
    })
}

/// Converts a line-oriented text trace to the binary v2 format,
/// streaming: one bounded line is in memory at a time, and records flow
/// straight into a default-chunked [`TraceWriter`] — the output is
/// byte-identical to writing the same records through
/// [`TraceWriter::new`] directly.
///
/// # Errors
///
/// Returns an [`IngestError`] naming the offending line on syntax errors,
/// I/O failures, or governor limit violations (line length against the
/// declared-length cap, record count, input byte budget, deadline).
pub fn ingest_text<R: BufRead, W: Write>(
    mut input: R,
    out: W,
    governor: &mut ResourceGovernor,
) -> Result<IngestStats, IngestError> {
    let line_cap = governor
        .limits()
        .max_declared_len
        .min(governor.limits().max_alloc_bytes)
        .min(usize::MAX as u64) as usize;
    let mut line = Vec::new();
    let mut lineno = 0u64;
    let mut consumed = 0u64;
    let mut skipped = 0u64;
    let mut records = 0u64;
    let mut segments: Option<SegmentMap> = None;
    // The binary header (which embeds the segment map) is written at the
    // first record; `!segments` must come before that.
    let mut pending_out = Some(out);
    let mut writer: Option<TraceWriter<W>> = None;

    let limited = |lineno: u64, v: LimitViolation| IngestError {
        line: lineno,
        kind: IngestErrorKind::LimitExceeded(v),
    };

    loop {
        let status =
            read_line_bounded(&mut input, &mut line, line_cap).map_err(|e| IngestError {
                line: lineno + 1,
                kind: IngestErrorKind::Io(e),
            })?;
        match status {
            LineRead::Eof => break,
            LineRead::TooLong { attempted } => {
                return Err(limited(
                    lineno + 1,
                    LimitViolation {
                        limit: "max-declared-len",
                        what: "text line length",
                        actual: attempted,
                        cap: line_cap as u64,
                    },
                ));
            }
            LineRead::Line => {}
        }
        lineno += 1;
        consumed += line.len() as u64 + 1;
        governor
            .check_decode_bytes(consumed)
            .map_err(|v| limited(lineno, v))?;
        if lineno.is_multiple_of(DEADLINE_CHECK_LINES) {
            governor.check_deadline().map_err(|v| limited(lineno, v))?;
        }
        match parse_line(lineno, &line)? {
            None => skipped += 1,
            Some(ParsedLine::Segments(map)) => {
                if writer.is_some() {
                    return Err(IngestError::syntax(
                        lineno,
                        "!segments must precede the first record",
                    ));
                }
                segments = Some(map);
                skipped += 1;
            }
            Some(ParsedLine::Record(record)) => {
                governor.charge_records(1).map_err(|v| limited(lineno, v))?;
                if writer.is_none() {
                    let out = take_out(&mut pending_out, lineno)?;
                    let map = segments.unwrap_or_else(SegmentMap::all_data);
                    segments = Some(map);
                    writer = Some(TraceWriter::new(out, map).map_err(|e| IngestError {
                        line: lineno,
                        kind: IngestErrorKind::Io(e),
                    })?);
                }
                if let Some(w) = writer.as_mut() {
                    w.write_record(&record).map_err(|e| IngestError {
                        line: lineno,
                        kind: IngestErrorKind::Io(e),
                    })?;
                    records += 1;
                }
            }
        }
    }

    // An empty (or record-free) input still yields a valid empty trace.
    let writer = match writer {
        Some(w) => w,
        None => {
            let out = take_out(&mut pending_out, 0)?;
            let map = segments.unwrap_or_else(SegmentMap::all_data);
            segments = Some(map);
            TraceWriter::new(out, map).map_err(|e| IngestError {
                line: 0,
                kind: IngestErrorKind::Io(e),
            })?
        }
    };
    writer.finish().map_err(|e| IngestError {
        line: 0,
        kind: IngestErrorKind::Io(e),
    })?;
    Ok(IngestStats {
        records,
        lines: lineno,
        skipped_lines: skipped,
        segments: segments.unwrap_or_else(SegmentMap::all_data),
    })
}

/// Renders one record as a text-format line (the inverse of the parser).
///
/// `render` then [`ingest_text`] reproduces the record exactly, which is
/// how the round-trip property tests close the loop.
pub fn render_record(record: &TraceRecord) -> String {
    use fmt::Write as _;
    let mut line = String::new();
    let _ = write!(line, "{:#x} {}", record.pc(), record.class().name());
    for src in record.srcs() {
        line.push(' ');
        render_loc(&mut line, *src);
    }
    if let Some(dest) = record.dest() {
        line.push_str(" -> ");
        render_loc(&mut line, dest);
    }
    if let Some(info) = record.branch_info() {
        let _ = write!(
            line,
            " {} {:#x}",
            if info.taken { "taken" } else { "not-taken" },
            info.target
        );
    }
    line
}

fn render_loc(out: &mut String, loc: Loc) {
    use fmt::Write as _;
    let _ = match loc {
        Loc::IntReg(r) => write!(out, "r{}", r.index()),
        Loc::FpReg(r) => write!(out, "f{}", r.index()),
        Loc::Mem(addr) => write!(out, "m:{addr}"),
    };
}

/// Renders a whole trace (segments directive plus one line per record).
pub fn render_trace(records: &[TraceRecord], segments: SegmentMap) -> String {
    let mut text = format!(
        "!segments heap={} stack={}\n",
        segments.heap_base(),
        segments.stack_floor()
    );
    for record in records {
        text.push_str(&render_record(record));
        text.push('\n');
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::TraceReader;
    use crate::govern::Limits;
    use crate::synthetic;

    fn ingest(text: &str) -> Result<(Vec<u8>, IngestStats), IngestError> {
        let mut gov = ResourceGovernor::default();
        let mut out = Vec::new();
        let stats = ingest_text(text.as_bytes(), &mut out, &mut gov)?;
        Ok((out, stats))
    }

    #[test]
    fn example_from_module_docs_ingests() {
        let text = "
            # external trace
            !segments heap=4096 stack=1048576
            0x0  int-alu -> r4
            0x4  int-alu r4 r4 -> r5
            0x8  load    m:1000 r9 -> r10
            0xc  store   r10 r9 -> m:1001
            0x10 branch  r5 taken 0x0
        ";
        let (bytes, stats) = ingest(text).unwrap();
        assert_eq!(stats.records, 5);
        assert_eq!(stats.segments, SegmentMap::new(4096, 1 << 20));
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.segment_map(), SegmentMap::new(4096, 1 << 20));
        let records: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 5);
        assert_eq!(records[2].mem_addr(), Some(1000));
        assert_eq!(records[4].branch_info().unwrap().target, 0);
    }

    #[test]
    fn output_is_byte_identical_to_a_hand_built_trace() {
        let records = synthetic::random_trace(300, 7);
        let segments = SegmentMap::new(64, 1 << 20);
        let text = render_trace(&records, segments);

        let mut hand_built = Vec::new();
        let mut writer = TraceWriter::new(&mut hand_built, segments).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();

        let (ingested, stats) = ingest(&text).unwrap();
        assert_eq!(stats.records, records.len() as u64);
        assert_eq!(ingested, hand_built);
    }

    #[test]
    fn empty_input_yields_a_valid_empty_trace() {
        let (bytes, stats) = ingest("# nothing here\n\n").unwrap();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.skipped_lines, 2);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.count(), 0);
    }

    #[test]
    fn syntax_errors_carry_the_line_number() {
        for (text, what) in [
            ("0x0 conjure -> r4\n", "unknown operation class"),
            ("zork int-alu -> r4\n", "bad program counter"),
            ("0x0 int-alu -> r99\n", "bad destination"),
            ("0x0 int-alu r1 r2 r3 r4 -> r5\n", "more than three sources"),
            ("0x0 branch -> r4\n", "cannot name a destination"),
            ("0x0 load r1 -> r2\n", "memory source"),
            ("0x0 store r1 -> r2\n", "memory destination"),
            ("0x0 int-alu -> m:4 \n", "store class"),
            ("0x0 int-alu r1 taken 0x8\n", "non-branch"),
            ("0x0 branch r1 taken\n", "without a target"),
            ("!teleport\n", "unknown directive"),
            ("!segments heap=9 stack=1\n", "inverted"),
            ("0x0 int-alu\n!segments heap=0 stack=9\n", "precede"),
        ] {
            let err = ingest(&format!("# prefix comment\n{text}")).unwrap_err();
            assert!(err.line() >= 2, "{text:?} -> {err}");
            assert!(err.to_string().contains(what), "{text:?} -> {err}");
        }
    }

    #[test]
    fn record_budget_is_enforced() {
        let mut gov = ResourceGovernor::new(Limits {
            max_records: 2,
            ..Limits::default()
        });
        let mut out = Vec::new();
        let text = "0 nop\n1 nop\n2 nop\n";
        let err = ingest_text(text.as_bytes(), &mut out, &mut gov).unwrap_err();
        let v = err.limit_violation().expect("limit violation");
        assert_eq!(v.limit, "max-records");
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn overlong_lines_are_rejected_without_buffering() {
        let mut gov = ResourceGovernor::new(Limits {
            max_declared_len: 64,
            ..Limits::default()
        });
        let mut out = Vec::new();
        let long = format!("0 nop {}\n", " ".repeat(1000));
        let err = ingest_text(long.as_bytes(), &mut out, &mut gov).unwrap_err();
        let v = err.limit_violation().expect("limit violation");
        assert_eq!(v.limit, "max-declared-len");
        assert_eq!(v.what, "text line length");
    }

    #[test]
    fn zero_register_operands_are_dropped_like_the_constructors_drop_them() {
        // r0 reads and writes carry no dependency; the text parser accepts
        // them and they vanish exactly as TraceRecord::new drops them.
        let (bytes, _) = ingest("0 int-alu r0 r1 -> r0\n").unwrap();
        let records: Vec<_> = TraceReader::new(bytes.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(records[0].srcs(), &[Loc::int(1)]);
        assert_eq!(records[0].dest(), None);
    }

    #[test]
    fn crlf_line_endings_are_not_special_but_trailing_ws_is_ignored() {
        // \r is whitespace to split_whitespace, so CRLF input works.
        let (bytes, stats) = ingest("0 nop\r\n4 nop\r\n").unwrap();
        assert_eq!(stats.records, 2);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.count(), 2);
    }
}

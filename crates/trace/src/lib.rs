//! Dynamic execution traces for the Paragraph toolkit.
//!
//! The paper's tool consumed serial execution traces captured with Pixie on
//! DECstation workstations. This crate defines the reproduction's equivalent
//! trace model:
//!
//! * [`TraceRecord`] — one dynamic instruction: its program counter, its
//!   [`OpClass`](paragraph_isa::OpClass), and the storage [`Loc`]ations it
//!   reads and writes (registers and word-addressed memory).
//! * [`SegmentMap`] — classifies memory addresses into data, heap and stack
//!   [`Segment`]s, which is what the analyzer's *Rename Stack* / *Rename
//!   Data* switches key on.
//! * [`TraceStats`] — first-order metrics (operation frequencies) of a trace.
//! * [`binary`] — a compact binary on-disk trace format with a streaming
//!   reader and writer, so traces can be captured once and re-analyzed under
//!   many machine models. Version 2 frames records into checksummed chunks
//!   so a reader can survive (and account for) corruption; see
//!   [`error::TraceError`] for the typed failures and [`faultinject`] for
//!   the harness that exercises them.
//! * [`synthetic`] — parametric trace generators with known dependency
//!   structure (chains, wide independent blocks, diamonds), used heavily by
//!   the analyzer's test suite.
//!
//! # Examples
//!
//! ```
//! use paragraph_trace::{Loc, TraceRecord};
//! use paragraph_isa::OpClass;
//!
//! // r5 <- r4 + r4 at pc 16
//! let rec = TraceRecord::compute(16, OpClass::IntAlu, &[Loc::int(4), Loc::int(4)], Loc::int(5));
//! assert_eq!(rec.srcs().len(), 2);
//! assert_eq!(rec.dest(), Some(Loc::int(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod crc32;
pub mod error;
pub mod faultinject;
pub mod govern;
pub mod ingest;
mod loc;
mod record;
mod segment;
pub mod source;
mod stats;
pub mod synthetic;
pub mod wire;

pub use error::{TraceError, TraceErrorKind};
pub use govern::{EnvLimitErrors, LimitViolation, Limits, ResourceGovernor};
pub use loc::Loc;
pub use record::{BranchInfo, TraceRecord};
pub use segment::{Segment, SegmentMap};
pub use source::{SharedBytes, SourceBackend, TraceSource};
pub use stats::TraceStats;

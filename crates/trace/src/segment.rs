//! Memory segment classification.

use std::fmt;

/// The memory segment a word address belongs to.
///
/// The paper's renaming switches distinguish the register file, the stack
/// segment, and "non-stack segments" (static data plus heap). This enum
/// carries that classification for memory locations; registers are classified
/// directly from the [`Loc`](crate::Loc) variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Segment {
    /// Statically allocated data (the DATA segment).
    Data,
    /// Dynamically allocated (sbrk-style) heap storage.
    Heap,
    /// Procedure stack.
    Stack,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Segment::Data => "data",
            Segment::Heap => "heap",
            Segment::Stack => "stack",
        })
    }
}

/// Classifies word addresses into [`Segment`]s.
///
/// The VM lays memory out as `[data | heap ... <gap> ... stack]` with the
/// stack growing down from the top of the address space, so two boundaries
/// suffice:
///
/// * addresses below `heap_base` are [`Segment::Data`],
/// * addresses from `heap_base` up to (but excluding) `stack_floor` are
///   [`Segment::Heap`], and
/// * addresses at or above `stack_floor` are [`Segment::Stack`].
///
/// # Examples
///
/// ```
/// use paragraph_trace::{Segment, SegmentMap};
///
/// let map = SegmentMap::new(0x1000, 0xf000);
/// assert_eq!(map.classify(0x10), Segment::Data);
/// assert_eq!(map.classify(0x2000), Segment::Heap);
/// assert_eq!(map.classify(0xff00), Segment::Stack);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentMap {
    heap_base: u64,
    stack_floor: u64,
}

impl SegmentMap {
    /// Creates a segment map from the two segment boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `heap_base > stack_floor`.
    pub fn new(heap_base: u64, stack_floor: u64) -> SegmentMap {
        assert!(
            heap_base <= stack_floor,
            "heap base {heap_base} must not exceed stack floor {stack_floor}"
        );
        SegmentMap {
            heap_base,
            stack_floor,
        }
    }

    /// A map that classifies every address as [`Segment::Data`].
    ///
    /// Appropriate for synthetic traces with no memory layout.
    pub fn all_data() -> SegmentMap {
        SegmentMap::new(u64::MAX, u64::MAX)
    }

    /// The first heap address.
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// The lowest address classified as stack.
    pub fn stack_floor(&self) -> u64 {
        self.stack_floor
    }

    /// The segment containing word address `addr`.
    pub fn classify(&self, addr: u64) -> Segment {
        if addr >= self.stack_floor {
            Segment::Stack
        } else if addr >= self.heap_base {
            Segment::Heap
        } else {
            Segment::Data
        }
    }
}

impl Default for SegmentMap {
    /// Same as [`SegmentMap::all_data`].
    fn default() -> SegmentMap {
        SegmentMap::all_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_inclusive_exclusive() {
        let map = SegmentMap::new(100, 200);
        assert_eq!(map.classify(99), Segment::Data);
        assert_eq!(map.classify(100), Segment::Heap);
        assert_eq!(map.classify(199), Segment::Heap);
        assert_eq!(map.classify(200), Segment::Stack);
        assert_eq!(map.classify(u64::MAX), Segment::Stack);
    }

    #[test]
    fn all_data_classifies_everything_as_data() {
        let map = SegmentMap::all_data();
        assert_eq!(map.classify(0), Segment::Data);
        assert_eq!(map.classify(u64::MAX - 1), Segment::Data);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_boundaries_panic() {
        SegmentMap::new(10, 5);
    }

    #[test]
    fn empty_heap_is_allowed() {
        let map = SegmentMap::new(50, 50);
        assert_eq!(map.classify(49), Segment::Data);
        assert_eq!(map.classify(50), Segment::Stack);
    }
}

//! Deterministic fault injection for trace byte streams.
//!
//! The fault-tolerant reader ([`TraceReader::with_recovery`]) claims to
//! survive the damage long capture pipelines actually produce: flipped bits,
//! truncated tails, inserted garbage, duplicated frames. This module is the
//! harness that backs the claim — it applies seeded, configurable damage to
//! a serialized trace so tests can assert the reader neither panics nor
//! mis-counts the loss.
//!
//! [`TraceReader::with_recovery`]: crate::binary::TraceReader::with_recovery
//!
//! # Examples
//!
//! ```
//! use paragraph_trace::faultinject::FaultPlan;
//!
//! let clean = vec![0u8; 1024];
//! let (dirty, report) = FaultPlan::new(42).bit_flip_rate(0.01).apply(&clean);
//! assert_eq!(dirty.len(), clean.len());
//! assert!(report.bits_flipped > 0);
//! ```

/// SplitMix64: a tiny, high-quality, seedable generator. Public so the
/// fuzz smoke harness shares it; it has no dependencies, and identical
/// seeds give identical sequences forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `bound` is nonzero (returns 0 in release).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// A seeded recipe of damage to inflict on a byte stream.
///
/// All rates are per-byte probabilities; damage kinds compose. The header
/// prefix can be protected so tests exercise record/chunk recovery rather
/// than magic-number rejection.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    bit_flip_rate: f64,
    garbage_rate: f64,
    chunk_dup_rate: f64,
    truncate_fraction: Option<f64>,
    protect_prefix: usize,
}

/// What [`FaultPlan::apply`] actually did, for test accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Individual bits flipped.
    pub bits_flipped: u64,
    /// Garbage bytes inserted.
    pub garbage_bytes: u64,
    /// Chunk frames duplicated in place.
    pub chunks_duplicated: u64,
    /// Records contained in duplicated frames (an upper bound on extra
    /// records a recovering reader could legitimately deliver — zero here
    /// because duplicates re-deliver existing indexes, which the reader
    /// drops).
    pub duplicated_records: u64,
    /// Bytes removed from the tail.
    pub bytes_truncated: u64,
}

impl FaultPlan {
    /// A plan that (until configured) changes nothing.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            bit_flip_rate: 0.0,
            garbage_rate: 0.0,
            chunk_dup_rate: 0.0,
            truncate_fraction: None,
            protect_prefix: 0,
        }
    }

    /// Flips each bit-position-0..8 of each byte with probability
    /// `rate / 8` (so `rate` is the expected flipped bits per byte).
    #[must_use]
    pub fn bit_flip_rate(mut self, rate: f64) -> FaultPlan {
        self.bit_flip_rate = rate;
        self
    }

    /// Inserts a short burst of random garbage after a byte with the given
    /// per-byte probability.
    #[must_use]
    pub fn garbage_rate(mut self, rate: f64) -> FaultPlan {
        self.garbage_rate = rate;
        self
    }

    /// Duplicates a chunk frame (sync marker to next sync marker) in place
    /// with the given per-chunk probability.
    #[must_use]
    pub fn chunk_dup_rate(mut self, rate: f64) -> FaultPlan {
        self.chunk_dup_rate = rate;
        self
    }

    /// Truncates the stream, keeping roughly the given fraction of it.
    #[must_use]
    pub fn truncate_to(mut self, keep_fraction: f64) -> FaultPlan {
        self.truncate_fraction = Some(keep_fraction.clamp(0.0, 1.0));
        self
    }

    /// Protects the first `bytes` bytes from all damage (typically the
    /// trace header, so reads fail *after* open).
    #[must_use]
    pub fn protect_prefix(mut self, bytes: usize) -> FaultPlan {
        self.protect_prefix = bytes;
        self
    }

    /// Applies the plan to `input`, returning the damaged stream and a
    /// tally of the damage. Deterministic in the seed and configuration.
    pub fn apply(&self, input: &[u8]) -> (Vec<u8>, InjectionReport) {
        let mut rng = SplitMix64::new(self.seed);
        let mut report = InjectionReport::default();
        let protect = self.protect_prefix.min(input.len());

        // 1. Duplicate chunk frames (operates on intact framing, so it runs
        //    before byte-level damage).
        let mut bytes = if self.chunk_dup_rate > 0.0 {
            let mut out = Vec::with_capacity(input.len());
            out.extend_from_slice(&input[..protect]);
            let mut frames = frame_spans(&input[protect..]);
            if frames.is_empty() {
                frames.push((0, input.len() - protect));
            }
            for (start, len) in frames {
                let frame = &input[protect + start..protect + start + len];
                out.extend_from_slice(frame);
                if rng.next_f64() < self.chunk_dup_rate {
                    out.extend_from_slice(frame);
                    report.chunks_duplicated += 1;
                }
            }
            out
        } else {
            input.to_vec()
        };

        // 2. Garbage insertion.
        if self.garbage_rate > 0.0 {
            let mut out = Vec::with_capacity(bytes.len());
            for (i, &b) in bytes.iter().enumerate() {
                out.push(b);
                if i >= protect && rng.next_f64() < self.garbage_rate {
                    let burst = 1 + rng.below(16) as usize;
                    for _ in 0..burst {
                        out.push(rng.next_u64() as u8);
                    }
                    report.garbage_bytes += burst as u64;
                }
            }
            bytes = out;
        }

        // 3. Bit flips.
        if self.bit_flip_rate > 0.0 {
            let per_bit = self.bit_flip_rate / 8.0;
            for b in bytes.iter_mut().skip(protect) {
                for bit in 0..8 {
                    if rng.next_f64() < per_bit {
                        *b ^= 1 << bit;
                        report.bits_flipped += 1;
                    }
                }
            }
        }

        // 4. Truncation (last, so it cuts the final stream).
        if let Some(keep) = self.truncate_fraction {
            let target = ((bytes.len() as f64) * keep) as usize;
            let target = target.max(protect);
            if target < bytes.len() {
                report.bytes_truncated = (bytes.len() - target) as u64;
                bytes.truncate(target);
            }
        }

        (bytes, report)
    }
}

/// Splits `bytes` into spans `[start, start+len)` delimited by sync
/// markers. Bytes before the first marker form their own span. Public so
/// structure-aware mutators (the fuzz smoke harness) can cut and splice
/// whole frames.
pub fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    use crate::binary::SYNC_MARKER;
    let mut starts = Vec::new();
    let mut i = 0;
    while i + SYNC_MARKER.len() <= bytes.len() {
        if bytes[i..i + SYNC_MARKER.len()] == SYNC_MARKER {
            starts.push(i);
            i += SYNC_MARKER.len();
        } else {
            i += 1;
        }
    }
    // Spans from each marker to the next (or the end).
    let mut result = Vec::new();
    if let Some(&first) = starts.first() {
        if first > 0 {
            result.push((0, first));
        }
        for w in starts.windows(2) {
            result.push((w[0], w[1] - w[0]));
        }
        let last = starts[starts.len() - 1];
        result.push((last, bytes.len() - last));
    } else if !bytes.is_empty() {
        result.push((0, bytes.len()));
    }
    result
}

/// A [`Write`](std::io::Write) wrapper that simulates a disk filling up:
/// it passes bytes through until a configured capacity is exhausted, then
/// fails every write with an `ENOSPC`-shaped error ("no space left on
/// device"). With [`short_writes`](Self::short_writes) enabled, the last
/// write that crosses the boundary is *partially* accepted first — the
/// short-write case `write_all` loops over and bare `write` callers often
/// mishandle.
///
/// This is the sink-side companion to [`FaultPlan`]: where `FaultPlan`
/// damages bytes already on disk, `FaultyWriter` damages the act of
/// getting them there. Integration tests wrap checkpoint, telemetry, and
/// CSV sinks in it and assert the analysis degrades instead of aborting.
///
/// # Examples
///
/// ```
/// use paragraph_trace::faultinject::FaultyWriter;
/// use std::io::Write;
///
/// let mut sink = FaultyWriter::enospc_after(Vec::new(), 4);
/// assert!(sink.write_all(b"1234").is_ok());
/// assert!(sink.write_all(b"5").is_err());
/// assert_eq!(sink.get_ref(), b"1234");
/// ```
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    remaining: usize,
    short_writes: bool,
}

impl<W: std::io::Write> FaultyWriter<W> {
    /// Wraps `inner`, accepting at most `capacity` bytes before every
    /// further write fails.
    pub fn enospc_after(inner: W, capacity: usize) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            remaining: capacity,
            short_writes: false,
        }
    }

    /// Partially accepts the write that crosses the capacity boundary
    /// (returning a short count) before failing subsequent writes.
    #[must_use]
    pub fn short_writes(mut self) -> FaultyWriter<W> {
        self.short_writes = true;
        self
    }

    /// The wrapped writer (e.g. the bytes that made it through).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn enospc() -> std::io::Error {
        std::io::Error::other("no space left on device (simulated ENOSPC)")
    }
}

impl<W: std::io::Write> std::io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            return Err(Self::enospc());
        }
        if buf.len() <= self.remaining {
            let written = self.inner.write(buf)?;
            self.remaining -= written;
            return Ok(written);
        }
        if self.short_writes {
            let written = self.inner.write(&buf[..self.remaining])?;
            self.remaining -= written;
            return Ok(written);
        }
        self.remaining = 0;
        Err(Self::enospc())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_plan_changes_nothing() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let (out, report) = FaultPlan::new(7).apply(&data);
        assert_eq!(out, data);
        assert_eq!(report, InjectionReport::default());
    }

    #[test]
    fn same_seed_gives_same_damage() {
        let data = vec![0xabu8; 4096];
        let plan = FaultPlan::new(99)
            .bit_flip_rate(0.01)
            .garbage_rate(0.001)
            .truncate_to(0.9);
        let (a, ra) = plan.apply(&data);
        let (b, rb) = plan.apply(&data);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn bit_flip_rate_is_roughly_honoured() {
        let data = vec![0u8; 100_000];
        let (out, report) = FaultPlan::new(3).bit_flip_rate(0.01).apply(&data);
        // Expected ~1000 flips over 800k bits; allow a wide band.
        assert!(report.bits_flipped > 500, "{}", report.bits_flipped);
        assert!(report.bits_flipped < 2000, "{}", report.bits_flipped);
        let observed: u64 = out.iter().map(|b| u64::from(b.count_ones() as u8)).sum();
        assert_eq!(observed, report.bits_flipped);
    }

    #[test]
    fn protected_prefix_is_untouched() {
        let data = vec![0x5au8; 256];
        let (out, _) = FaultPlan::new(11)
            .bit_flip_rate(0.5)
            .garbage_rate(0.2)
            .protect_prefix(32)
            .apply(&data);
        assert_eq!(&out[..32], &data[..32]);
    }

    #[test]
    fn truncation_respects_fraction_and_prefix() {
        let data = vec![1u8; 1000];
        let (out, report) = FaultPlan::new(5).truncate_to(0.25).apply(&data);
        assert_eq!(out.len(), 250);
        assert_eq!(report.bytes_truncated, 750);
        let (kept, _) = FaultPlan::new(5)
            .truncate_to(0.0)
            .protect_prefix(100)
            .apply(&data);
        assert_eq!(kept.len(), 100);
    }

    #[test]
    fn faulty_writer_fails_hard_at_the_boundary() {
        use std::io::Write;
        let mut sink = FaultyWriter::enospc_after(Vec::new(), 10);
        assert_eq!(sink.write(b"12345").ok(), Some(5));
        // Crossing the boundary without short writes: all-or-nothing error.
        assert!(sink.write(b"6789abcd").is_err());
        assert!(sink.write(b"x").is_err(), "writer stays failed");
        assert_eq!(sink.get_ref(), b"12345");
    }

    #[test]
    fn faulty_writer_short_write_then_fails() {
        use std::io::Write;
        let mut sink = FaultyWriter::enospc_after(Vec::new(), 6).short_writes();
        assert_eq!(sink.write(b"1234").ok(), Some(4));
        // Crossing the boundary: the first two bytes land, then ENOSPC.
        assert_eq!(sink.write(b"5678").ok(), Some(2));
        assert!(sink.write(b"78").is_err());
        assert_eq!(sink.into_inner(), b"123456");
    }

    #[test]
    fn faulty_writer_write_all_surfaces_the_error_not_a_panic() {
        use std::io::Write;
        let mut sink = FaultyWriter::enospc_after(Vec::new(), 100).short_writes();
        let err = sink.write_all(&[7u8; 1000]).expect_err("must hit ENOSPC");
        assert!(err.to_string().contains("no space left"));
        assert_eq!(sink.get_ref().len(), 100, "short write landed first");
    }

    #[test]
    fn frame_spans_cover_the_input() {
        use crate::binary::SYNC_MARKER;
        let mut bytes = vec![9u8; 13];
        bytes.extend_from_slice(&SYNC_MARKER);
        bytes.extend_from_slice(&[1, 2, 3]);
        bytes.extend_from_slice(&SYNC_MARKER);
        bytes.extend_from_slice(&[4, 5]);
        let spans = frame_spans(&bytes);
        let total: usize = spans.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, bytes.len());
        assert_eq!(spans[0], (0, 13));
        assert_eq!(spans.len(), 3);
    }
}

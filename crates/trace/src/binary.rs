//! A compact, fault-tolerant binary on-disk trace format.
//!
//! Traces can be captured once (e.g. with `paragraph trace`) and re-analyzed
//! under many machine models, exactly as the paper re-ran Paragraph over
//! Pixie trace files with different switch settings. Those re-runs cover
//! very long streams, so the format is built to survive what long capture
//! pipelines actually produce: truncated files and corrupt bytes.
//!
//! # Format
//!
//! The header is shared by both versions: magic `PGTR`, a format version
//! byte, then the [`SegmentMap`] boundaries as varints.
//!
//! **Version 2** (written by [`TraceWriter::new`]) frames records into
//! self-delimited chunks:
//!
//! ```text
//! chunk   := SYNC_MARKER (8 bytes)
//!            varint first_record_index
//!            varint record_count        (> 0)
//!            varint payload_len
//!            crc32 (4 bytes, LE)        over the three varints + payload
//!            payload                    (record_count encoded records)
//! trailer := SYNC_MARKER, varint total_records, varint 0, varint 0, crc32
//! ```
//!
//! The pc-delta chain restarts at every chunk, so each chunk decodes
//! independently. A reader opened with [`TraceReader::with_recovery`] that
//! hits a corrupt or truncated chunk scans forward to the next sync marker,
//! counts the records it lost (chunk headers carry absolute record indexes,
//! so the loss is exact as long as a later chunk survives), and keeps
//! going; [`TraceReader::recovery_stats`] reports the damage.
//!
//! **Version 1** streams records back-to-back with no framing; v1 streams
//! remain fully readable, and [`TraceWriter::v1`] still writes them for
//! compatibility testing.
//!
//! Each record is encoded as: class byte; flag byte (source count, dest
//! flag, branch flag); zig-zag varint pc delta; each operand as a tag byte
//! plus payload; and, for resolved branches, the outcome and target.
//!
//! # Examples
//!
//! ```
//! use paragraph_trace::binary::{TraceReader, TraceWriter};
//! use paragraph_trace::{Loc, SegmentMap, TraceRecord};
//! use paragraph_isa::OpClass;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut buf = Vec::new();
//! let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data())?;
//! writer.write_record(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)))?;
//! writer.finish()?;
//!
//! let mut reader = TraceReader::new(buf.as_slice())?;
//! let records: Vec<_> = reader.by_ref().collect::<Result<_, _>>()?;
//! assert_eq!(records.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::crc32::Crc32;
use crate::error::{TraceError, TraceErrorKind};
use crate::loc::Loc;
use crate::record::TraceRecord;
use crate::segment::SegmentMap;
use crate::wire::{read_varint, unzigzag, write_varint, zigzag};
use paragraph_isa::OpClass;
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"PGTR";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;

/// Marker opening every v2 chunk; recovery mode scans for it.
///
/// Eight bytes chosen to never occur in a well-formed encoded record
/// stream by construction alone is impossible, but eight bytes make
/// accidental occurrences vanishingly rare, and the CRC rejects false
/// positives.
pub const SYNC_MARKER: [u8; 8] = [0xa5, 0x9d, b'P', b'G', b'C', b'K', 0x5a, 0xc3];

/// Records per chunk written by [`TraceWriter::new`].
pub const DEFAULT_CHUNK_RECORDS: u64 = 4096;

/// Upper bound accepted for a chunk payload (a sanity check against
/// corrupt length fields).
const MAX_PAYLOAD_LEN: u64 = 1 << 28;

/// Marker + three max-size varints + CRC: the most bytes a chunk header
/// can occupy.
const MAX_HEADER_LEN: usize = 8 + 3 * 10 + 4;

const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_MEM: u8 = 2;

fn write_loc<W: Write>(mut w: W, loc: Loc) -> io::Result<()> {
    match loc {
        Loc::IntReg(r) => w.write_all(&[TAG_INT, r.index()]),
        Loc::FpReg(r) => w.write_all(&[TAG_FP, r.index()]),
        Loc::Mem(addr) => {
            w.write_all(&[TAG_MEM])?;
            write_varint(w, addr)
        }
    }
}

fn read_loc<R: Read>(mut r: R) -> io::Result<Loc> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_INT | TAG_FP => {
            let mut idx = [0u8; 1];
            r.read_exact(&mut idx)?;
            let loc = if tag[0] == TAG_INT {
                paragraph_isa::IntReg::new(idx[0]).map(Loc::IntReg)
            } else {
                paragraph_isa::FpReg::new(idx[0]).map(Loc::FpReg)
            };
            loc.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "register index out of range")
            })
        }
        TAG_MEM => Ok(Loc::Mem(read_varint(r)?)),
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown location tag {t}"),
        )),
    }
}

/// Encodes one record (pc encoded as a delta against `last_pc`).
///
/// Writing to a `Vec` cannot fail, so this is infallible.
fn encode_record(buf: &mut Vec<u8>, record: &TraceRecord, last_pc: &mut u64) {
    let nsrc = record.srcs().len() as u8;
    let flags = nsrc
        | if record.dest().is_some() { 0x80 } else { 0 }
        | if record.branch_info().is_some() {
            0x40
        } else {
            0
        };
    buf.push(record.class().id());
    buf.push(flags);
    let delta = zigzag(record.pc() as i64 - *last_pc as i64);
    // Vec writes are infallible.
    let _ = write_varint(&mut *buf, delta);
    *last_pc = record.pc();
    for &s in record.srcs() {
        let _ = write_loc(&mut *buf, s);
    }
    if let Some(d) = record.dest() {
        let _ = write_loc(&mut *buf, d);
    }
    if let Some(info) = record.branch_info() {
        buf.push(u8::from(info.taken));
        let _ = write_varint(&mut *buf, info.target);
    }
}

/// Decodes one record, or `None` at a clean end-of-stream boundary.
fn decode_record<R: Read>(mut input: R, last_pc: &mut u64) -> io::Result<Option<TraceRecord>> {
    let mut head = [0u8; 2];
    match input.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let class = OpClass::from_id(head[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown opcode class"))?;
    let nsrc = (head[1] & 0x3f) as usize;
    if nsrc > 3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record has too many sources",
        ));
    }
    let has_dest = head[1] & 0x80 != 0;
    let has_branch = head[1] & 0x40 != 0;
    let delta = unzigzag(read_varint(&mut input)?);
    let pc = last_pc.wrapping_add(delta as u64);
    *last_pc = pc;
    let mut srcs = [Loc::mem(0); 3];
    for slot in srcs.iter_mut().take(nsrc) {
        *slot = read_loc(&mut input)?;
    }
    let dest = if has_dest {
        Some(read_loc(&mut input)?)
    } else {
        None
    };
    if has_branch {
        let mut taken = [0u8; 1];
        input.read_exact(&mut taken)?;
        let target = read_varint(&mut input)?;
        if class != OpClass::Branch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "branch outcome on a non-branch record",
            ));
        }
        return Ok(Some(TraceRecord::branch_outcome(
            pc,
            &srcs[..nsrc],
            taken[0] != 0,
            target,
        )));
    }
    Ok(Some(TraceRecord::new(pc, class, &srcs[..nsrc], dest)))
}

/// Streaming writer for the binary trace format.
///
/// [`TraceWriter::new`] writes the chunked, checksummed v2 format;
/// [`TraceWriter::v1`] writes the legacy unframed stream. Callers that need
/// buffering should wrap the writer in a [`std::io::BufWriter`]; a `&mut W`
/// can be passed wherever a `W: Write` is expected.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    version: u8,
    chunk_records: u64,
    chunk_buf: Vec<u8>,
    chunk_len: u64,
    last_pc: u64,
    records: u64,
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes a v2 header and returns a writer framing records into chunks
    /// of [`DEFAULT_CHUNK_RECORDS`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(out: W, segments: SegmentMap) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_chunk_records(out, segments, DEFAULT_CHUNK_RECORDS)
    }

    /// Like [`TraceWriter::new`] with an explicit chunk size (records per
    /// chunk). Smaller chunks bound the loss from a corrupt region more
    /// tightly at a little more framing overhead.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn with_chunk_records(
        mut out: W,
        segments: SegmentMap,
        chunk_records: u64,
    ) -> io::Result<TraceWriter<W>> {
        assert!(chunk_records > 0, "chunk size must be positive");
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION_V2])?;
        write_varint(&mut out, segments.heap_base())?;
        write_varint(&mut out, segments.stack_floor())?;
        Ok(TraceWriter {
            out,
            version: VERSION_V2,
            chunk_records,
            chunk_buf: Vec::new(),
            chunk_len: 0,
            last_pc: 0,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Writes a legacy v1 (unframed) header and returns a v1 writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn v1(mut out: W, segments: SegmentMap) -> io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION_V1])?;
        write_varint(&mut out, segments.heap_base())?;
        write_varint(&mut out, segments.stack_floor())?;
        Ok(TraceWriter {
            out,
            version: VERSION_V1,
            chunk_records: 0,
            chunk_buf: Vec::new(),
            chunk_len: 0,
            last_pc: 0,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &TraceRecord) -> io::Result<()> {
        if self.version == VERSION_V1 {
            self.scratch.clear();
            encode_record(&mut self.scratch, record, &mut self.last_pc);
            self.out.write_all(&self.scratch)?;
            self.records += 1;
            return Ok(());
        }
        encode_record(&mut self.chunk_buf, record, &mut self.last_pc);
        self.chunk_len += 1;
        self.records += 1;
        if self.chunk_len == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Writes the buffered chunk (if any) with its framing.
    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_len == 0 {
            return Ok(());
        }
        let first_index = self.records - self.chunk_len;
        write_chunk_frame(&mut self.out, first_index, self.chunk_len, &self.chunk_buf)?;
        self.chunk_buf.clear();
        self.chunk_len = 0;
        // Each chunk decodes independently: restart the pc-delta chain.
        self.last_pc = 0;
        Ok(())
    }

    /// Flushes (writing the final chunk and end-of-stream trailer for v2)
    /// and returns the number of records written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<u64> {
        if self.version == VERSION_V2 {
            self.flush_chunk()?;
            // Trailer: total record count, zero records, empty payload.
            write_chunk_frame(&mut self.out, self.records, 0, &[])?;
        }
        self.out.flush()?;
        Ok(self.records)
    }
}

/// Writes one framed chunk: sync marker, header varints, CRC, payload.
fn write_chunk_frame<W: Write>(
    mut out: W,
    first_index: u64,
    count: u64,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = Vec::with_capacity(3 * 10);
    // Vec writes are infallible.
    let _ = write_varint(&mut header, first_index);
    let _ = write_varint(&mut header, count);
    let _ = write_varint(&mut header, payload.len() as u64);
    let mut crc = Crc32::new();
    crc.update(&header);
    crc.update(payload);
    out.write_all(&SYNC_MARKER)?;
    out.write_all(&header)?;
    out.write_all(&crc.finish().to_le_bytes())?;
    out.write_all(payload)
}

/// Damage tallies from a [`TraceReader`] (all zero for a clean stream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records successfully decoded and yielded.
    pub records_read: u64,
    /// Records known to be lost to corruption or truncation. Exact
    /// whenever a later chunk (or the trailer) survives to re-anchor the
    /// record index; a destroyed tail with no trailer is not counted
    /// because its size is unknowable.
    pub records_skipped: u64,
    /// Chunks whose CRC check failed.
    pub chunks_skipped: u64,
    /// Chunks dropped because their records were already delivered
    /// (duplicated frames).
    pub duplicate_chunks: u64,
    /// Times the reader had to scan forward for a sync marker.
    pub resyncs: u64,
    /// Bytes discarded while scanning.
    pub bytes_skipped: u64,
}

/// Buffered byte source for chunk parsing: supports peeking at unconsumed
/// bytes (so a failed parse can rescan them) while tracking the absolute
/// stream offset.
#[derive(Debug)]
struct ByteStream<R: Read> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    offset: u64,
    eof: bool,
}

impl<R: Read> ByteStream<R> {
    fn new(inner: R) -> ByteStream<R> {
        ByteStream {
            inner,
            buf: Vec::new(),
            start: 0,
            offset: 0,
            eof: false,
        }
    }

    fn available(&self) -> usize {
        self.buf.len() - self.start
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Tries to buffer at least `want` unconsumed bytes; stops early at
    /// end-of-input. Returns the bytes now available.
    fn fill_to(&mut self, want: usize) -> io::Result<usize> {
        while self.available() < want && !self.eof {
            self.compact();
            let old_len = self.buf.len();
            self.buf.resize(old_len + 8192, 0);
            let n = self.inner.read(&mut self.buf[old_len..])?;
            self.buf.truncate(old_len + n);
            if n == 0 {
                self.eof = true;
            }
        }
        Ok(self.available())
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.available());
        self.start += n;
        self.offset += n as u64;
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl<R: Read> Read for ByteStream<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.available() == 0 {
            if self.eof {
                return Ok(0);
            }
            let n = self.inner.read(out)?;
            if n == 0 {
                self.eof = true;
            }
            self.offset += n as u64;
            return Ok(n);
        }
        let n = out.len().min(self.available());
        out[..n].copy_from_slice(&self.buffered()[..n]);
        self.consume(n);
        Ok(n)
    }
}

/// Outcome of attempting to parse one chunk at the current position.
enum ChunkParse {
    /// A CRC-valid data chunk.
    Chunk {
        first_index: u64,
        count: u64,
        payload: Vec<u8>,
    },
    /// The CRC-valid end-of-stream trailer.
    Trailer { total: u64 },
    /// Clean end of input at a chunk boundary.
    End,
    /// The input ended before the chunk did.
    Truncated,
    /// The next bytes are not a sync marker.
    BadSync,
    /// Marker found but the header fields are nonsense.
    BadHeader(&'static str),
    /// Frame intact but the checksum disagrees.
    BadCrc { stored: u32, computed: u32 },
}

/// Streaming reader for the binary trace format (v1 and v2).
///
/// Iterates over `Result<TraceRecord, TraceError>`; iteration ends at a
/// clean end-of-stream. A reader opened with [`TraceReader::new`] stops at
/// the first fault with a context-carrying [`TraceError`]; one opened with
/// [`TraceReader::with_recovery`] resynchronizes past damage in v2 streams
/// and tallies the loss in [`TraceReader::recovery_stats`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: ByteStream<R>,
    segments: SegmentMap,
    version: u8,
    recover: bool,
    done: bool,
    /// v1 decode state.
    last_pc: u64,
    /// Records delivered so far (also: index of the next record).
    delivered: u64,
    /// v2: payload of the chunk currently being decoded.
    payload: io::Cursor<Vec<u8>>,
    payload_last_pc: u64,
    /// v2: records remaining in the current chunk.
    payload_remaining: u64,
    /// v2: records at the head of the current chunk to decode and drop
    /// (already delivered from an earlier copy of an overlapping frame).
    payload_discard: u64,
    /// v2: ordinal of the chunk being read.
    chunk_ordinal: u64,
    /// v2: next expected record index (delivered + known-skipped).
    pos: u64,
    stats: RecoveryStats,
    total_written: Option<u64>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header; faults fail the iteration at the
    /// first error.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the magic or version is wrong or the
    /// header is unreadable.
    pub fn new(input: R) -> Result<TraceReader<R>, TraceError> {
        TraceReader::open(input, false)
    }

    /// Like [`TraceReader::new`], but damage in a v2 stream is skipped by
    /// scanning to the next sync marker instead of failing. The loss is
    /// tallied in [`TraceReader::recovery_stats`]. (v1 streams have no
    /// sync markers, so recovery cannot resume them; their faults still
    /// end the iteration with an error.)
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the magic or version is wrong or the
    /// header is unreadable; recovery starts only after a valid header.
    pub fn with_recovery(input: R) -> Result<TraceReader<R>, TraceError> {
        TraceReader::open(input, true)
    }

    fn open(input: R, recover: bool) -> Result<TraceReader<R>, TraceError> {
        let mut input = ByteStream::new(input);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic).map_err(|e| {
            let kind = if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceErrorKind::Truncated
            } else {
                TraceErrorKind::Io(e)
            };
            TraceError::new(kind, 0, 0)
        })?;
        if &magic[..4] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&magic[..4]);
            return Err(TraceError::new(TraceErrorKind::BadMagic(found), 0, 0));
        }
        let version = magic[4];
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(TraceError::new(
                TraceErrorKind::UnsupportedVersion(version),
                4,
                0,
            ));
        }
        let heap_base =
            read_varint(&mut input).map_err(|e| TraceError::new(io_to_kind(e), input.offset, 0))?;
        let stack_floor =
            read_varint(&mut input).map_err(|e| TraceError::new(io_to_kind(e), input.offset, 0))?;
        // A flipped bit in the header can invert the segment boundaries;
        // that is corruption, not a programming error.
        if heap_base > stack_floor {
            return Err(TraceError::new(
                TraceErrorKind::Corrupt("segment boundaries are inverted".into()),
                input.offset,
                0,
            ));
        }
        Ok(TraceReader {
            input,
            segments: SegmentMap::new(heap_base, stack_floor),
            version,
            recover,
            done: false,
            last_pc: 0,
            delivered: 0,
            payload: io::Cursor::new(Vec::new()),
            payload_last_pc: 0,
            payload_remaining: 0,
            payload_discard: 0,
            chunk_ordinal: 0,
            pos: 0,
            stats: RecoveryStats::default(),
            total_written: None,
        })
    }

    /// The segment map recorded in the trace header.
    pub fn segment_map(&self) -> SegmentMap {
        self.segments
    }

    /// The format version declared by the stream (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Damage tallies so far (all zero for a clean stream).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Total records the writer claims to have written, once the
    /// end-of-stream trailer has been reached (v2 only).
    pub fn records_written(&self) -> Option<u64> {
        self.total_written
    }

    /// Bytes consumed from the underlying stream so far (header included).
    /// Lets drivers report decode throughput in MB/s without wrapping the
    /// reader in a counting adapter.
    pub fn bytes_read(&self) -> u64 {
        self.input.offset
    }

    /// Records delivered to the caller so far.
    pub fn records_read(&self) -> u64 {
        self.delivered
    }

    /// Decodes every remaining record into a shared immutable slice.
    ///
    /// This is the sweep engine's decode-once entry point: the returned
    /// `Arc<[TraceRecord]>` derefs to `&[TraceRecord]`, so any number of
    /// concurrent analyzer passes can walk one decode without copying or
    /// re-reading the stream. The segment map rides along because every
    /// analysis config derived from the trace needs it.
    ///
    /// # Errors
    ///
    /// Returns the first decode fault, exactly as iteration would (wrap
    /// the reader via [`TraceReader::with_recovery`] first to skip damaged
    /// chunks instead).
    pub fn into_shared(mut self) -> Result<(Arc<[TraceRecord]>, SegmentMap), TraceError> {
        let segments = self.segment_map();
        let mut records = Vec::new();
        for record in self.by_ref() {
            records.push(record?);
        }
        Ok((Arc::from(records), segments))
    }

    fn error(&self, kind: TraceErrorKind) -> TraceError {
        let err = TraceError::new(kind, self.input.offset, self.delivered);
        if self.version == VERSION_V2 {
            err.in_chunk(self.chunk_ordinal)
        } else {
            err
        }
    }

    /// v1: decode the next record straight off the stream.
    fn next_v1(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        match decode_record(&mut self.input, &mut self.last_pc) {
            Ok(Some(record)) => {
                self.delivered += 1;
                self.stats.records_read += 1;
                Ok(Some(record))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(self.error(io_to_kind(e))),
        }
    }

    /// Attempts to parse one chunk frame at the current stream position.
    /// Consumes input only on success.
    fn try_parse_chunk(&mut self) -> io::Result<ChunkParse> {
        let available = self.input.fill_to(SYNC_MARKER.len())?;
        if available == 0 {
            return Ok(ChunkParse::End);
        }
        if available < SYNC_MARKER.len() {
            return Ok(ChunkParse::Truncated);
        }
        if self.input.buffered()[..SYNC_MARKER.len()] != SYNC_MARKER {
            return Ok(ChunkParse::BadSync);
        }
        self.input.fill_to(MAX_HEADER_LEN)?;
        let header = &self.input.buffered()[SYNC_MARKER.len()..];
        let mut cursor = header;
        let Ok(first_index) = read_varint(&mut cursor) else {
            return Ok(if header.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("record index varint")
            });
        };
        let Ok(count) = read_varint(&mut cursor) else {
            return Ok(if cursor.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("record count varint")
            });
        };
        let Ok(payload_len) = read_varint(&mut cursor) else {
            return Ok(if cursor.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("payload length varint")
            });
        };
        let varint_len = header.len() - cursor.len();
        if payload_len > MAX_PAYLOAD_LEN {
            return Ok(ChunkParse::BadHeader("payload length out of range"));
        }
        if count == 0 && payload_len != 0 {
            return Ok(ChunkParse::BadHeader("trailer with payload"));
        }
        // Every record costs at least 3 bytes (class, flags, pc delta).
        if count > 0 && count.saturating_mul(3) > payload_len {
            return Ok(ChunkParse::BadHeader("record count exceeds payload"));
        }
        if cursor.len() < 4 {
            return Ok(ChunkParse::Truncated);
        }
        let mut stored = [0u8; 4];
        stored.copy_from_slice(&cursor[..4]);
        let stored = u32::from_le_bytes(stored);
        let header_len = SYNC_MARKER.len() + varint_len + 4;
        let frame_len = header_len + payload_len as usize;
        if self.input.fill_to(frame_len)? < frame_len {
            return Ok(ChunkParse::Truncated);
        }
        let bytes = self.input.buffered();
        let mut crc = Crc32::new();
        crc.update(&bytes[SYNC_MARKER.len()..SYNC_MARKER.len() + varint_len]);
        crc.update(&bytes[header_len..frame_len]);
        let computed = crc.finish();
        if computed != stored {
            return Ok(ChunkParse::BadCrc { stored, computed });
        }
        if count == 0 {
            self.input.consume(frame_len);
            return Ok(ChunkParse::Trailer { total: first_index });
        }
        let payload = bytes[header_len..frame_len].to_vec();
        self.input.consume(frame_len);
        Ok(ChunkParse::Chunk {
            first_index,
            count,
            payload,
        })
    }

    /// Recovery: drop one byte, then scan forward to the next candidate
    /// sync marker (or end of input).
    fn resync(&mut self) -> io::Result<()> {
        self.stats.resyncs += 1;
        self.input.consume(1);
        self.stats.bytes_skipped += 1;
        loop {
            let bytes = self.input.buffered();
            if let Some(at) = find_marker(bytes) {
                self.input.consume(at);
                self.stats.bytes_skipped += at as u64;
                return Ok(());
            }
            // No marker: all but the last 7 bytes (a possible marker
            // prefix) are garbage.
            let keep = bytes.len().min(SYNC_MARKER.len() - 1);
            let drop = bytes.len() - keep;
            self.input.consume(drop);
            self.stats.bytes_skipped += drop as u64;
            let before = self.input.available();
            if self.input.fill_to(before + 8192)? == before {
                // End of input: nothing left to scan.
                let rest = self.input.available();
                self.input.consume(rest);
                self.stats.bytes_skipped += rest as u64;
                return Ok(());
            }
        }
    }

    /// Installs a freshly parsed chunk for decoding, reconciling its
    /// record-index range against what has already been delivered.
    fn install_chunk(&mut self, first_index: u64, count: u64, payload: Vec<u8>) {
        self.chunk_ordinal += 1;
        if first_index >= self.pos {
            // A gap means the records in between were destroyed.
            self.stats.records_skipped += first_index - self.pos;
            self.pos = first_index;
            self.payload_discard = 0;
        } else {
            let overlap = self.pos - first_index;
            if overlap >= count {
                // Every record in this frame was already delivered.
                self.stats.duplicate_chunks += 1;
                return;
            }
            self.stats.duplicate_chunks += 1;
            self.payload_discard = overlap;
        }
        self.payload = io::Cursor::new(payload);
        self.payload_last_pc = 0;
        self.payload_remaining = count;
    }

    /// v2: decode the next record, advancing through chunks as needed.
    fn next_v2(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            while self.payload_remaining > 0 {
                match decode_record(&mut self.payload, &mut self.payload_last_pc) {
                    Ok(Some(record)) => {
                        self.payload_remaining -= 1;
                        if self.payload_discard > 0 {
                            self.payload_discard -= 1;
                            continue;
                        }
                        self.delivered += 1;
                        self.pos += 1;
                        self.stats.records_read += 1;
                        return Ok(Some(record));
                    }
                    // A CRC-valid chunk that does not decode (possible
                    // only under checksum collision): count the declared
                    // remainder as lost.
                    Ok(None) => {
                        let why = TraceErrorKind::Corrupt(
                            "chunk payload shorter than its record count".into(),
                        );
                        if !self.recover {
                            return Err(self.error(why));
                        }
                        let lost = self.payload_remaining
                            - self.payload_discard.min(self.payload_remaining);
                        self.stats.records_skipped += lost;
                        self.pos += lost;
                        self.payload_remaining = 0;
                        self.payload_discard = 0;
                    }
                    Err(e) => {
                        if !self.recover {
                            return Err(self.error(io_to_kind(e)));
                        }
                        let lost = self.payload_remaining
                            - self.payload_discard.min(self.payload_remaining);
                        self.stats.records_skipped += lost;
                        self.pos += lost;
                        self.payload_remaining = 0;
                        self.payload_discard = 0;
                    }
                }
            }
            let parsed = match self.try_parse_chunk() {
                Ok(parsed) => parsed,
                Err(e) => return Err(self.error(TraceErrorKind::Io(e))),
            };
            match parsed {
                ChunkParse::Chunk {
                    first_index,
                    count,
                    payload,
                } => self.install_chunk(first_index, count, payload),
                ChunkParse::Trailer { total } => {
                    self.total_written = Some(total);
                    if total > self.pos {
                        // The tail before the trailer was destroyed.
                        self.stats.records_skipped += total - self.pos;
                        self.pos = total;
                    }
                    return Ok(None);
                }
                ChunkParse::End => {
                    if self.recover {
                        // Truncated before the trailer: the tail loss is
                        // unknowable, so it is not counted.
                        return Ok(None);
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::Truncated => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::BadSync => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt("expected chunk sync marker".into()))
                    );
                }
                ChunkParse::BadHeader(what) => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt(format!("bad chunk header: {what}")))
                    );
                }
                ChunkParse::BadCrc { stored, computed } => {
                    self.stats.chunks_skipped += 1;
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::ChecksumMismatch { stored, computed }));
                }
            }
        }
    }

    fn resync_or_fail(&mut self) -> Result<(), TraceError> {
        self.resync().map_err(|e| self.error(TraceErrorKind::Io(e)))
    }
}

/// Maps low-level decode errors to trace error kinds.
fn io_to_kind(e: io::Error) -> TraceErrorKind {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => TraceErrorKind::Truncated,
        io::ErrorKind::InvalidData => TraceErrorKind::Corrupt(e.to_string()),
        _ => TraceErrorKind::Io(e),
    }
}

/// Position of the first [`SYNC_MARKER`] in `bytes`, if any.
fn find_marker(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < SYNC_MARKER.len() {
        return None;
    }
    let mut at = 0;
    while at + SYNC_MARKER.len() <= bytes.len() {
        match bytes[at..].iter().position(|&b| b == SYNC_MARKER[0]) {
            Some(i) => at += i,
            None => return None,
        }
        if at + SYNC_MARKER.len() > bytes.len() {
            return None;
        }
        if bytes[at..at + SYNC_MARKER.len()] == SYNC_MARKER {
            return Some(at);
        }
        at += 1;
    }
    None
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        if self.done {
            return None;
        }
        let next = if self.version == VERSION_V1 {
            self.next_v1()
        } else {
            self.next_v2()
        };
        match next {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TraceErrorKind;
    use crate::synthetic;

    fn encode(records: &[TraceRecord], segments: SegmentMap) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, segments).unwrap();
        for r in records {
            writer.write_record(r).unwrap();
        }
        let written = writer.finish().unwrap();
        assert_eq!(written, records.len() as u64);
        buf
    }

    fn round_trip(records: &[TraceRecord], segments: SegmentMap) -> Vec<TraceRecord> {
        let buf = encode(records, segments);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.segment_map(), segments);
        reader.map(|r| r.unwrap()).collect()
    }

    #[test]
    fn figure1_round_trips() {
        let records = synthetic::figure1();
        assert_eq!(round_trip(&records, SegmentMap::all_data()), records);
    }

    #[test]
    fn random_trace_round_trips() {
        let records = synthetic::random_trace(500, 42);
        let segments = SegmentMap::new(64, 1 << 20);
        assert_eq!(round_trip(&records, segments), records);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert!(round_trip(&[], SegmentMap::all_data()).is_empty());
    }

    #[test]
    fn into_shared_decodes_once_into_an_arena_slice() {
        let records = synthetic::random_trace(300, 11);
        let segments = SegmentMap::new(64, 1 << 20);
        let buf = encode(&records, segments);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let (shared, got_segments) = reader.into_shared().unwrap();
        assert_eq!(got_segments, segments);
        assert_eq!(&shared[..], &records[..]);
        // Shared handles alias the same allocation — the arena contract.
        let other = Arc::clone(&shared);
        assert!(std::ptr::eq(other.as_ptr(), shared.as_ptr()));
    }

    #[test]
    fn into_shared_surfaces_decode_faults() {
        let records = synthetic::random_trace(200, 13);
        let mut buf = encode(&records, SegmentMap::all_data());
        let mid = buf.len() / 2;
        buf[mid] ^= 0x20;
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.into_shared().is_err(), "corruption must surface");
    }

    #[test]
    fn multi_chunk_trace_round_trips() {
        let records = synthetic::random_trace(1000, 7);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        assert_eq!(reader.records_written(), Some(1000));
        assert_eq!(reader.recovery_stats().records_read, 1000);
        assert_eq!(reader.recovery_stats().records_skipped, 0);
    }

    #[test]
    fn v1_streams_remain_readable() {
        let records = synthetic::random_trace(300, 9);
        let segments = SegmentMap::new(64, 1 << 20);
        let mut buf = Vec::new();
        let mut writer = TraceWriter::v1(&mut buf, segments).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), 300);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.version(), 1);
        assert_eq!(reader.segment_map(), segments);
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOPE\x01xxxx"[..]).unwrap_err();
        assert!(matches!(err.kind(), TraceErrorKind::BadMagic(m) if m == b"NOPE"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(99);
        buf.extend_from_slice(&[0, 0]);
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(matches!(err.kind(), TraceErrorKind::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_record_reports_eof_error() {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data()).unwrap();
        writer
            .write_record(&TraceRecord::compute(
                0,
                OpClass::IntAlu,
                &[Loc::int(1)],
                Loc::int(2),
            ))
            .unwrap();
        writer.finish().unwrap();
        // Cut into the middle of the (only) data chunk.
        buf.truncate(buf.len() - 18);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 1);
        let err = results[0].as_ref().unwrap_err();
        assert!(
            matches!(err.kind(), TraceErrorKind::Truncated),
            "kind: {err}"
        );
        // The error names the position: past the 7-byte header, no records
        // decoded yet, inside the first chunk.
        assert!(err.byte_offset() >= 7, "offset {}", err.byte_offset());
        assert_eq!(err.record_index(), 0);
        assert_eq!(err.chunk(), Some(0));
    }

    #[test]
    fn corrupt_chunk_fails_strict_reads_with_checksum_context() {
        let records = synthetic::random_trace(200, 3);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        // Flip a byte inside the second chunk's payload.
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        assert!(marker_positions.len() >= 3);
        buf[marker_positions[1] + 40] ^= 0x10;
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        let err = results.last().unwrap().as_ref().unwrap_err();
        assert!(
            matches!(err.kind(), TraceErrorKind::ChecksumMismatch { .. }),
            "kind: {err}"
        );
        assert_eq!(err.record_index(), 64);
        assert_eq!(err.chunk(), Some(1));
        // 64 good records were delivered before the fault.
        assert_eq!(results.len(), 65);
        assert!(results[..64].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn recovery_skips_a_corrupt_chunk_and_counts_the_loss() {
        let records = synthetic::random_trace(256, 5);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Corrupt the second of four data chunks.
        buf[marker_positions[1] + 30] ^= 0xff;
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        let stats = reader.recovery_stats();
        assert_eq!(stats.records_read, 192);
        assert_eq!(stats.records_skipped, 64);
        assert_eq!(stats.chunks_skipped, 1);
        assert!(stats.resyncs >= 1);
        // The surviving records are exactly the other three chunks.
        let expected: Vec<_> = records[..64]
            .iter()
            .chain(&records[128..])
            .cloned()
            .collect();
        assert_eq!(got, expected);
        assert_eq!(reader.records_written(), Some(256));
    }

    #[test]
    fn recovery_counts_a_destroyed_tail_via_the_trailer() {
        let records = synthetic::random_trace(128, 11);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Destroy the last data chunk (between the last two markers).
        for b in &mut buf[marker_positions[1]..marker_positions[2]] {
            *b = 0x00;
        }
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records[..64]);
        let stats = reader.recovery_stats();
        assert_eq!(stats.records_read, 64);
        assert_eq!(stats.records_skipped, 64);
    }

    #[test]
    fn recovery_drops_duplicated_chunks() {
        let records = synthetic::random_trace(128, 13);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Duplicate the first data chunk in place.
        let first_chunk = buf[marker_positions[0]..marker_positions[1]].to_vec();
        let mut mutated = buf[..marker_positions[1]].to_vec();
        mutated.extend_from_slice(&first_chunk);
        mutated.extend_from_slice(&buf[marker_positions[1]..]);
        let mut reader = TraceReader::with_recovery(mutated.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        let stats = reader.recovery_stats();
        assert_eq!(stats.duplicate_chunks, 1);
        assert_eq!(stats.records_skipped, 0);
    }

    #[test]
    fn recovery_of_a_clean_stream_is_lossless() {
        let records = synthetic::random_trace(500, 17);
        let buf = encode(&records, SegmentMap::all_data());
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        assert_eq!(
            reader.recovery_stats(),
            RecoveryStats {
                records_read: 500,
                ..RecoveryStats::default()
            }
        );
    }

    #[test]
    fn strict_reader_reports_missing_trailer() {
        let records = synthetic::random_trace(64, 19);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Drop the trailer entirely.
        buf.truncate(*marker_positions.last().unwrap());
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 65);
        assert!(matches!(
            results[64].as_ref().unwrap_err().kind(),
            TraceErrorKind::Truncated
        ));
    }

    #[test]
    fn find_marker_locates_embedded_markers() {
        let mut bytes = vec![0xa5u8; 20];
        assert_eq!(find_marker(&bytes), None);
        bytes.extend_from_slice(&SYNC_MARKER);
        assert_eq!(find_marker(&bytes), Some(20));
        assert_eq!(find_marker(&SYNC_MARKER), Some(0));
        assert_eq!(find_marker(&SYNC_MARKER[..7]), None);
    }
}

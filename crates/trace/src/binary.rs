//! A compact, fault-tolerant binary on-disk trace format.
//!
//! Traces can be captured once (e.g. with `paragraph trace`) and re-analyzed
//! under many machine models, exactly as the paper re-ran Paragraph over
//! Pixie trace files with different switch settings. Those re-runs cover
//! very long streams, so the format is built to survive what long capture
//! pipelines actually produce: truncated files and corrupt bytes.
//!
//! # Format
//!
//! The header is shared by both versions: magic `PGTR`, a format version
//! byte, then the [`SegmentMap`] boundaries as varints.
//!
//! **Version 2** (written by [`TraceWriter::new`]) frames records into
//! self-delimited chunks:
//!
//! ```text
//! chunk   := SYNC_MARKER (8 bytes)
//!            varint first_record_index
//!            varint record_count        (> 0)
//!            varint payload_len
//!            crc32 (4 bytes, LE)        over the three varints + payload
//!            payload                    (record_count encoded records)
//! trailer := SYNC_MARKER, varint total_records, varint 0, varint 0, crc32
//! ```
//!
//! The pc-delta chain restarts at every chunk, so each chunk decodes
//! independently. A reader opened with [`TraceReader::with_recovery`] that
//! hits a corrupt or truncated chunk scans forward to the next sync marker,
//! counts the records it lost (chunk headers carry absolute record indexes,
//! so the loss is exact as long as a later chunk survives), and keeps
//! going; [`TraceReader::recovery_stats`] reports the damage.
//!
//! **Version 1** streams records back-to-back with no framing; v1 streams
//! remain fully readable, and [`TraceWriter::v1`] still writes them for
//! compatibility testing.
//!
//! Each record is encoded as: class byte; flag byte (source count, dest
//! flag, branch flag); zig-zag varint pc delta; each operand as a tag byte
//! plus payload; and, for resolved branches, the outcome and target.
//!
//! # Decoding
//!
//! The reader decodes in blocks: a whole CRC-validated chunk payload (or,
//! for v1, a large buffered run) is decoded straight out of the stream
//! buffer into a record batch — no per-record reads, no payload copy.
//! [`TraceReader::read_block`] exposes the batches directly for hot loops;
//! the record iterator drains the same batches one record at a time. The
//! legacy per-record path is kept behind
//! [`TraceReader::with_per_record_decode`] as a benchmark baseline and
//! differential-testing oracle.
//!
//! # Examples
//!
//! ```
//! use paragraph_trace::binary::{TraceReader, TraceWriter};
//! use paragraph_trace::{Loc, SegmentMap, TraceRecord};
//! use paragraph_isa::OpClass;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut buf = Vec::new();
//! let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data())?;
//! writer.write_record(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)))?;
//! writer.finish()?;
//!
//! let mut reader = TraceReader::new(buf.as_slice())?;
//! let records: Vec<_> = reader.by_ref().collect::<Result<_, _>>()?;
//! assert_eq!(records.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::crc32::Crc32;
use crate::error::{TraceError, TraceErrorKind};
use crate::govern::{LimitViolation, ResourceGovernor};
use crate::loc::Loc;
use crate::record::TraceRecord;
use crate::segment::SegmentMap;
use crate::source::SharedBytes;
use crate::wire::{
    read_varint, read_varint_slice, read_varint_swar, unzigzag, write_varint, zigzag,
};
use paragraph_isa::OpClass;
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"PGTR";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;

/// Marker opening every v2 chunk; recovery mode scans for it.
///
/// Eight bytes chosen to never occur in a well-formed encoded record
/// stream by construction alone is impossible, but eight bytes make
/// accidental occurrences vanishingly rare, and the CRC rejects false
/// positives.
pub const SYNC_MARKER: [u8; 8] = [0xa5, 0x9d, b'P', b'G', b'C', b'K', 0x5a, 0xc3];

/// Records per chunk written by [`TraceWriter::new`].
pub const DEFAULT_CHUNK_RECORDS: u64 = 4096;

/// Upper bound accepted for a chunk payload (a sanity check against
/// corrupt length fields).
const MAX_PAYLOAD_LEN: u64 = 1 << 28;

/// Marker + three max-size varints + CRC: the most bytes a chunk header
/// can occupy.
const MAX_HEADER_LEN: usize = 8 + 3 * 10 + 4;

/// Conservative upper bound on one encoded record, valid even for corrupt
/// input: class + flags (2 bytes), pc-delta varint (≤ 11 bytes before the
/// decoder rejects it), three source locs and a dest (≤ 12 bytes each),
/// branch outcome byte + target varint (≤ 12 bytes). The v1 block decoder
/// stops this far short of the end of a non-final buffer so it never
/// starts a record it cannot finish.
const MAX_RECORD_LEN: usize = 80;

/// Records per batch served by the block decoder (and per block returned
/// by [`TraceReader::read_block`] on the legacy path).
const BATCH_RECORDS: usize = DEFAULT_CHUNK_RECORDS as usize;

/// Bytes the v1 block decoder buffers per refill.
const V1_FILL_BYTES: usize = 64 * 1024;

const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_MEM: u8 = 2;

fn write_loc<W: Write>(mut w: W, loc: Loc) -> io::Result<()> {
    match loc {
        Loc::IntReg(r) => w.write_all(&[TAG_INT, r.index()]),
        Loc::FpReg(r) => w.write_all(&[TAG_FP, r.index()]),
        Loc::Mem(addr) => {
            w.write_all(&[TAG_MEM])?;
            write_varint(w, addr)
        }
    }
}

fn read_loc<R: Read>(mut r: R) -> io::Result<Loc> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_INT | TAG_FP => {
            let mut idx = [0u8; 1];
            r.read_exact(&mut idx)?;
            let loc = if tag[0] == TAG_INT {
                paragraph_isa::IntReg::new(idx[0]).map(Loc::IntReg)
            } else {
                paragraph_isa::FpReg::new(idx[0]).map(Loc::FpReg)
            };
            loc.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "register index out of range")
            })
        }
        TAG_MEM => Ok(Loc::Mem(read_varint(r)?)),
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown location tag {t}"),
        )),
    }
}

/// Encodes one record (pc encoded as a delta against `last_pc`).
///
/// Writing to a `Vec` cannot fail, so this is infallible.
fn encode_record(buf: &mut Vec<u8>, record: &TraceRecord, last_pc: &mut u64) {
    let nsrc = record.srcs().len() as u8;
    let flags = nsrc
        | if record.dest().is_some() { 0x80 } else { 0 }
        | if record.branch_info().is_some() {
            0x40
        } else {
            0
        };
    buf.push(record.class().id());
    buf.push(flags);
    let delta = zigzag(record.pc() as i64 - *last_pc as i64);
    // Vec writes are infallible.
    let _ = write_varint(&mut *buf, delta);
    *last_pc = record.pc();
    for &s in record.srcs() {
        let _ = write_loc(&mut *buf, s);
    }
    if let Some(d) = record.dest() {
        let _ = write_loc(&mut *buf, d);
    }
    if let Some(info) = record.branch_info() {
        buf.push(u8::from(info.taken));
        let _ = write_varint(&mut *buf, info.target);
    }
}

/// Decodes one record, or `None` at a clean end-of-stream boundary.
fn decode_record<R: Read>(mut input: R, last_pc: &mut u64) -> io::Result<Option<TraceRecord>> {
    let mut head = [0u8; 2];
    match input.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let class = OpClass::from_id(head[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown opcode class"))?;
    let nsrc = (head[1] & 0x3f) as usize;
    if nsrc > 3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record has too many sources",
        ));
    }
    let has_dest = head[1] & 0x80 != 0;
    let has_branch = head[1] & 0x40 != 0;
    let delta = unzigzag(read_varint(&mut input)?);
    let pc = last_pc.wrapping_add(delta as u64);
    *last_pc = pc;
    let mut srcs = [Loc::mem(0); 3];
    for slot in srcs.iter_mut().take(nsrc) {
        *slot = read_loc(&mut input)?;
    }
    let dest = if has_dest {
        Some(read_loc(&mut input)?)
    } else {
        None
    };
    if has_branch {
        let mut taken = [0u8; 1];
        input.read_exact(&mut taken)?;
        let target = read_varint(&mut input)?;
        if class != OpClass::Branch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "branch outcome on a non-branch record",
            ));
        }
        return Ok(Some(TraceRecord::branch_outcome(
            pc,
            &srcs[..nsrc],
            taken[0] != 0,
            target,
        )));
    }
    Ok(Some(TraceRecord::new(pc, class, &srcs[..nsrc], dest)))
}

fn eof_mid_record() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "record ends past the buffer")
}

/// Operand-tag dispatch table: one indexed load classifies the tag byte
/// instead of a chain of compares. Entries: 0 = int register, 1 = fp
/// register, 2 = memory varint, 3 = invalid.
const LOC_DISPATCH: [u8; 256] = {
    let mut table = [3u8; 256];
    table[TAG_INT as usize] = 0;
    table[TAG_FP as usize] = 1;
    table[TAG_MEM as usize] = 2;
    table
};

/// Reads one varint with the kernel selected at monomorphization time:
/// the SWAR bit-trick decoder on the hot path, the scalar loop for the
/// retained oracle/baseline configuration.
#[inline]
fn read_varint_fast<const SWAR: bool>(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    if SWAR {
        read_varint_swar(buf, pos)
    } else {
        read_varint_slice(buf, pos)
    }
}

/// Slice-based twin of [`read_loc`] for the block decoder.
#[inline]
fn read_loc_slice_impl<const SWAR: bool>(buf: &[u8], pos: &mut usize) -> io::Result<Loc> {
    let Some(&tag) = buf.get(*pos) else {
        return Err(eof_mid_record());
    };
    *pos += 1;
    match LOC_DISPATCH[tag as usize] {
        0 | 1 => {
            let Some(&idx) = buf.get(*pos) else {
                return Err(eof_mid_record());
            };
            *pos += 1;
            let loc = if tag == TAG_INT {
                paragraph_isa::IntReg::new(idx).map(Loc::IntReg)
            } else {
                paragraph_isa::FpReg::new(idx).map(Loc::FpReg)
            };
            loc.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "register index out of range")
            })
        }
        2 => Ok(Loc::Mem(read_varint_fast::<SWAR>(buf, pos)?)),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown location tag {tag}"),
        )),
    }
}

/// Scalar-varint record decode: the differential baseline for the SWAR
/// path and the kernel behind [`TraceReader::with_scalar_block_decode`].
#[inline]
fn decode_record_slice(
    buf: &[u8],
    pos: &mut usize,
    last_pc: &mut u64,
) -> io::Result<Option<TraceRecord>> {
    decode_record_slice_impl::<false>(buf, pos, last_pc)
}

/// SWAR-varint record decode: the production hot path.
#[inline]
fn decode_record_slice_swar(
    buf: &[u8],
    pos: &mut usize,
    last_pc: &mut u64,
) -> io::Result<Option<TraceRecord>> {
    decode_record_slice_impl::<true>(buf, pos, last_pc)
}

/// Slice-based twin of [`decode_record`] for the block decoder: decodes
/// one record from `buf` at `*pos`, advancing `*pos` past it. `SWAR`
/// selects the varint kernel; both instantiations decode identical bytes
/// to identical records with identical errors.
///
/// Returns `None` with fewer than two bytes left at a record start — the
/// same condition the `Read`-based decoder treats as a clean end of
/// stream. Running out of bytes mid-record is `UnexpectedEof`.
#[inline]
fn decode_record_slice_impl<const SWAR: bool>(
    buf: &[u8],
    pos: &mut usize,
    last_pc: &mut u64,
) -> io::Result<Option<TraceRecord>> {
    if buf.len().saturating_sub(*pos) < 2 {
        return Ok(None);
    }
    let class_id = buf[*pos];
    let flags = buf[*pos + 1];
    *pos += 2;
    let class = OpClass::from_id(class_id)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown opcode class"))?;
    let nsrc = (flags & 0x3f) as usize;
    if nsrc > 3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record has too many sources",
        ));
    }
    let has_dest = flags & 0x80 != 0;
    let has_branch = flags & 0x40 != 0;
    let delta = unzigzag(read_varint_fast::<SWAR>(buf, pos)?);
    let pc = last_pc.wrapping_add(delta as u64);
    *last_pc = pc;
    let mut srcs = [Loc::mem(0); 3];
    for slot in srcs.iter_mut().take(nsrc) {
        *slot = read_loc_slice_impl::<SWAR>(buf, pos)?;
    }
    let dest = if has_dest {
        Some(read_loc_slice_impl::<SWAR>(buf, pos)?)
    } else {
        None
    };
    if has_branch {
        let Some(&taken) = buf.get(*pos) else {
            return Err(eof_mid_record());
        };
        *pos += 1;
        let target = read_varint_fast::<SWAR>(buf, pos)?;
        if class != OpClass::Branch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "branch outcome on a non-branch record",
            ));
        }
        return Ok(Some(TraceRecord::branch_outcome(
            pc,
            &srcs[..nsrc],
            taken != 0,
            target,
        )));
    }
    Ok(Some(TraceRecord::new(pc, class, &srcs[..nsrc], dest)))
}

/// Why a CRC-valid chunk payload failed to decode (possible only under a
/// checksum collision).
enum ChunkFault {
    /// The payload ended at a record boundary before `count` records.
    Short,
    /// A record failed to decode.
    Bad(io::Error),
}

/// Outcome of batch-decoding one chunk payload.
struct ChunkDecode {
    /// Records appended to the batch.
    delivered: u64,
    /// Records decoded, including discarded duplicates.
    decoded: u64,
    /// Set when the payload did not yield `count` records.
    fault: Option<ChunkFault>,
}

/// Decodes `count` records of a CRC-valid chunk payload into `out`,
/// skipping the first `discard` (already delivered by an overlapping
/// frame). Trailing payload bytes beyond `count` records are ignored,
/// exactly as the per-record path ignores them. `swar` selects the varint
/// kernel (both decode identically; the scalar one is the baseline).
fn decode_chunk_payload(
    payload: &[u8],
    count: u64,
    discard: u64,
    out: &mut Vec<TraceRecord>,
    swar: bool,
) -> ChunkDecode {
    if swar {
        decode_chunk_payload_impl::<true>(payload, count, discard, out)
    } else {
        decode_chunk_payload_impl::<false>(payload, count, discard, out)
    }
}

fn decode_chunk_payload_impl<const SWAR: bool>(
    payload: &[u8],
    count: u64,
    discard: u64,
    out: &mut Vec<TraceRecord>,
) -> ChunkDecode {
    let mut pos = 0usize;
    // The pc-delta chain restarts at every chunk.
    let mut last_pc = 0u64;
    let mut decoded = 0u64;
    let mut delivered = 0u64;
    while decoded < count {
        match decode_record_slice_impl::<SWAR>(payload, &mut pos, &mut last_pc) {
            Ok(Some(record)) => {
                decoded += 1;
                if decoded > discard {
                    out.push(record);
                    delivered += 1;
                }
            }
            Ok(None) => {
                return ChunkDecode {
                    delivered,
                    decoded,
                    fault: Some(ChunkFault::Short),
                }
            }
            Err(e) => {
                return ChunkDecode {
                    delivered,
                    decoded,
                    fault: Some(ChunkFault::Bad(e)),
                }
            }
        }
    }
    ChunkDecode {
        delivered,
        decoded,
        fault: None,
    }
}

/// Streaming writer for the binary trace format.
///
/// [`TraceWriter::new`] writes the chunked, checksummed v2 format;
/// [`TraceWriter::v1`] writes the legacy unframed stream. Callers that need
/// buffering should wrap the writer in a [`std::io::BufWriter`]; a `&mut W`
/// can be passed wherever a `W: Write` is expected.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    version: u8,
    chunk_records: u64,
    chunk_buf: Vec<u8>,
    chunk_len: u64,
    last_pc: u64,
    records: u64,
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes a v2 header and returns a writer framing records into chunks
    /// of [`DEFAULT_CHUNK_RECORDS`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(out: W, segments: SegmentMap) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_chunk_records(out, segments, DEFAULT_CHUNK_RECORDS)
    }

    /// Like [`TraceWriter::new`] with an explicit chunk size (records per
    /// chunk). Smaller chunks bound the loss from a corrupt region more
    /// tightly at a little more framing overhead.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn with_chunk_records(
        mut out: W,
        segments: SegmentMap,
        chunk_records: u64,
    ) -> io::Result<TraceWriter<W>> {
        assert!(chunk_records > 0, "chunk size must be positive");
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION_V2])?;
        write_varint(&mut out, segments.heap_base())?;
        write_varint(&mut out, segments.stack_floor())?;
        Ok(TraceWriter {
            out,
            version: VERSION_V2,
            chunk_records,
            chunk_buf: Vec::new(),
            chunk_len: 0,
            last_pc: 0,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Writes a legacy v1 (unframed) header and returns a v1 writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn v1(mut out: W, segments: SegmentMap) -> io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION_V1])?;
        write_varint(&mut out, segments.heap_base())?;
        write_varint(&mut out, segments.stack_floor())?;
        Ok(TraceWriter {
            out,
            version: VERSION_V1,
            chunk_records: 0,
            chunk_buf: Vec::new(),
            chunk_len: 0,
            last_pc: 0,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &TraceRecord) -> io::Result<()> {
        if self.version == VERSION_V1 {
            self.scratch.clear();
            encode_record(&mut self.scratch, record, &mut self.last_pc);
            self.out.write_all(&self.scratch)?;
            self.records += 1;
            return Ok(());
        }
        encode_record(&mut self.chunk_buf, record, &mut self.last_pc);
        self.chunk_len += 1;
        self.records += 1;
        if self.chunk_len == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Writes the buffered chunk (if any) with its framing.
    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_len == 0 {
            return Ok(());
        }
        let first_index = self.records - self.chunk_len;
        write_chunk_frame(&mut self.out, first_index, self.chunk_len, &self.chunk_buf)?;
        self.chunk_buf.clear();
        self.chunk_len = 0;
        // Each chunk decodes independently: restart the pc-delta chain.
        self.last_pc = 0;
        Ok(())
    }

    /// Flushes (writing the final chunk and end-of-stream trailer for v2)
    /// and returns the number of records written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<u64> {
        if self.version == VERSION_V2 {
            self.flush_chunk()?;
            // Trailer: total record count, zero records, empty payload.
            write_chunk_frame(&mut self.out, self.records, 0, &[])?;
        }
        self.out.flush()?;
        Ok(self.records)
    }
}

/// Writes one framed chunk: sync marker, header varints, CRC, payload.
fn write_chunk_frame<W: Write>(
    mut out: W,
    first_index: u64,
    count: u64,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = Vec::with_capacity(3 * 10);
    // Vec writes are infallible.
    let _ = write_varint(&mut header, first_index);
    let _ = write_varint(&mut header, count);
    let _ = write_varint(&mut header, payload.len() as u64);
    let mut crc = Crc32::new();
    crc.update(&header);
    crc.update(payload);
    out.write_all(&SYNC_MARKER)?;
    out.write_all(&header)?;
    out.write_all(&crc.finish().to_le_bytes())?;
    out.write_all(payload)
}

/// Damage tallies from a [`TraceReader`] (all zero for a clean stream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records successfully decoded and yielded.
    pub records_read: u64,
    /// Records known to be lost to corruption or truncation. Exact
    /// whenever a later chunk (or the trailer) survives to re-anchor the
    /// record index; a destroyed tail with no trailer is not counted
    /// because its size is unknowable.
    pub records_skipped: u64,
    /// Chunks whose CRC check failed.
    pub chunks_skipped: u64,
    /// Chunks dropped because their records were already delivered
    /// (duplicated frames).
    pub duplicate_chunks: u64,
    /// Times the reader had to scan forward for a sync marker.
    pub resyncs: u64,
    /// Bytes discarded while scanning.
    pub bytes_skipped: u64,
}

/// Buffered byte source for chunk parsing: supports peeking at unconsumed
/// bytes (so a failed parse can rescan them) while tracking the absolute
/// stream offset.
///
/// Two modes share one interface. In reader mode, bytes are pulled from
/// `inner` into `buf` on demand. In zero-copy mode (`slice` set — the
/// mmap'd backend), the entire input is already resident: `buffered()`
/// borrows straight out of the shared region, `fill_to` never copies, and
/// `inner` is never read.
#[derive(Debug)]
pub(crate) struct ByteStream<R: Read> {
    inner: R,
    /// Whole-input in-memory region for the zero-copy mode.
    slice: Option<SharedBytes>,
    buf: Vec<u8>,
    start: usize,
    offset: u64,
    eof: bool,
}

impl<R: Read> ByteStream<R> {
    pub(crate) fn new(inner: R) -> ByteStream<R> {
        ByteStream {
            inner,
            slice: None,
            buf: Vec::new(),
            start: 0,
            offset: 0,
            eof: false,
        }
    }

    /// Zero-copy mode over `slice`; `inner` is retained only to satisfy
    /// the type and is never read.
    pub(crate) fn with_slice(inner: R, slice: SharedBytes) -> ByteStream<R> {
        ByteStream {
            inner,
            slice: Some(slice),
            buf: Vec::new(),
            start: 0,
            offset: 0,
            eof: true,
        }
    }

    fn available(&self) -> usize {
        match &self.slice {
            Some(bytes) => bytes.len() - self.start,
            None => self.buf.len() - self.start,
        }
    }

    fn buffered(&self) -> &[u8] {
        match &self.slice {
            Some(bytes) => &bytes[self.start..],
            None => &self.buf[self.start..],
        }
    }

    /// Tries to buffer at least `want` unconsumed bytes; stops early at
    /// end-of-input. Returns the bytes now available. In zero-copy mode
    /// everything is already available, so this never reads.
    fn fill_to(&mut self, want: usize) -> io::Result<usize> {
        if self.slice.is_some() {
            return Ok(self.available());
        }
        while self.available() < want && !self.eof {
            self.compact();
            let old_len = self.buf.len();
            self.buf.resize(old_len + 8192, 0);
            let n = self.inner.read(&mut self.buf[old_len..])?;
            self.buf.truncate(old_len + n);
            if n == 0 {
                self.eof = true;
            }
        }
        Ok(self.available())
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.available());
        self.start += n;
        self.offset += n as u64;
    }

    fn compact(&mut self) {
        if self.slice.is_some() {
            return;
        }
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl<R: Read> Read for ByteStream<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.available() == 0 {
            if self.eof {
                return Ok(0);
            }
            let n = self.inner.read(out)?;
            if n == 0 {
                self.eof = true;
            }
            self.offset += n as u64;
            return Ok(n);
        }
        let n = out.len().min(self.available());
        out[..n].copy_from_slice(&self.buffered()[..n]);
        self.consume(n);
        Ok(n)
    }
}

/// Outcome of attempting to parse one chunk at the current position.
enum ChunkParse {
    /// A CRC-valid data chunk, still unconsumed in the input buffer:
    /// `buffered()[header_len..frame_len]` is the payload. The caller
    /// decodes (or copies) it in place, then consumes `frame_len`.
    Chunk {
        first_index: u64,
        count: u64,
        header_len: usize,
        frame_len: usize,
    },
    /// The CRC-valid end-of-stream trailer.
    Trailer { total: u64 },
    /// Clean end of input at a chunk boundary.
    End,
    /// The input ended before the chunk did.
    Truncated,
    /// The next bytes are not a sync marker.
    BadSync,
    /// Marker found but the header fields are nonsense.
    BadHeader(&'static str),
    /// Frame intact but the checksum disagrees.
    BadCrc { stored: u32, computed: u32 },
    /// The chunk tripped a resource-governor limit. Terminal even in
    /// recovery mode: a declared length past the cap is a policy
    /// rejection, not damage to scan past.
    LimitExceeded(LimitViolation),
}

/// Streaming reader for the binary trace format (v1 and v2).
///
/// Iterates over `Result<TraceRecord, TraceError>`; iteration ends at a
/// clean end-of-stream. A reader opened with [`TraceReader::new`] stops at
/// the first fault with a context-carrying [`TraceError`]; one opened with
/// [`TraceReader::with_recovery`] resynchronizes past damage in v2 streams
/// and tallies the loss in [`TraceReader::recovery_stats`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: ByteStream<R>,
    segments: SegmentMap,
    version: u8,
    recover: bool,
    done: bool,
    /// v1 decode state.
    last_pc: u64,
    /// Records delivered so far (also: index of the next record).
    delivered: u64,
    /// v2: payload of the chunk currently being decoded.
    payload: io::Cursor<Vec<u8>>,
    payload_last_pc: u64,
    /// v2: records remaining in the current chunk.
    payload_remaining: u64,
    /// v2: records at the head of the current chunk to decode and drop
    /// (already delivered from an earlier copy of an overlapping frame).
    payload_discard: u64,
    /// v2: ordinal of the chunk being read.
    chunk_ordinal: u64,
    /// v2: next expected record index (delivered + known-skipped).
    pos: u64,
    stats: RecoveryStats,
    total_written: Option<u64>,
    /// Block-decode straight from the stream buffer (default); false
    /// selects the legacy per-record pull path.
    batched: bool,
    /// Decoded records waiting to be served.
    batch: Vec<TraceRecord>,
    /// Cursor into `batch`.
    batch_pos: usize,
    /// Fault to surface once the records batched ahead of it are served.
    pending_err: Option<TraceError>,
    /// SWAR varint kernel in the block decoder (default); false selects
    /// the scalar kernel retained as baseline and differential oracle.
    swar: bool,
    /// Resource caps enforced while decoding (generous by default).
    governor: ResourceGovernor,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header; faults fail the iteration at the
    /// first error.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the magic or version is wrong or the
    /// header is unreadable.
    pub fn new(input: R) -> Result<TraceReader<R>, TraceError> {
        TraceReader::open(input, false)
    }

    /// Like [`TraceReader::new`], but damage in a v2 stream is skipped by
    /// scanning to the next sync marker instead of failing. The loss is
    /// tallied in [`TraceReader::recovery_stats`]. (v1 streams have no
    /// sync markers, so recovery cannot resume them; their faults still
    /// end the iteration with an error.)
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the magic or version is wrong or the
    /// header is unreadable; recovery starts only after a valid header.
    pub fn with_recovery(input: R) -> Result<TraceReader<R>, TraceError> {
        TraceReader::open(input, true)
    }

    fn open(input: R, recover: bool) -> Result<TraceReader<R>, TraceError> {
        TraceReader::open_stream(ByteStream::new(input), recover)
    }

    pub(crate) fn open_stream(
        mut input: ByteStream<R>,
        recover: bool,
    ) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic).map_err(|e| {
            let kind = if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceErrorKind::Truncated
            } else {
                TraceErrorKind::Io(e)
            };
            TraceError::new(kind, 0, 0)
        })?;
        if &magic[..4] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&magic[..4]);
            return Err(TraceError::new(TraceErrorKind::BadMagic(found), 0, 0));
        }
        let version = magic[4];
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(TraceError::new(
                TraceErrorKind::UnsupportedVersion(version),
                4,
                0,
            ));
        }
        let heap_base =
            read_varint(&mut input).map_err(|e| TraceError::new(io_to_kind(e), input.offset, 0))?;
        let stack_floor =
            read_varint(&mut input).map_err(|e| TraceError::new(io_to_kind(e), input.offset, 0))?;
        // A flipped bit in the header can invert the segment boundaries;
        // that is corruption, not a programming error.
        if heap_base > stack_floor {
            return Err(TraceError::new(
                TraceErrorKind::Corrupt("segment boundaries are inverted".into()),
                input.offset,
                0,
            ));
        }
        Ok(TraceReader {
            input,
            segments: SegmentMap::new(heap_base, stack_floor),
            version,
            recover,
            done: false,
            last_pc: 0,
            delivered: 0,
            payload: io::Cursor::new(Vec::new()),
            payload_last_pc: 0,
            payload_remaining: 0,
            payload_discard: 0,
            chunk_ordinal: 0,
            pos: 0,
            stats: RecoveryStats::default(),
            total_written: None,
            batched: true,
            batch: Vec::new(),
            batch_pos: 0,
            pending_err: None,
            swar: true,
            governor: ResourceGovernor::default(),
        })
    }

    /// Installs a resource governor enforcing caps on record counts,
    /// allocations, declared lengths, decode bytes, and wall-clock time.
    /// Limit violations surface as terminal
    /// [`TraceErrorKind::LimitExceeded`] errors — never resynced past,
    /// even under [`TraceReader::with_recovery`].
    #[must_use]
    pub fn with_governor(mut self, governor: ResourceGovernor) -> TraceReader<R> {
        self.governor = governor;
        self
    }

    /// The resource governor in effect (lets callers inspect
    /// [`ResourceGovernor::peak_alloc`] after a decode).
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    /// Switches this reader to the legacy per-record decode path (one
    /// buffered read per field instead of block decodes straight from the
    /// stream buffer). Both paths decode the same streams to the same
    /// records with the same faults; this one is retained as the
    /// benchmark baseline and as a differential-testing oracle for the
    /// block decoder.
    #[must_use]
    pub fn with_per_record_decode(mut self) -> TraceReader<R> {
        self.batched = false;
        self
    }

    /// Switches the block decoder to the scalar varint kernel (the
    /// pre-SWAR production path). Both kernels decode the same streams to
    /// the same records with the same faults; this one is retained as the
    /// benchmark baseline and a differential-testing oracle for the SWAR
    /// kernel.
    #[must_use]
    pub fn with_scalar_block_decode(mut self) -> TraceReader<R> {
        self.swar = false;
        self
    }

    /// The segment map recorded in the trace header.
    pub fn segment_map(&self) -> SegmentMap {
        self.segments
    }

    /// The format version declared by the stream (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Damage tallies so far (all zero for a clean stream).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Total records the writer claims to have written, once the
    /// end-of-stream trailer has been reached (v2 only).
    pub fn records_written(&self) -> Option<u64> {
        self.total_written
    }

    /// Bytes consumed from the underlying stream so far (header included).
    /// Lets drivers report decode throughput in MB/s without wrapping the
    /// reader in a counting adapter.
    pub fn bytes_read(&self) -> u64 {
        self.input.offset
    }

    /// Records delivered to the caller so far.
    pub fn records_read(&self) -> u64 {
        self.delivered
    }

    /// Decodes every remaining record into a shared immutable slice.
    ///
    /// This is the sweep engine's decode-once entry point: the returned
    /// `Arc<[TraceRecord]>` derefs to `&[TraceRecord]`, so any number of
    /// concurrent analyzer passes can walk one decode without copying or
    /// re-reading the stream. The segment map rides along because every
    /// analysis config derived from the trace needs it.
    ///
    /// # Errors
    ///
    /// Returns the first decode fault, exactly as iteration would (wrap
    /// the reader via [`TraceReader::with_recovery`] first to skip damaged
    /// chunks instead).
    pub fn into_shared(mut self) -> Result<(Arc<[TraceRecord]>, SegmentMap), TraceError> {
        let segments = self.segment_map();
        let mut records = Vec::new();
        while self.read_block(&mut records)? > 0 {}
        Ok((Arc::from(records), segments))
    }

    /// Decodes the next block of records, appending them to `out`.
    /// Returns how many were appended; `Ok(0)` means a clean end of
    /// stream.
    ///
    /// This is the hot-loop entry point: records arrive in chunk-sized
    /// batches decoded straight from the stream buffer, ready to feed
    /// slice-based consumers without per-record iterator dispatch.
    /// Interleaving with iterator use is fine — both drain the same
    /// internal batch in order.
    ///
    /// # Errors
    ///
    /// Faults surface exactly where iteration would surface them: the
    /// records decoded ahead of a fault are appended (and counted in
    /// [`TraceReader::records_read`]) before the error is returned.
    pub fn read_block(&mut self, out: &mut Vec<TraceRecord>) -> Result<usize, TraceError> {
        if self.done {
            return Ok(0);
        }
        loop {
            if self.batch_pos < self.batch.len() {
                let n = self.batch.len() - self.batch_pos;
                out.extend_from_slice(&self.batch[self.batch_pos..]);
                self.batch_pos = self.batch.len();
                self.delivered += n as u64;
                self.stats.records_read += n as u64;
                if let Err(e) = self.charge_delivered(n as u64) {
                    self.done = true;
                    return Err(e);
                }
                return Ok(n);
            }
            if let Some(e) = self.pending_err.take() {
                self.done = true;
                return Err(e);
            }
            if !self.batched {
                return self.read_block_per_record(out);
            }
            // Decode straight into the caller's buffer — no intermediate
            // batch, no copy.
            let start = out.len();
            match self.refill_into(out) {
                Ok(true) => {
                    let n = out.len() - start;
                    if n > 0 {
                        self.delivered += n as u64;
                        self.stats.records_read += n as u64;
                        if let Err(e) = self.charge_delivered(n as u64) {
                            self.done = true;
                            return Err(e);
                        }
                        return Ok(n);
                    }
                    // The refill produced only a pending fault; loop to
                    // surface it.
                }
                Ok(false) => {
                    self.done = true;
                    return Ok(0);
                }
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            }
        }
    }

    /// Legacy-path block fill: pulls records one at a time.
    fn read_block_per_record(&mut self, out: &mut Vec<TraceRecord>) -> Result<usize, TraceError> {
        let mut n = 0usize;
        while n < BATCH_RECORDS {
            let next = if self.version == VERSION_V1 {
                self.next_v1()
            } else {
                self.next_v2()
            };
            match next {
                Ok(Some(record)) => {
                    out.push(record);
                    n += 1;
                }
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            }
        }
        Ok(n)
    }

    fn error(&self, kind: TraceErrorKind) -> TraceError {
        self.error_at(kind, self.delivered)
    }

    fn error_at(&self, kind: TraceErrorKind, record_index: u64) -> TraceError {
        let err = TraceError::new(kind, self.input.offset, record_index);
        if self.version == VERSION_V2 {
            err.in_chunk(self.chunk_ordinal)
        } else {
            err
        }
    }

    /// Checks the cumulative decode-byte budget and the wall-clock
    /// deadline. Called once per chunk parse, per v1 buffer refill, and
    /// per resync scan round — the three places an adversarial stream can
    /// make the reader consume input without delivering records.
    fn check_budgets(&self) -> Result<(), TraceError> {
        if let Err(v) = self.governor.check_decode_bytes(self.input.offset) {
            return Err(self.error(TraceErrorKind::LimitExceeded(v)));
        }
        if let Err(v) = self.governor.check_deadline() {
            return Err(self.error(TraceErrorKind::LimitExceeded(v)));
        }
        Ok(())
    }

    /// Charges `n` delivered records against the governor's record budget.
    fn charge_delivered(&mut self, n: u64) -> Result<(), TraceError> {
        match self.governor.charge_records(n) {
            Ok(()) => Ok(()),
            Err(v) => Err(self.error(TraceErrorKind::LimitExceeded(v))),
        }
    }

    /// v1: decode the next record straight off the stream.
    fn next_v1(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        self.check_budgets()?;
        match decode_record(&mut self.input, &mut self.last_pc) {
            Ok(Some(record)) => {
                self.delivered += 1;
                self.stats.records_read += 1;
                self.charge_delivered(1)?;
                Ok(Some(record))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(self.error(io_to_kind(e))),
        }
    }

    /// Attempts to parse one chunk frame at the current stream position.
    /// Failed parses consume nothing (so recovery can rescan the bytes);
    /// trailers are consumed, and a data chunk's frame is left buffered
    /// for the caller to decode in place and consume.
    fn try_parse_chunk(&mut self) -> io::Result<ChunkParse> {
        if let Err(v) = self.governor.check_decode_bytes(self.input.offset) {
            return Ok(ChunkParse::LimitExceeded(v));
        }
        if let Err(v) = self.governor.check_deadline() {
            return Ok(ChunkParse::LimitExceeded(v));
        }
        let available = self.input.fill_to(SYNC_MARKER.len())?;
        if available == 0 {
            return Ok(ChunkParse::End);
        }
        if available < SYNC_MARKER.len() {
            return Ok(ChunkParse::Truncated);
        }
        if self.input.buffered()[..SYNC_MARKER.len()] != SYNC_MARKER {
            return Ok(ChunkParse::BadSync);
        }
        self.input.fill_to(MAX_HEADER_LEN)?;
        let header = &self.input.buffered()[SYNC_MARKER.len()..];
        let mut cursor = header;
        let Ok(first_index) = read_varint(&mut cursor) else {
            return Ok(if header.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("record index varint")
            });
        };
        let Ok(count) = read_varint(&mut cursor) else {
            return Ok(if cursor.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("record count varint")
            });
        };
        let Ok(payload_len) = read_varint(&mut cursor) else {
            return Ok(if cursor.len() < 10 {
                ChunkParse::Truncated
            } else {
                ChunkParse::BadHeader("payload length varint")
            });
        };
        let varint_len = header.len() - cursor.len();
        if payload_len > MAX_PAYLOAD_LEN {
            return Ok(ChunkParse::BadHeader("payload length out of range"));
        }
        // Governor checks run on the *declared* length, before any byte of
        // the payload is buffered: a hostile header cannot make us allocate.
        if let Err(v) = self
            .governor
            .check_declared_len("chunk payload length", payload_len)
        {
            return Ok(ChunkParse::LimitExceeded(v));
        }
        if let Err(v) = self
            .governor
            .check_declared_len("chunk record count", count)
        {
            return Ok(ChunkParse::LimitExceeded(v));
        }
        if count == 0 && payload_len != 0 {
            return Ok(ChunkParse::BadHeader("trailer with payload"));
        }
        // Every record costs at least 3 bytes (class, flags, pc delta).
        if count > 0 && count.saturating_mul(3) > payload_len {
            return Ok(ChunkParse::BadHeader("record count exceeds payload"));
        }
        if cursor.len() < 4 {
            return Ok(ChunkParse::Truncated);
        }
        let mut stored = [0u8; 4];
        stored.copy_from_slice(&cursor[..4]);
        let stored = u32::from_le_bytes(stored);
        let header_len = SYNC_MARKER.len() + varint_len + 4;
        let frame_len = header_len + payload_len as usize;
        if let Err(v) = self.governor.charge_alloc("chunk frame", frame_len as u64) {
            return Ok(ChunkParse::LimitExceeded(v));
        }
        if self.input.fill_to(frame_len)? < frame_len {
            return Ok(ChunkParse::Truncated);
        }
        let bytes = self.input.buffered();
        let mut crc = Crc32::new();
        crc.update(&bytes[SYNC_MARKER.len()..SYNC_MARKER.len() + varint_len]);
        crc.update(&bytes[header_len..frame_len]);
        let computed = crc.finish();
        if computed != stored {
            return Ok(ChunkParse::BadCrc { stored, computed });
        }
        if count == 0 {
            self.input.consume(frame_len);
            return Ok(ChunkParse::Trailer { total: first_index });
        }
        Ok(ChunkParse::Chunk {
            first_index,
            count,
            header_len,
            frame_len,
        })
    }

    /// Recovery: drop one byte, then scan forward to the next candidate
    /// sync marker (or end of input). The governor's decode-byte budget
    /// and deadline bound the scan — an adversarial stream cannot make
    /// recovery walk an unbounded garbage region for free.
    fn resync(&mut self) -> Result<(), TraceError> {
        self.stats.resyncs += 1;
        self.input.consume(1);
        self.stats.bytes_skipped += 1;
        loop {
            self.check_budgets()?;
            let bytes = self.input.buffered();
            if let Some(at) = find_marker(bytes) {
                self.input.consume(at);
                self.stats.bytes_skipped += at as u64;
                return Ok(());
            }
            // No marker: all but the last 7 bytes (a possible marker
            // prefix) are garbage.
            let keep = bytes.len().min(SYNC_MARKER.len() - 1);
            let drop = bytes.len() - keep;
            self.input.consume(drop);
            self.stats.bytes_skipped += drop as u64;
            let before = self.input.available();
            let filled = self
                .input
                .fill_to(before + 8192)
                .map_err(|e| self.error(TraceErrorKind::Io(e)))?;
            if filled == before {
                // End of input: nothing left to scan.
                let rest = self.input.available();
                self.input.consume(rest);
                self.stats.bytes_skipped += rest as u64;
                return Ok(());
            }
        }
    }

    /// Reconciles a parsed frame's record-index range against what has
    /// already been delivered. Returns how many leading records to decode
    /// and drop (already delivered by an overlapping frame), or `None`
    /// when the whole frame is a duplicate.
    fn reconcile_chunk(&mut self, first_index: u64, count: u64) -> Option<u64> {
        self.chunk_ordinal += 1;
        if first_index >= self.pos {
            // A gap means the records in between were destroyed.
            self.stats.records_skipped += first_index - self.pos;
            self.pos = first_index;
            Some(0)
        } else {
            let overlap = self.pos - first_index;
            self.stats.duplicate_chunks += 1;
            if overlap >= count {
                // Every record in this frame was already delivered.
                return None;
            }
            Some(overlap)
        }
    }

    /// Installs a freshly parsed chunk for per-record decoding.
    fn install_chunk(&mut self, first_index: u64, count: u64, payload: Vec<u8>) {
        let Some(discard) = self.reconcile_chunk(first_index, count) else {
            return;
        };
        self.payload_discard = discard;
        self.payload = io::Cursor::new(payload);
        self.payload_last_pc = 0;
        self.payload_remaining = count;
    }

    /// Refills the internal batch with the next decoded block.
    ///
    /// `Ok(true)` means there is something to serve — batched records, a
    /// pending fault, or both; `Ok(false)` is a clean end of stream.
    fn refill_batch(&mut self) -> Result<bool, TraceError> {
        self.batch_pos = 0;
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        let result = self.refill_into(&mut batch);
        self.batch = batch;
        result
    }

    /// Decodes the next block straight into `out`, the shared engine
    /// behind both the iterator's internal batch and
    /// [`TraceReader::read_block`]'s caller-owned buffer. The caller
    /// accounts the appended records into `delivered`; a fault lands in
    /// `pending_err`, indexed past whatever this refill appended.
    fn refill_into(&mut self, out: &mut Vec<TraceRecord>) -> Result<bool, TraceError> {
        let base = out.len();
        if self.version == VERSION_V1 {
            self.refill_v1(out, base)
        } else {
            self.refill_v2(out, base)
        }
    }

    /// v1 block decode: buffer a large run of input and decode records
    /// straight out of the slice until the batch fills or the safe region
    /// runs out.
    fn refill_v1(&mut self, out: &mut Vec<TraceRecord>, base: usize) -> Result<bool, TraceError> {
        loop {
            self.check_budgets()?;
            let avail = self
                .input
                .fill_to(V1_FILL_BYTES)
                .map_err(|e| self.error(TraceErrorKind::Io(e)))?;
            if avail == 0 {
                return Ok(out.len() > base);
            }
            let at_eof = self.input.eof;
            let bytes = self.input.buffered();
            // Decode only records that provably fit in the buffer: stop
            // MAX_RECORD_LEN short of the end of a non-final buffer, so
            // a decode fault can only mean corruption, never a partial
            // refill.
            let stop = if at_eof {
                bytes.len()
            } else {
                bytes.len() - MAX_RECORD_LEN
            };
            let mut pos = 0usize;
            let mut fault = None;
            let mut clean_end = false;
            while out.len() - base < BATCH_RECORDS && pos < stop {
                let before = pos;
                let decoded = if self.swar {
                    decode_record_slice_swar(bytes, &mut pos, &mut self.last_pc)
                } else {
                    decode_record_slice(bytes, &mut pos, &mut self.last_pc)
                };
                match decoded {
                    Ok(Some(record)) => out.push(record),
                    Ok(None) => {
                        // At most one dangling byte at end of input: the
                        // stream ends cleanly at a record boundary, as
                        // the per-record decoder treats it.
                        clean_end = true;
                        pos = bytes.len();
                        break;
                    }
                    Err(e) => {
                        pos = before;
                        fault = Some(e);
                        break;
                    }
                }
            }
            self.input.consume(pos);
            if let Some(e) = fault {
                let index = self.delivered + (out.len() - base) as u64;
                self.pending_err = Some(self.error_at(io_to_kind(e), index));
                return Ok(true);
            }
            if out.len() - base >= BATCH_RECORDS || clean_end {
                return Ok(out.len() > base);
            }
            // Everything safe to decode was decoded: buffer more input.
        }
    }

    /// v2 block decode: parse the next CRC-valid chunk and decode its
    /// whole payload in place — straight out of the stream buffer, no
    /// copy — into the batch.
    fn refill_v2(&mut self, out: &mut Vec<TraceRecord>, base: usize) -> Result<bool, TraceError> {
        loop {
            let parsed = match self.try_parse_chunk() {
                Ok(parsed) => parsed,
                Err(e) => return Err(self.error(TraceErrorKind::Io(e))),
            };
            match parsed {
                ChunkParse::Chunk {
                    first_index,
                    count,
                    header_len,
                    frame_len,
                } => {
                    let Some(discard) = self.reconcile_chunk(first_index, count) else {
                        self.input.consume(frame_len);
                        continue;
                    };
                    let payload = &self.input.buffered()[header_len..frame_len];
                    let outcome = decode_chunk_payload(payload, count, discard, out, self.swar);
                    self.input.consume(frame_len);
                    self.pos += outcome.delivered;
                    let Some(fault) = outcome.fault else {
                        return Ok(true);
                    };
                    // A CRC-valid chunk that does not decode (possible
                    // only under checksum collision): count the declared
                    // remainder as lost.
                    let kind = match fault {
                        ChunkFault::Short => TraceErrorKind::Corrupt(
                            "chunk payload shorter than its record count".into(),
                        ),
                        ChunkFault::Bad(e) => io_to_kind(e),
                    };
                    if !self.recover {
                        let index = self.delivered + (out.len() - base) as u64;
                        self.pending_err = Some(self.error_at(kind, index));
                        return Ok(true);
                    }
                    let remaining = count - outcome.decoded;
                    let discard_left = discard.saturating_sub(outcome.decoded);
                    let lost = remaining - discard_left.min(remaining);
                    self.stats.records_skipped += lost;
                    self.pos += lost;
                    if out.len() > base {
                        return Ok(true);
                    }
                }
                ChunkParse::Trailer { total } => {
                    self.total_written = Some(total);
                    if total > self.pos {
                        // The tail before the trailer was destroyed.
                        self.stats.records_skipped += total - self.pos;
                        self.pos = total;
                    }
                    return Ok(false);
                }
                ChunkParse::End => {
                    if self.recover {
                        // Truncated before the trailer: the tail loss is
                        // unknowable, so it is not counted.
                        return Ok(false);
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::Truncated => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::BadSync => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt("expected chunk sync marker".into()))
                    );
                }
                ChunkParse::BadHeader(what) => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt(format!("bad chunk header: {what}")))
                    );
                }
                ChunkParse::BadCrc { stored, computed } => {
                    self.stats.chunks_skipped += 1;
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::ChecksumMismatch { stored, computed }));
                }
                // Terminal even in recovery mode: limit violations are
                // policy rejections, not damage to scan past.
                ChunkParse::LimitExceeded(v) => {
                    return Err(self.error(TraceErrorKind::LimitExceeded(v)));
                }
            }
        }
    }

    /// v2: decode the next record, advancing through chunks as needed.
    fn next_v2(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            while self.payload_remaining > 0 {
                match decode_record(&mut self.payload, &mut self.payload_last_pc) {
                    Ok(Some(record)) => {
                        self.payload_remaining -= 1;
                        if self.payload_discard > 0 {
                            self.payload_discard -= 1;
                            continue;
                        }
                        self.delivered += 1;
                        self.pos += 1;
                        self.stats.records_read += 1;
                        self.charge_delivered(1)?;
                        return Ok(Some(record));
                    }
                    // A CRC-valid chunk that does not decode (possible
                    // only under checksum collision): count the declared
                    // remainder as lost.
                    Ok(None) => {
                        let why = TraceErrorKind::Corrupt(
                            "chunk payload shorter than its record count".into(),
                        );
                        if !self.recover {
                            return Err(self.error(why));
                        }
                        let lost = self.payload_remaining
                            - self.payload_discard.min(self.payload_remaining);
                        self.stats.records_skipped += lost;
                        self.pos += lost;
                        self.payload_remaining = 0;
                        self.payload_discard = 0;
                    }
                    Err(e) => {
                        if !self.recover {
                            return Err(self.error(io_to_kind(e)));
                        }
                        let lost = self.payload_remaining
                            - self.payload_discard.min(self.payload_remaining);
                        self.stats.records_skipped += lost;
                        self.pos += lost;
                        self.payload_remaining = 0;
                        self.payload_discard = 0;
                    }
                }
            }
            let parsed = match self.try_parse_chunk() {
                Ok(parsed) => parsed,
                Err(e) => return Err(self.error(TraceErrorKind::Io(e))),
            };
            match parsed {
                ChunkParse::Chunk {
                    first_index,
                    count,
                    header_len,
                    frame_len,
                } => {
                    let payload = self.input.buffered()[header_len..frame_len].to_vec();
                    self.input.consume(frame_len);
                    self.install_chunk(first_index, count, payload);
                }
                ChunkParse::Trailer { total } => {
                    self.total_written = Some(total);
                    if total > self.pos {
                        // The tail before the trailer was destroyed.
                        self.stats.records_skipped += total - self.pos;
                        self.pos = total;
                    }
                    return Ok(None);
                }
                ChunkParse::End => {
                    if self.recover {
                        // Truncated before the trailer: the tail loss is
                        // unknowable, so it is not counted.
                        return Ok(None);
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::Truncated => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::Truncated));
                }
                ChunkParse::BadSync => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt("expected chunk sync marker".into()))
                    );
                }
                ChunkParse::BadHeader(what) => {
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(
                        self.error(TraceErrorKind::Corrupt(format!("bad chunk header: {what}")))
                    );
                }
                ChunkParse::BadCrc { stored, computed } => {
                    self.stats.chunks_skipped += 1;
                    if self.recover {
                        self.resync_or_fail()?;
                        continue;
                    }
                    return Err(self.error(TraceErrorKind::ChecksumMismatch { stored, computed }));
                }
                // Terminal even in recovery mode.
                ChunkParse::LimitExceeded(v) => {
                    return Err(self.error(TraceErrorKind::LimitExceeded(v)));
                }
            }
        }
    }

    fn resync_or_fail(&mut self) -> Result<(), TraceError> {
        self.resync()
    }
}

/// Maps low-level decode errors to trace error kinds.
fn io_to_kind(e: io::Error) -> TraceErrorKind {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => TraceErrorKind::Truncated,
        io::ErrorKind::InvalidData => TraceErrorKind::Corrupt(e.to_string()),
        _ => TraceErrorKind::Io(e),
    }
}

/// Position of the first [`SYNC_MARKER`] in `bytes`, if any.
fn find_marker(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < SYNC_MARKER.len() {
        return None;
    }
    let mut at = 0;
    while at + SYNC_MARKER.len() <= bytes.len() {
        match bytes[at..].iter().position(|&b| b == SYNC_MARKER[0]) {
            Some(i) => at += i,
            None => return None,
        }
        if at + SYNC_MARKER.len() > bytes.len() {
            return None;
        }
        if bytes[at..at + SYNC_MARKER.len()] == SYNC_MARKER {
            return Some(at);
        }
        at += 1;
    }
    None
}

/// One chunk frame located by [`scan_chunks`]: its byte span within the
/// stream plus the header fields needed to validate and decode it.
#[derive(Debug, Clone, Copy)]
pub struct ChunkSpan {
    /// Byte offset of the frame's sync marker from the start of the input.
    pub offset: usize,
    /// Bytes of framing (marker, header varints, CRC) before the payload.
    pub header_len: usize,
    /// Total frame length including the payload.
    pub frame_len: usize,
    /// Absolute index of the frame's first record.
    pub first_index: u64,
    /// Records in the frame.
    pub count: u64,
}

/// Structural map of a pristine v2 byte stream, produced by
/// [`scan_chunks`] without touching any payload byte.
#[derive(Debug, Clone)]
pub struct ChunkScan {
    /// Segment boundaries from the file header.
    pub segments: SegmentMap,
    /// Data chunks in stream order. CRCs are *not* yet verified.
    pub chunks: Vec<ChunkSpan>,
    /// Total records declared by the trailer.
    pub total: u64,
}

/// Walks the frame structure of a complete in-memory v2 stream — headers
/// only, payloads untouched, CRCs unverified — and returns the chunk map
/// if and only if the stream is *pristine*: well-formed header, every
/// frame contiguous, record indexes exactly consecutive with no gaps or
/// overlaps, and a trailer whose total matches, ending exactly at the end
/// of input.
///
/// Returns `None` for anything else (v1 streams, damage, truncation,
/// overlapping frames). This is the admission test for the parallel
/// whole-file decode: a pristine stream decodes embarrassingly parallel
/// (the pc-delta chain restarts every chunk), anything less falls back to
/// the sequential reader, which owns the error and recovery semantics.
pub fn scan_chunks(bytes: &[u8]) -> Option<ChunkScan> {
    let mut pos = 0usize;
    if bytes.len() < 5 || &bytes[..4] != MAGIC || bytes[4] != VERSION_V2 {
        return None;
    }
    pos += 5;
    let heap_base = read_varint_slice(bytes, &mut pos).ok()?;
    let stack_floor = read_varint_slice(bytes, &mut pos).ok()?;
    if heap_base > stack_floor {
        return None;
    }
    let segments = SegmentMap::new(heap_base, stack_floor);
    let mut chunks = Vec::new();
    let mut next_index = 0u64;
    loop {
        if bytes.len() - pos < SYNC_MARKER.len()
            || bytes[pos..pos + SYNC_MARKER.len()] != SYNC_MARKER
        {
            return None;
        }
        let offset = pos;
        let mut cursor = pos + SYNC_MARKER.len();
        let first_index = read_varint_slice(bytes, &mut cursor).ok()?;
        let count = read_varint_slice(bytes, &mut cursor).ok()?;
        let payload_len = read_varint_slice(bytes, &mut cursor).ok()?;
        if payload_len > MAX_PAYLOAD_LEN {
            return None;
        }
        // CRC bytes follow the varints.
        if bytes.len() - cursor < 4 {
            return None;
        }
        let header_len = cursor + 4 - offset;
        let frame_len = header_len + payload_len as usize;
        if bytes.len() - offset < frame_len {
            return None;
        }
        if count == 0 {
            // Trailer: must declare exactly the records seen and end the
            // stream exactly.
            if payload_len != 0 || first_index != next_index || offset + frame_len != bytes.len() {
                return None;
            }
            return Some(ChunkScan {
                segments,
                chunks,
                total: next_index,
            });
        }
        if first_index != next_index || count.saturating_mul(3) > payload_len {
            return None;
        }
        next_index += count;
        chunks.push(ChunkSpan {
            offset,
            header_len,
            frame_len,
            first_index,
            count,
        });
        pos = offset + frame_len;
    }
}

/// CRC-checks and decodes one [`ChunkSpan`] out of `bytes`, appending its
/// records to `out`. Returns `false` on a CRC mismatch or a payload that
/// does not decode to exactly `count` records — the caller must then fall
/// back to the sequential reader for exact fault semantics.
pub fn decode_span(bytes: &[u8], span: &ChunkSpan, out: &mut Vec<TraceRecord>) -> bool {
    let Some(frame) = bytes.get(span.offset..span.offset + span.frame_len) else {
        return false;
    };
    let varints = &frame[SYNC_MARKER.len()..span.header_len - 4];
    let mut stored = [0u8; 4];
    stored.copy_from_slice(&frame[span.header_len - 4..span.header_len]);
    let stored = u32::from_le_bytes(stored);
    let payload = &frame[span.header_len..];
    let mut crc = Crc32::new();
    crc.update(varints);
    crc.update(payload);
    if crc.finish() != stored {
        return false;
    }
    let outcome = decode_chunk_payload(payload, span.count, 0, out, true);
    outcome.fault.is_none() && outcome.delivered == span.count
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        if self.done {
            return None;
        }
        if self.batched {
            loop {
                if self.batch_pos < self.batch.len() {
                    let record = self.batch[self.batch_pos];
                    self.batch_pos += 1;
                    self.delivered += 1;
                    self.stats.records_read += 1;
                    if let Err(e) = self.charge_delivered(1) {
                        self.done = true;
                        return Some(Err(e));
                    }
                    return Some(Ok(record));
                }
                if let Some(e) = self.pending_err.take() {
                    self.done = true;
                    return Some(Err(e));
                }
                match self.refill_batch() {
                    Ok(true) => {}
                    Ok(false) => {
                        self.done = true;
                        return None;
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
        }
        let next = if self.version == VERSION_V1 {
            self.next_v1()
        } else {
            self.next_v2()
        };
        match next {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TraceErrorKind;
    use crate::synthetic;

    fn encode(records: &[TraceRecord], segments: SegmentMap) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, segments).unwrap();
        for r in records {
            writer.write_record(r).unwrap();
        }
        let written = writer.finish().unwrap();
        assert_eq!(written, records.len() as u64);
        buf
    }

    fn round_trip(records: &[TraceRecord], segments: SegmentMap) -> Vec<TraceRecord> {
        let buf = encode(records, segments);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.segment_map(), segments);
        reader.map(|r| r.unwrap()).collect()
    }

    #[test]
    fn figure1_round_trips() {
        let records = synthetic::figure1();
        assert_eq!(round_trip(&records, SegmentMap::all_data()), records);
    }

    #[test]
    fn random_trace_round_trips() {
        let records = synthetic::random_trace(500, 42);
        let segments = SegmentMap::new(64, 1 << 20);
        assert_eq!(round_trip(&records, segments), records);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert!(round_trip(&[], SegmentMap::all_data()).is_empty());
    }

    #[test]
    fn into_shared_decodes_once_into_an_arena_slice() {
        let records = synthetic::random_trace(300, 11);
        let segments = SegmentMap::new(64, 1 << 20);
        let buf = encode(&records, segments);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let (shared, got_segments) = reader.into_shared().unwrap();
        assert_eq!(got_segments, segments);
        assert_eq!(&shared[..], &records[..]);
        // Shared handles alias the same allocation — the arena contract.
        let other = Arc::clone(&shared);
        assert!(std::ptr::eq(other.as_ptr(), shared.as_ptr()));
    }

    #[test]
    fn into_shared_surfaces_decode_faults() {
        let records = synthetic::random_trace(200, 13);
        let mut buf = encode(&records, SegmentMap::all_data());
        let mid = buf.len() / 2;
        buf[mid] ^= 0x20;
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.into_shared().is_err(), "corruption must surface");
    }

    #[test]
    fn multi_chunk_trace_round_trips() {
        let records = synthetic::random_trace(1000, 7);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        assert_eq!(reader.records_written(), Some(1000));
        assert_eq!(reader.recovery_stats().records_read, 1000);
        assert_eq!(reader.recovery_stats().records_skipped, 0);
    }

    #[test]
    fn v1_streams_remain_readable() {
        let records = synthetic::random_trace(300, 9);
        let segments = SegmentMap::new(64, 1 << 20);
        let mut buf = Vec::new();
        let mut writer = TraceWriter::v1(&mut buf, segments).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), 300);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.version(), 1);
        assert_eq!(reader.segment_map(), segments);
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOPE\x01xxxx"[..]).unwrap_err();
        assert!(matches!(err.kind(), TraceErrorKind::BadMagic(m) if m == b"NOPE"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(99);
        buf.extend_from_slice(&[0, 0]);
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(matches!(err.kind(), TraceErrorKind::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_record_reports_eof_error() {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data()).unwrap();
        writer
            .write_record(&TraceRecord::compute(
                0,
                OpClass::IntAlu,
                &[Loc::int(1)],
                Loc::int(2),
            ))
            .unwrap();
        writer.finish().unwrap();
        // Cut into the middle of the (only) data chunk.
        buf.truncate(buf.len() - 18);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 1);
        let err = results[0].as_ref().unwrap_err();
        assert!(
            matches!(err.kind(), TraceErrorKind::Truncated),
            "kind: {err}"
        );
        // The error names the position: past the 7-byte header, no records
        // decoded yet, inside the first chunk.
        assert!(err.byte_offset() >= 7, "offset {}", err.byte_offset());
        assert_eq!(err.record_index(), 0);
        assert_eq!(err.chunk(), Some(0));
    }

    #[test]
    fn corrupt_chunk_fails_strict_reads_with_checksum_context() {
        let records = synthetic::random_trace(200, 3);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        // Flip a byte inside the second chunk's payload.
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        assert!(marker_positions.len() >= 3);
        buf[marker_positions[1] + 40] ^= 0x10;
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        let err = results.last().unwrap().as_ref().unwrap_err();
        assert!(
            matches!(err.kind(), TraceErrorKind::ChecksumMismatch { .. }),
            "kind: {err}"
        );
        assert_eq!(err.record_index(), 64);
        assert_eq!(err.chunk(), Some(1));
        // 64 good records were delivered before the fault.
        assert_eq!(results.len(), 65);
        assert!(results[..64].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn recovery_skips_a_corrupt_chunk_and_counts_the_loss() {
        let records = synthetic::random_trace(256, 5);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Corrupt the second of four data chunks.
        buf[marker_positions[1] + 30] ^= 0xff;
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        let stats = reader.recovery_stats();
        assert_eq!(stats.records_read, 192);
        assert_eq!(stats.records_skipped, 64);
        assert_eq!(stats.chunks_skipped, 1);
        assert!(stats.resyncs >= 1);
        // The surviving records are exactly the other three chunks.
        let expected: Vec<_> = records[..64]
            .iter()
            .chain(&records[128..])
            .cloned()
            .collect();
        assert_eq!(got, expected);
        assert_eq!(reader.records_written(), Some(256));
    }

    #[test]
    fn recovery_counts_a_destroyed_tail_via_the_trailer() {
        let records = synthetic::random_trace(128, 11);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Destroy the last data chunk (between the last two markers).
        for b in &mut buf[marker_positions[1]..marker_positions[2]] {
            *b = 0x00;
        }
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records[..64]);
        let stats = reader.recovery_stats();
        assert_eq!(stats.records_read, 64);
        assert_eq!(stats.records_skipped, 64);
    }

    #[test]
    fn recovery_drops_duplicated_chunks() {
        let records = synthetic::random_trace(128, 13);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Duplicate the first data chunk in place.
        let first_chunk = buf[marker_positions[0]..marker_positions[1]].to_vec();
        let mut mutated = buf[..marker_positions[1]].to_vec();
        mutated.extend_from_slice(&first_chunk);
        mutated.extend_from_slice(&buf[marker_positions[1]..]);
        let mut reader = TraceReader::with_recovery(mutated.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        let stats = reader.recovery_stats();
        assert_eq!(stats.duplicate_chunks, 1);
        assert_eq!(stats.records_skipped, 0);
    }

    #[test]
    fn recovery_of_a_clean_stream_is_lossless() {
        let records = synthetic::random_trace(500, 17);
        let buf = encode(&records, SegmentMap::all_data());
        let mut reader = TraceReader::with_recovery(buf.as_slice()).unwrap();
        let got: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        assert_eq!(
            reader.recovery_stats(),
            RecoveryStats {
                records_read: 500,
                ..RecoveryStats::default()
            }
        );
    }

    #[test]
    fn strict_reader_reports_missing_trailer() {
        let records = synthetic::random_trace(64, 19);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        // Drop the trailer entirely.
        buf.truncate(*marker_positions.last().unwrap());
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 65);
        assert!(matches!(
            results[64].as_ref().unwrap_err().kind(),
            TraceErrorKind::Truncated
        ));
    }

    /// Drains a reader in place, returning delivered records and the
    /// terminal fault (if any). Stats stay readable on the reader.
    fn drain<R: io::Read>(reader: &mut TraceReader<R>) -> (Vec<TraceRecord>, Option<TraceError>) {
        let mut records = Vec::new();
        for item in reader.by_ref() {
            match item {
                Ok(r) => records.push(r),
                Err(e) => return (records, Some(e)),
            }
        }
        (records, None)
    }

    /// The SWAR block decoder, the scalar block decoder, and the legacy
    /// per-record decoder must agree on everything observable: records,
    /// fault kind/position, and stats.
    fn assert_paths_agree(bytes: &[u8], recover: bool) {
        let open = || {
            if recover {
                TraceReader::with_recovery(bytes)
            } else {
                TraceReader::new(bytes)
            }
        };
        // Header validation runs before the decode paths diverge; a
        // stream that does not open has nothing to compare.
        let (Ok(mut batched), Ok(scalar), Ok(legacy)) = (open(), open(), open()) else {
            assert!(open().is_err(), "open must fail deterministically");
            return;
        };
        let mut scalar = scalar.with_scalar_block_decode();
        let mut legacy = legacy.with_per_record_decode();
        let (b_records, b_err) = drain(&mut batched);
        let (s_records, s_err) = drain(&mut scalar);
        let (l_records, l_err) = drain(&mut legacy);
        assert_eq!(b_records, l_records, "decoded records diverge");
        assert_eq!(b_records, s_records, "SWAR and scalar records diverge");
        let check_faults = |a: &Option<TraceError>, b: &Option<TraceError>, what: &str| match (a, b)
        {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.byte_offset(), b.byte_offset(), "{what}: offsets diverge");
                assert_eq!(a.record_index(), b.record_index(), "{what}");
                assert_eq!(a.chunk(), b.chunk(), "{what}");
                assert_eq!(
                    std::mem::discriminant(a.kind()),
                    std::mem::discriminant(b.kind()),
                    "{what}"
                );
            }
            _ => panic!("{what}: fault disagreement: {a:?} vs {b:?}"),
        };
        check_faults(&b_err, &l_err, "batched vs legacy");
        check_faults(&b_err, &s_err, "SWAR vs scalar");
        assert_eq!(
            batched.recovery_stats(),
            legacy.recovery_stats(),
            "recovery accounting diverges"
        );
        assert_eq!(
            batched.recovery_stats(),
            scalar.recovery_stats(),
            "SWAR/scalar recovery accounting diverges"
        );
        assert_eq!(batched.records_written(), legacy.records_written());
        assert_eq!(batched.records_written(), scalar.records_written());
    }

    #[test]
    fn block_and_per_record_decode_agree_on_clean_streams() {
        let records = synthetic::random_trace(1000, 23);
        let segments = SegmentMap::new(64, 1 << 20);
        // v2 across chunk sizes (incl. ones that straddle batch edges).
        for chunk in [1, 7, 64, 4096] {
            let mut buf = Vec::new();
            let mut writer = TraceWriter::with_chunk_records(&mut buf, segments, chunk).unwrap();
            for r in &records {
                writer.write_record(r).unwrap();
            }
            writer.finish().unwrap();
            assert_paths_agree(&buf, false);
            assert_paths_agree(&buf, true);
        }
        // v1.
        let mut buf = Vec::new();
        let mut writer = TraceWriter::v1(&mut buf, segments).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        assert_paths_agree(&buf, false);
        assert_paths_agree(&buf, true);
    }

    #[test]
    fn block_and_per_record_decode_agree_on_damaged_streams() {
        let records = synthetic::random_trace(600, 29);
        let mut clean = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut clean, SegmentMap::all_data(), 48).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        // A deterministic spread of single-byte corruptions and cuts.
        for step in [3usize, 17, 41, 97, 211] {
            let mut damaged = clean.clone();
            for i in (step..damaged.len()).step_by(251) {
                damaged[i] ^= 0x5a;
            }
            assert_paths_agree(&damaged, false);
            assert_paths_agree(&damaged, true);
            let cut = clean.len() * step % clean.len();
            assert_paths_agree(&clean[..cut], false);
            assert_paths_agree(&clean[..cut], true);
        }
    }

    #[test]
    fn block_and_per_record_decode_agree_on_truncated_v1() {
        let records = synthetic::random_trace(400, 31);
        let mut buf = Vec::new();
        let mut writer = TraceWriter::v1(&mut buf, SegmentMap::all_data()).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        for keep in [buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            let cut = &buf[..keep];
            let (b_records, b_err) = drain(&mut TraceReader::new(cut).unwrap());
            let (l_records, l_err) =
                drain(&mut TraceReader::new(cut).unwrap().with_per_record_decode());
            assert_eq!(b_records, l_records);
            // Both must fault mid-record (or both end cleanly at a
            // record boundary); byte offsets may differ by at most the
            // partially-consumed record on the legacy path.
            assert_eq!(b_err.is_some(), l_err.is_some(), "cut at {keep}");
            if let (Some(b), Some(l)) = (&b_err, &l_err) {
                assert_eq!(b.record_index(), l.record_index());
                assert!(l.byte_offset() - b.byte_offset() < MAX_RECORD_LEN as u64);
            }
        }
    }

    #[test]
    fn read_block_delivers_whole_chunks_and_then_the_fault() {
        let records = synthetic::random_trace(200, 3);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let marker_positions: Vec<usize> = (0..buf.len())
            .filter(|&i| buf[i..].starts_with(&SYNC_MARKER))
            .collect();
        buf[marker_positions[1] + 40] ^= 0x10;
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut block = Vec::new();
        let n = reader.read_block(&mut block).unwrap();
        assert_eq!(n, 64, "first chunk delivered intact");
        assert_eq!(block, records[..64]);
        assert_eq!(reader.records_read(), 64);
        let err = reader.read_block(&mut block).unwrap_err();
        assert!(matches!(
            err.kind(),
            TraceErrorKind::ChecksumMismatch { .. }
        ));
        assert_eq!(err.record_index(), 64);
        // The reader is finished after the fault.
        assert_eq!(reader.read_block(&mut block).unwrap(), 0);
    }

    #[test]
    fn read_block_and_iterator_share_one_cursor() {
        let records = synthetic::random_trace(150, 37);
        let mut buf = Vec::new();
        let mut writer =
            TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), 64).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let first = reader.by_ref().next().unwrap().unwrap();
        assert_eq!(first, records[0]);
        let mut rest = Vec::new();
        while reader.read_block(&mut rest).unwrap() > 0 {}
        assert_eq!(rest, records[1..]);
        assert_eq!(reader.records_read(), 150);
    }

    #[test]
    fn find_marker_locates_embedded_markers() {
        let mut bytes = vec![0xa5u8; 20];
        assert_eq!(find_marker(&bytes), None);
        bytes.extend_from_slice(&SYNC_MARKER);
        assert_eq!(find_marker(&bytes), Some(20));
        assert_eq!(find_marker(&SYNC_MARKER), Some(0));
        assert_eq!(find_marker(&SYNC_MARKER[..7]), None);
    }

    // ---- resource governor ------------------------------------------------

    use crate::govern::Limits;

    /// A bare v2 stream header (magic, version, all-data segment bounds).
    fn v2_header() -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION_V2);
        let _ = write_varint(&mut buf, 0);
        let _ = write_varint(&mut buf, 0);
        buf
    }

    /// A chunk header that *declares* `payload_len` bytes without
    /// supplying them — the adversarial shape the governor must reject
    /// before buffering.
    fn declared_frame(count: u64, payload_len: u64) -> Vec<u8> {
        let mut buf = v2_header();
        buf.extend_from_slice(&SYNC_MARKER);
        let _ = write_varint(&mut buf, 0);
        let _ = write_varint(&mut buf, count);
        let _ = write_varint(&mut buf, payload_len);
        buf.extend_from_slice(&[0u8; 4]); // CRC: never reached
        buf
    }

    #[test]
    fn governor_rejects_declared_payload_before_buffering() {
        let buf = declared_frame(4096, 1 << 24);
        let limits = Limits {
            max_declared_len: 1 << 16,
            ..Limits::default()
        };
        for strict in [true, false] {
            let reader = if strict {
                TraceReader::new(buf.as_slice())
            } else {
                // Terminal even in recovery mode: never resynced past.
                TraceReader::with_recovery(buf.as_slice())
            };
            let mut reader = reader.unwrap().with_governor(ResourceGovernor::new(limits));
            let err = reader.read_block(&mut Vec::new()).unwrap_err();
            let v = err.limit_violation().expect("limit violation");
            assert_eq!(v.limit, "max-declared-len");
            assert_eq!(v.actual, 1 << 24);
            assert!(!err.is_corruption());
            assert_eq!(
                reader.governor().peak_alloc(),
                0,
                "nothing may be allocated for a rejected declaration"
            );
            // The reader is done; it does not limp on.
            assert_eq!(reader.read_block(&mut Vec::new()).unwrap(), 0);
        }
    }

    #[test]
    fn governor_alloc_cap_rejects_a_frame_past_the_budget() {
        // Declared length passes, but the frame allocation would not.
        let buf = declared_frame(64, 1 << 14);
        let limits = Limits {
            max_declared_len: 1 << 20,
            max_alloc_bytes: 1 << 10,
            ..Limits::default()
        };
        let mut reader = TraceReader::new(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(limits));
        let err = reader.read_block(&mut Vec::new()).unwrap_err();
        let v = err.limit_violation().expect("limit violation");
        assert_eq!(v.limit, "max-alloc-bytes");
        assert_eq!(reader.governor().peak_alloc(), 0);
    }

    #[test]
    fn governor_bounds_resync_scanning() {
        // A recovery reader facing a long markerless garbage region scans
        // for a sync marker; the decode-byte budget bounds that scan.
        let mut buf = v2_header();
        buf.extend_from_slice(&vec![0x42u8; 256 * 1024]);
        let limits = Limits {
            max_decode_bytes: 4096,
            ..Limits::default()
        };
        let mut reader = TraceReader::with_recovery(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(limits));
        let err = reader.read_block(&mut Vec::new()).unwrap_err();
        let v = err.limit_violation().expect("limit violation");
        assert_eq!(v.limit, "max-decode-bytes");
        assert!(
            reader.bytes_read() < 64 * 1024,
            "scan must stop near the budget, read {}",
            reader.bytes_read()
        );
    }

    #[test]
    fn governor_record_budget_stops_delivery() {
        let records = synthetic::random_trace(500, 9);
        let buf = encode(&records, SegmentMap::all_data());
        let limits = Limits {
            max_records: 100,
            ..Limits::default()
        };
        // Block path.
        let mut reader = TraceReader::new(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(limits));
        let mut out = Vec::new();
        let err = loop {
            match reader.read_block(&mut out) {
                Ok(0) => panic!("must trip the record budget"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.limit_violation().unwrap().limit, "max-records");
        // Per-record oracle path agrees.
        let mut reader = TraceReader::new(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(limits))
            .with_per_record_decode();
        let (read, err) = drain(&mut reader);
        assert_eq!(read.len(), 100, "exactly the budget is delivered");
        let err = err.expect("per-record path must also trip");
        assert_eq!(err.limit_violation().unwrap().limit, "max-records");
    }

    #[test]
    fn governor_deadline_trips_on_the_reader() {
        let records = synthetic::random_trace(50, 3);
        let buf = encode(&records, SegmentMap::all_data());
        let limits = Limits {
            deadline: Some(std::time::Duration::ZERO),
            ..Limits::default()
        };
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut reader = TraceReader::new(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(limits));
        let err = reader.read_block(&mut Vec::new()).unwrap_err();
        assert_eq!(err.limit_violation().unwrap().limit, "deadline");
    }

    #[test]
    fn governed_clean_reads_are_unaffected_and_track_peak_alloc() {
        let records = synthetic::random_trace(500, 21);
        let segments = SegmentMap::new(64, 1 << 20);
        let buf = encode(&records, segments);
        let mut reader = TraceReader::new(buf.as_slice())
            .unwrap()
            .with_governor(ResourceGovernor::new(Limits::strict()));
        let mut out = Vec::new();
        while reader.read_block(&mut out).unwrap() > 0 {}
        assert_eq!(out, records);
        let gov = reader.governor();
        assert!(gov.peak_alloc() > 0);
        assert!(gov.peak_alloc() <= gov.limits().max_alloc_bytes);
        assert_eq!(gov.records(), records.len() as u64);
    }
}

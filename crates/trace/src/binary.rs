//! A compact binary on-disk trace format.
//!
//! Traces can be captured once (e.g. with `paragraph trace`) and re-analyzed
//! under many machine models, exactly as the paper re-ran Paragraph over
//! Pixie trace files with different switch settings.
//!
//! The format is a small streaming encoding:
//!
//! * header: magic `PGTR`, format version, the [`SegmentMap`] boundaries;
//! * one record per dynamic instruction: class byte, operand-count byte,
//!   zig-zag varint pc delta, then each operand as a tag byte plus varint
//!   payload.
//!
//! # Examples
//!
//! ```
//! use paragraph_trace::binary::{TraceReader, TraceWriter};
//! use paragraph_trace::{Loc, SegmentMap, TraceRecord};
//! use paragraph_isa::OpClass;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut buf = Vec::new();
//! let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data())?;
//! writer.write_record(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)))?;
//! writer.finish()?;
//!
//! let mut reader = TraceReader::new(buf.as_slice())?;
//! let records: Vec<_> = reader.by_ref().collect::<Result<_, _>>()?;
//! assert_eq!(records.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::loc::Loc;
use crate::record::TraceRecord;
use crate::segment::SegmentMap;
use paragraph_isa::OpClass;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PGTR";
const VERSION: u8 = 1;

const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_MEM: u8 = 2;

fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_loc<W: Write>(mut w: W, loc: Loc) -> io::Result<()> {
    match loc {
        Loc::IntReg(r) => w.write_all(&[TAG_INT, r.index()]),
        Loc::FpReg(r) => w.write_all(&[TAG_FP, r.index()]),
        Loc::Mem(addr) => {
            w.write_all(&[TAG_MEM])?;
            write_varint(w, addr)
        }
    }
}

fn read_loc<R: Read>(mut r: R) -> io::Result<Loc> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_INT | TAG_FP => {
            let mut idx = [0u8; 1];
            r.read_exact(&mut idx)?;
            let loc = if tag[0] == TAG_INT {
                paragraph_isa::IntReg::new(idx[0]).map(Loc::IntReg)
            } else {
                paragraph_isa::FpReg::new(idx[0]).map(Loc::FpReg)
            };
            loc.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "register index out of range")
            })
        }
        TAG_MEM => Ok(Loc::Mem(read_varint(r)?)),
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown location tag {t}"),
        )),
    }
}

/// Streaming writer for the binary trace format.
///
/// Callers that need buffering should wrap the writer in a
/// [`std::io::BufWriter`]; a `&mut W` can be passed wherever a `W: Write` is
/// expected.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    last_pc: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns a writer ready for records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, segments: SegmentMap) -> io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        write_varint(&mut out, segments.heap_base())?;
        write_varint(&mut out, segments.stack_floor())?;
        Ok(TraceWriter {
            out,
            last_pc: 0,
            records: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &TraceRecord) -> io::Result<()> {
        let nsrc = record.srcs().len() as u8;
        let flags = nsrc
            | if record.dest().is_some() { 0x80 } else { 0 }
            | if record.branch_info().is_some() {
                0x40
            } else {
                0
            };
        self.out.write_all(&[record.class().id(), flags])?;
        write_varint(
            &mut self.out,
            zigzag(record.pc() as i64 - self.last_pc as i64),
        )?;
        self.last_pc = record.pc();
        for &s in record.srcs() {
            write_loc(&mut self.out, s)?;
        }
        if let Some(d) = record.dest() {
            write_loc(&mut self.out, d)?;
        }
        if let Some(info) = record.branch_info() {
            self.out.write_all(&[u8::from(info.taken)])?;
            write_varint(&mut self.out, info.target)?;
        }
        self.records += 1;
        Ok(())
    }

    /// Flushes and returns the number of records written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.records)
    }
}

/// Streaming reader for the binary trace format.
///
/// Iterates over `io::Result<TraceRecord>`; iteration ends at end-of-file.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    segments: SegmentMap,
    last_pc: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic or version does not match, and
    /// propagates I/O errors.
    pub fn new(mut input: R) -> io::Result<TraceReader<R>> {
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic[..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a Paragraph trace (bad magic)",
            ));
        }
        if magic[4] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", magic[4]),
            ));
        }
        let heap_base = read_varint(&mut input)?;
        let stack_floor = read_varint(&mut input)?;
        Ok(TraceReader {
            input,
            segments: SegmentMap::new(heap_base, stack_floor),
            last_pc: 0,
            done: false,
        })
    }

    /// The segment map recorded in the trace header.
    pub fn segment_map(&self) -> SegmentMap {
        self.segments
    }

    fn read_record(&mut self) -> io::Result<Option<TraceRecord>> {
        let mut head = [0u8; 2];
        match self.input.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let class = OpClass::from_id(head[0])
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown opcode class"))?;
        let nsrc = (head[1] & 0x3f) as usize;
        if nsrc > 3 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record has too many sources",
            ));
        }
        let has_dest = head[1] & 0x80 != 0;
        let has_branch = head[1] & 0x40 != 0;
        let delta = unzigzag(read_varint(&mut self.input)?);
        let pc = self.last_pc.wrapping_add(delta as u64);
        self.last_pc = pc;
        let mut srcs = [Loc::mem(0); 3];
        for slot in srcs.iter_mut().take(nsrc) {
            *slot = read_loc(&mut self.input)?;
        }
        let dest = if has_dest {
            Some(read_loc(&mut self.input)?)
        } else {
            None
        };
        if has_branch {
            let mut taken = [0u8; 1];
            self.input.read_exact(&mut taken)?;
            let target = read_varint(&mut self.input)?;
            if class != OpClass::Branch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "branch outcome on a non-branch record",
                ));
            }
            return Ok(Some(TraceRecord::branch_outcome(
                pc,
                &srcs[..nsrc],
                taken[0] != 0,
                target,
            )));
        }
        Ok(Some(TraceRecord::new(pc, class, &srcs[..nsrc], dest)))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<io::Result<TraceRecord>> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn round_trip(records: &[TraceRecord], segments: SegmentMap) -> Vec<TraceRecord> {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, segments).unwrap();
        for r in records {
            writer.write_record(r).unwrap();
        }
        let written = writer.finish().unwrap();
        assert_eq!(written, records.len() as u64);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.segment_map(), segments);
        reader.map(|r| r.unwrap()).collect()
    }

    #[test]
    fn figure1_round_trips() {
        let records = synthetic::figure1();
        assert_eq!(round_trip(&records, SegmentMap::all_data()), records);
    }

    #[test]
    fn random_trace_round_trips() {
        let records = synthetic::random_trace(500, 42);
        let segments = SegmentMap::new(64, 1 << 20);
        assert_eq!(round_trip(&records, segments), records);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert!(round_trip(&[], SegmentMap::all_data()).is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOPE\x01xxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(99);
        buf.extend_from_slice(&[0, 0]);
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_reports_eof_error() {
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, SegmentMap::all_data()).unwrap();
        writer
            .write_record(&TraceRecord::compute(
                0,
                OpClass::IntAlu,
                &[Loc::int(1)],
                Loc::int(2),
            ))
            .unwrap();
        writer.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let buf = [0xffu8; 11];
        assert!(read_varint(&buf[..]).is_err());
    }
}

//! Typed trace-format errors carrying stream context.
//!
//! Every reader error names *where* the stream went bad: the absolute byte
//! offset, the index of the record being decoded, and (for the chunked v2
//! format) the ordinal of the enclosing chunk. Long captures make "invalid
//! data" useless without a position — the whole point of the fault-tolerant
//! reader is to tell the operator what was lost and where.

use std::error::Error;
use std::fmt;
use std::io;

use crate::govern::LimitViolation;

/// What went wrong while reading a trace stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceErrorKind {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream does not start with the `PGTR` magic.
    BadMagic([u8; 4]),
    /// The stream declares a format version this reader does not know.
    UnsupportedVersion(u8),
    /// The stream ended in the middle of a record, chunk, or header.
    Truncated,
    /// A v2 chunk failed its CRC32 check.
    ChecksumMismatch {
        /// CRC stored in the chunk header.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The bytes decoded but violate the format (bad tag, overflowing
    /// varint, impossible field...).
    Corrupt(String),
    /// The input tripped a [`ResourceGovernor`](crate::govern::ResourceGovernor)
    /// limit. Terminal: the fault-tolerant reader never resyncs past it.
    LimitExceeded(LimitViolation),
}

/// A trace-format error with stream context.
///
/// Produced by [`TraceReader`](crate::binary::TraceReader); the writer side
/// only performs I/O and keeps plain [`io::Result`]s.
#[derive(Debug)]
pub struct TraceError {
    kind: TraceErrorKind,
    byte_offset: u64,
    record_index: u64,
    chunk: Option<u64>,
}

impl TraceError {
    /// Builds an error at the given stream position.
    pub(crate) fn new(kind: TraceErrorKind, byte_offset: u64, record_index: u64) -> TraceError {
        TraceError {
            kind,
            byte_offset,
            record_index,
            chunk: None,
        }
    }

    /// Attaches the ordinal of the enclosing v2 chunk.
    pub(crate) fn in_chunk(mut self, chunk: u64) -> TraceError {
        self.chunk = Some(chunk);
        self
    }

    /// What went wrong.
    pub fn kind(&self) -> &TraceErrorKind {
        &self.kind
    }

    /// Absolute byte offset into the stream where the error was detected.
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// Index of the record being decoded when the error was detected
    /// (equivalently: how many records had been successfully read).
    pub fn record_index(&self) -> u64 {
        self.record_index
    }

    /// Ordinal of the enclosing chunk, for chunked (v2) streams.
    pub fn chunk(&self) -> Option<u64> {
        self.chunk
    }

    /// Whether this error indicates corrupt or truncated trace data (as
    /// opposed to an underlying I/O failure or a resource-limit rejection).
    pub fn is_corruption(&self) -> bool {
        !matches!(
            self.kind,
            TraceErrorKind::Io(_) | TraceErrorKind::LimitExceeded(_)
        )
    }

    /// Whether this error is a resource-governor rejection, and if so which
    /// limit tripped.
    pub fn limit_violation(&self) -> Option<&LimitViolation> {
        match &self.kind {
            TraceErrorKind::LimitExceeded(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceErrorKind::Io(e) => write!(f, "trace read failed: {e}")?,
            TraceErrorKind::BadMagic(m) => {
                write!(f, "not a Paragraph trace (magic {m:02x?})")?;
            }
            TraceErrorKind::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")?;
            }
            TraceErrorKind::Truncated => write!(f, "trace truncated mid-record")?,
            TraceErrorKind::ChecksumMismatch { stored, computed } => write!(
                f,
                "chunk checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )?,
            TraceErrorKind::Corrupt(why) => write!(f, "corrupt trace: {why}")?,
            TraceErrorKind::LimitExceeded(v) => write!(f, "input rejected: {v}")?,
        }
        write!(
            f,
            " at byte {}, record {}",
            self.byte_offset, self.record_index
        )?;
        if let Some(chunk) = self.chunk {
            write!(f, ", chunk {chunk}")?;
        }
        Ok(())
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            TraceErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Lets trace errors flow through `io::Result` call chains (doc examples,
/// CLI plumbing) without losing the typed payload.
impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        let kind = match &e.kind {
            TraceErrorKind::Io(inner) => inner.kind(),
            TraceErrorKind::Truncated => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = TraceError::new(
            TraceErrorKind::ChecksumMismatch {
                stored: 0xdead_beef,
                computed: 0x1234_5678,
            },
            96,
            4096,
        )
        .in_chunk(2);
        let text = err.to_string();
        assert!(text.contains("byte 96"), "{text}");
        assert!(text.contains("record 4096"), "{text}");
        assert!(text.contains("chunk 2"), "{text}");
        assert!(text.contains("0xdeadbeef"), "{text}");
    }

    #[test]
    fn io_conversion_keeps_message_and_kind() {
        let err = TraceError::new(TraceErrorKind::Truncated, 10, 3);
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(io_err.to_string().contains("byte 10"));
    }

    #[test]
    fn corruption_predicate_excludes_io() {
        let io_side = TraceError::new(
            TraceErrorKind::Io(io::Error::new(io::ErrorKind::Other, "disk")),
            0,
            0,
        );
        assert!(!io_side.is_corruption());
        let data_side = TraceError::new(TraceErrorKind::Corrupt("tag".into()), 0, 0);
        assert!(data_side.is_corruption());
    }
}

//! One dynamic instruction as seen by the analyzer.

use crate::loc::Loc;
use paragraph_isa::OpClass;
use std::fmt;

const MAX_SRCS: usize = 3;

/// A single dynamic instruction in an execution trace.
///
/// A record carries everything the dependency analyzer needs and nothing
/// else: the program counter (for diagnostics and DDG node labels), the
/// operation's latency class, the source [`Loc`]ations whose values it reads,
/// and the destination location it writes (if any).
///
/// Loads appear with their memory word among the sources and the target
/// register as destination; stores appear with the stored register (and the
/// address base register) among the sources and the memory word as
/// destination. Control instructions carry their register sources but no
/// destination and are never placed in the DDG.
///
/// # Examples
///
/// ```
/// use paragraph_trace::{Loc, TraceRecord};
///
/// // lw r4, 0(r29) where r29 holds 1000
/// let lw = TraceRecord::load(8, 1000, Some(Loc::int(29)), Loc::int(4));
/// assert_eq!(lw.dest(), Some(Loc::int(4)));
/// assert!(lw.srcs().contains(&Loc::mem(1000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    pc: u64,
    class: OpClass,
    nsrc: u8,
    srcs: [Loc; MAX_SRCS],
    dest: Option<Loc>,
    branch: Option<BranchInfo>,
}

/// Dynamic outcome of a conditional branch, carried on
/// [`OpClass::Branch`] records.
///
/// Used by the analyzer's branch-prediction models: a mispredicted branch
/// places a firewall at the branch's resolution level ("The firewall can
/// also be used to represent the effect of a mispredicted conditional
/// branch", §3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The branch's static target instruction address.
    pub target: u64,
}

impl TraceRecord {
    /// Creates a record from raw parts.
    ///
    /// Reads of the hardwired zero register are dropped from `srcs` (they
    /// create no dependency), and a write to the zero register is dropped
    /// from `dest`.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are supplied, or if the class/
    /// operand combination is inconsistent (a destination on a control
    /// instruction, a memory destination on a non-store, or a store without a
    /// memory destination).
    pub fn new(pc: u64, class: OpClass, srcs: &[Loc], dest: Option<Loc>) -> TraceRecord {
        let dest = dest.filter(|d| !d.is_zero_reg());
        if let Some(d) = dest {
            assert!(
                class.creates_value(),
                "control/nop instruction at pc {pc} cannot define {d}"
            );
            assert_eq!(
                d.is_mem(),
                class == OpClass::Store,
                "memory destinations are exactly the store class (pc {pc}, class {class})"
            );
        } else {
            assert!(
                !matches!(class, OpClass::Store | OpClass::Load),
                "memory instruction at pc {pc} must name its memory destination/source"
            );
        }
        let mut packed = [Loc::IntReg(paragraph_isa::IntReg::ZERO); MAX_SRCS];
        let mut nsrc = 0usize;
        for &s in srcs {
            if s.is_zero_reg() {
                continue;
            }
            assert!(nsrc < MAX_SRCS, "more than {MAX_SRCS} sources at pc {pc}");
            packed[nsrc] = s;
            nsrc += 1;
        }
        if class == OpClass::Load {
            assert!(
                srcs.iter().any(|s| s.is_mem()),
                "load at pc {pc} must name its memory source"
            );
        }
        TraceRecord {
            pc,
            class,
            nsrc: nsrc as u8,
            srcs: packed,
            dest,
            branch: None,
        }
    }

    /// A register-to-register computation (ALU, multiply, FP, ...).
    ///
    /// # Panics
    ///
    /// Panics if `class` is a memory, control, or non-value class, or on
    /// operand inconsistencies as for [`TraceRecord::new`].
    pub fn compute(pc: u64, class: OpClass, srcs: &[Loc], dest: Loc) -> TraceRecord {
        assert!(
            class.creates_value() && !class.is_mem() && class != OpClass::Syscall,
            "compute records take ALU/FP classes, got {class}"
        );
        TraceRecord::new(pc, class, srcs, Some(dest))
    }

    /// A load of memory word `addr` into register `dest`, optionally through
    /// an address `base` register.
    pub fn load(pc: u64, addr: u64, base: Option<Loc>, dest: Loc) -> TraceRecord {
        let mut srcs = [Loc::mem(addr); 2];
        let mut n = 1;
        if let Some(b) = base {
            srcs[1] = b;
            n = 2;
        }
        TraceRecord::new(pc, OpClass::Load, &srcs[..n], Some(dest))
    }

    /// A store of register `value` into memory word `addr`, optionally
    /// through an address `base` register.
    pub fn store(pc: u64, addr: u64, value: Loc, base: Option<Loc>) -> TraceRecord {
        let mut srcs = [value; 2];
        let mut n = 1;
        if let Some(b) = base {
            srcs[1] = b;
            n = 2;
        }
        TraceRecord::new(pc, OpClass::Store, &srcs[..n], Some(Loc::mem(addr)))
    }

    /// A system call. Sources are the argument registers actually read.
    pub fn syscall(pc: u64, srcs: &[Loc], dest: Option<Loc>) -> TraceRecord {
        TraceRecord::new(pc, OpClass::Syscall, srcs, dest)
    }

    /// A conditional branch reading the given registers, with unknown
    /// outcome (branch-prediction models treat it as perfectly predicted).
    pub fn branch(pc: u64, srcs: &[Loc]) -> TraceRecord {
        TraceRecord::new(pc, OpClass::Branch, srcs, None)
    }

    /// A conditional branch with its dynamic outcome recorded, enabling the
    /// analyzer's branch-prediction models.
    pub fn branch_outcome(pc: u64, srcs: &[Loc], taken: bool, target: u64) -> TraceRecord {
        let mut rec = TraceRecord::new(pc, OpClass::Branch, srcs, None);
        rec.branch = Some(BranchInfo { taken, target });
        rec
    }

    /// An unconditional jump (no link-register write).
    pub fn jump(pc: u64, srcs: &[Loc]) -> TraceRecord {
        TraceRecord::new(pc, OpClass::Jump, srcs, None)
    }

    /// The program counter (instruction address) of this dynamic instruction.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The operation's latency class.
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// The locations read by this instruction (zero-register reads omitted).
    pub fn srcs(&self) -> &[Loc] {
        &self.srcs[..self.nsrc as usize]
    }

    /// The location written by this instruction, if any.
    pub fn dest(&self) -> Option<Loc> {
        self.dest
    }

    /// Whether the analyzer places this record in the DDG.
    pub fn creates_value(&self) -> bool {
        self.class.creates_value()
    }

    /// The recorded branch outcome, if this is a conditional branch whose
    /// outcome the tracer captured.
    pub fn branch_info(&self) -> Option<BranchInfo> {
        self.branch
    }

    /// The memory word this instruction accesses, if any.
    pub fn mem_addr(&self) -> Option<u64> {
        match self.class {
            OpClass::Load => self.srcs().iter().find_map(|s| s.addr()),
            OpClass::Store => self.dest.and_then(Loc::addr),
            _ => None,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8}  {:<8}", self.pc, self.class)?;
        let mut first = true;
        for s in self.srcs() {
            if first {
                write!(f, " reads {s}")?;
                first = false;
            } else {
                write!(f, ", {s}")?;
            }
        }
        if let Some(d) = self.dest {
            write!(f, " writes {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_reads_are_dropped() {
        let rec =
            TraceRecord::compute(0, OpClass::IntAlu, &[Loc::int(0), Loc::int(3)], Loc::int(4));
        assert_eq!(rec.srcs(), &[Loc::int(3)]);
    }

    #[test]
    fn zero_register_writes_are_dropped() {
        let rec = TraceRecord::new(0, OpClass::IntAlu, &[Loc::int(3)], Some(Loc::int(0)));
        assert_eq!(rec.dest(), None);
    }

    #[test]
    fn load_records_memory_source() {
        let rec = TraceRecord::load(4, 100, Some(Loc::int(29)), Loc::int(8));
        assert_eq!(rec.class(), OpClass::Load);
        assert_eq!(rec.mem_addr(), Some(100));
        assert_eq!(rec.srcs().len(), 2);
    }

    #[test]
    fn store_records_memory_destination() {
        let rec = TraceRecord::store(4, 100, Loc::int(8), Some(Loc::int(29)));
        assert_eq!(rec.class(), OpClass::Store);
        assert_eq!(rec.dest(), Some(Loc::mem(100)));
        assert_eq!(rec.mem_addr(), Some(100));
    }

    #[test]
    #[should_panic(expected = "cannot define")]
    fn branch_with_destination_panics() {
        TraceRecord::new(0, OpClass::Branch, &[], Some(Loc::int(1)));
    }

    #[test]
    #[should_panic(expected = "memory destinations")]
    fn mem_dest_on_alu_panics() {
        TraceRecord::new(0, OpClass::IntAlu, &[], Some(Loc::mem(4)));
    }

    #[test]
    #[should_panic(expected = "must name its memory source")]
    fn load_without_mem_source_panics() {
        TraceRecord::new(0, OpClass::Load, &[Loc::int(1)], Some(Loc::int(2)));
    }

    #[test]
    fn display_is_informative() {
        let rec = TraceRecord::store(12, 40, Loc::int(8), Some(Loc::int(29)));
        let text = rec.to_string();
        assert!(text.contains("store"));
        assert!(text.contains("r8"));
        assert!(text.contains("[40]"));
    }

    #[test]
    fn syscall_records() {
        let rec = TraceRecord::syscall(0, &[Loc::int(2)], Some(Loc::int(2)));
        assert!(rec.creates_value());
        assert_eq!(rec.class(), OpClass::Syscall);
    }
}

//! Trace input sources and the decode-ahead pipeline.
//!
//! Two backends feed the [`TraceReader`]:
//!
//! * **Buffered** — a boxed [`Read`] (typically `BufReader<File>`), pulled
//!   through the reader's internal byte buffer exactly as before.
//! * **Mapped / in-memory** — the entire input resident as one
//!   [`SharedBytes`] region (an `mmap(2)` of the file, or owned bytes), so
//!   chunk payloads are CRC-validated and decoded straight out of the page
//!   cache with zero copies into a read buffer.
//!
//! Both backends run the *same* reader code: governor accounting, CRC
//! validation, resync recovery, and `--recover` semantics are identical —
//! the only difference is where `buffered()` bytes live. The differential
//! suites in `tests/` hold the two backends to byte-identical outcomes.
//!
//! On top of a reader, [`DecodeAhead`] runs the decode on a helper thread
//! with a bounded two-slot channel, so chunk N+1 is CRC-checked and
//! decoded while the analyzer consumes chunk N. And for pristine mapped
//! streams, [`decode_all_parallel`] fans whole-file decoding out across
//! threads (each chunk decodes independently: the pc-delta chain restarts
//! per chunk), falling back to the sequential reader on any anomaly.

use crate::binary::{decode_span, scan_chunks, ByteStream, RecoveryStats, TraceReader};
use crate::error::TraceError;
use crate::govern::Limits;
use crate::record::TraceRecord;
use crate::segment::SegmentMap;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use std::sync::Arc;

/// A cheaply cloneable, thread-shareable immutable byte region: a mapped
/// file or an owned buffer.
#[derive(Clone)]
pub struct SharedBytes(Arc<dyn AsRef<[u8]> + Send + Sync>);

impl SharedBytes {
    /// Wraps an owned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes(Arc::new(bytes))
    }

    /// Memory-maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Propagates `mmap(2)` failures (e.g. the input is a pipe).
    pub fn map_file(file: &File) -> io::Result<SharedBytes> {
        Ok(SharedBytes(Arc::new(mmap_lite::Mmap::map(file)?)))
    }
}

impl std::ops::Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        (*self.0).as_ref()
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len())
            .finish()
    }
}

/// Which backend a [`TraceSource`] reads through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceBackend {
    /// Streaming reads through a buffered reader.
    Buffered,
    /// Zero-copy reads out of a memory-mapped file.
    Mapped,
    /// Zero-copy reads out of an owned in-memory buffer.
    Memory,
}

enum Inner {
    Reader(Box<dyn Read + Send>),
    Bytes { bytes: SharedBytes, pos: usize },
}

/// A trace input: either a streaming reader or a whole-input byte region.
///
/// Construct with [`TraceSource::buffered_file`],
/// [`TraceSource::mapped_file`], [`TraceSource::auto_file`] (mmap with a
/// silent fallback to buffered), [`TraceSource::from_bytes`], or
/// [`TraceSource::from_reader`], then open it with
/// [`TraceReader::from_source`].
pub struct TraceSource {
    backend: SourceBackend,
    inner: Inner,
}

impl TraceSource {
    /// Opens `path` behind a `BufReader`.
    ///
    /// # Errors
    ///
    /// Propagates the `open(2)` failure.
    pub fn buffered_file(path: &Path) -> io::Result<TraceSource> {
        let file = File::open(path)?;
        Ok(TraceSource {
            backend: SourceBackend::Buffered,
            inner: Inner::Reader(Box::new(BufReader::new(file))),
        })
    }

    /// Memory-maps `path`.
    ///
    /// # Errors
    ///
    /// Propagates `open(2)`/`mmap(2)` failures (e.g. the path is a FIFO).
    pub fn mapped_file(path: &Path) -> io::Result<TraceSource> {
        let file = File::open(path)?;
        let bytes = SharedBytes::map_file(&file)?;
        Ok(TraceSource {
            backend: SourceBackend::Mapped,
            inner: Inner::Bytes { bytes, pos: 0 },
        })
    }

    /// Memory-maps `path` when possible, silently falling back to a
    /// buffered reader when the file cannot be mapped (FIFOs, exotic
    /// filesystems). Decode semantics are identical either way.
    ///
    /// # Errors
    ///
    /// Propagates the `open(2)` failure of the buffered fallback.
    pub fn auto_file(path: &Path) -> io::Result<TraceSource> {
        match TraceSource::mapped_file(path) {
            Ok(source) => Ok(source),
            Err(_) => TraceSource::buffered_file(path),
        }
    }

    /// Wraps an owned in-memory trace image (zero-copy decode).
    pub fn from_bytes(bytes: Vec<u8>) -> TraceSource {
        TraceSource {
            backend: SourceBackend::Memory,
            inner: Inner::Bytes {
                bytes: SharedBytes::from_vec(bytes),
                pos: 0,
            },
        }
    }

    /// Wraps an arbitrary streaming reader (stdin, sockets, test doubles).
    pub fn from_reader<R: Read + Send + 'static>(reader: R) -> TraceSource {
        TraceSource {
            backend: SourceBackend::Buffered,
            inner: Inner::Reader(Box::new(reader)),
        }
    }

    /// The backend this source reads through.
    pub fn backend(&self) -> SourceBackend {
        self.backend
    }

    /// The whole-input byte region, when this source has one (mapped or
    /// in-memory backends). Lets parallel consumers share the mapping.
    pub fn shared_bytes(&self) -> Option<SharedBytes> {
        match &self.inner {
            Inner::Bytes { bytes, .. } => Some(bytes.clone()),
            Inner::Reader(_) => None,
        }
    }
}

impl Read for TraceSource {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        match &mut self.inner {
            Inner::Reader(r) => r.read(out),
            Inner::Bytes { bytes, pos } => {
                let rest = &bytes[(*pos).min(bytes.len())..];
                let n = rest.len().min(out.len());
                out[..n].copy_from_slice(&rest[..n]);
                *pos += n;
                Ok(n)
            }
        }
    }
}

impl std::fmt::Debug for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSource")
            .field("backend", &self.backend)
            .finish()
    }
}

impl TraceReader<TraceSource> {
    /// Opens a reader over `source`; byte-region sources decode zero-copy.
    ///
    /// # Errors
    ///
    /// Same header-validation errors as [`TraceReader::new`].
    pub fn from_source(source: TraceSource) -> Result<TraceReader<TraceSource>, TraceError> {
        TraceReader::open_source(source, false)
    }

    /// Recovery-mode twin of [`TraceReader::from_source`]; see
    /// [`TraceReader::with_recovery`].
    ///
    /// # Errors
    ///
    /// Same header-validation errors as [`TraceReader::with_recovery`].
    pub fn from_source_with_recovery(
        source: TraceSource,
    ) -> Result<TraceReader<TraceSource>, TraceError> {
        TraceReader::open_source(source, true)
    }

    fn open_source(
        source: TraceSource,
        recover: bool,
    ) -> Result<TraceReader<TraceSource>, TraceError> {
        let slice = match &source.inner {
            // Zero-copy only from the start of the region; a consumed
            // source falls back to the generic `Read` path.
            Inner::Bytes { bytes, pos: 0 } => Some(bytes.clone()),
            _ => None,
        };
        let stream = match slice {
            Some(bytes) => ByteStream::with_slice(source, bytes),
            None => ByteStream::new(source),
        };
        TraceReader::open_stream(stream, recover)
    }
}

/// Progress callbacks from the decode-ahead helper thread. All events
/// fire *on the helper thread*, so observers can name it for the flight
/// recorder and open per-block timeline spans.
#[derive(Debug, Clone, Copy)]
pub enum DecodeEvent {
    /// The helper thread has started.
    ThreadStart,
    /// A block decode is about to begin.
    BlockStart,
    /// The block decode finished, having appended this many records.
    BlockEnd {
        /// Records decoded by the block (0 at end of stream).
        records: usize,
    },
}

/// Observer for [`DecodeEvent`]s.
pub type DecodeObserver = Box<dyn FnMut(DecodeEvent) + Send>;

/// Final reader state handed back by [`DecodeAhead::finish`] after the
/// helper thread exits — everything a driver reports about a decode.
#[derive(Debug, Clone, Copy)]
pub struct DecodeFinal {
    /// Damage tallies (all zero for a clean stream).
    pub stats: RecoveryStats,
    /// Total records the writer claims, if the trailer was reached.
    pub records_written: Option<u64>,
    /// Bytes consumed from the input.
    pub bytes_read: u64,
    /// Largest single allocation the governor authorized.
    pub peak_alloc: u64,
}

/// Bounded decode-ahead pipeline: a helper thread owns the reader and
/// keeps at most two decoded blocks in flight, so the consumer overlaps
/// analysis of block N with the CRC check and decode of block N+1.
///
/// The handoff protocol preserves fault ordering exactly: the helper
/// pushes blocks in stream order and a fault is queued *after* every
/// block decoded ahead of it, which is precisely where
/// [`TraceReader::read_block`] would surface it. Returned block buffers
/// should be handed back via [`DecodeAhead::recycle`] so steady state
/// allocates nothing.
pub struct DecodeAhead {
    rx: Receiver<Result<Vec<TraceRecord>, TraceError>>,
    recycle: Sender<Vec<TraceRecord>>,
    handle: std::thread::JoinHandle<DecodeFinal>,
}

impl DecodeAhead {
    /// Spawns the helper thread over `reader`.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failure.
    pub fn spawn(
        mut reader: TraceReader<TraceSource>,
        mut observer: Option<DecodeObserver>,
    ) -> io::Result<DecodeAhead> {
        let (tx, rx) = sync_channel::<Result<Vec<TraceRecord>, TraceError>>(2);
        let (recycle_tx, recycle_rx) = channel::<Vec<TraceRecord>>();
        let handle = std::thread::Builder::new()
            .name("decode-ahead".into())
            .spawn(move || {
                if let Some(obs) = observer.as_mut() {
                    obs(DecodeEvent::ThreadStart);
                }
                loop {
                    let mut batch = recycle_rx.try_recv().unwrap_or_default();
                    batch.clear();
                    if let Some(obs) = observer.as_mut() {
                        obs(DecodeEvent::BlockStart);
                    }
                    let outcome = reader.read_block(&mut batch);
                    if let Some(obs) = observer.as_mut() {
                        obs(DecodeEvent::BlockEnd {
                            records: batch.len(),
                        });
                    }
                    match outcome {
                        Ok(0) => break,
                        // A closed receiver means the consumer is done
                        // (dropped or finishing early): stop decoding.
                        Ok(_) => {
                            if tx.send(Ok(batch)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }
                DecodeFinal {
                    stats: reader.recovery_stats(),
                    records_written: reader.records_written(),
                    bytes_read: reader.bytes_read(),
                    peak_alloc: reader.governor().peak_alloc(),
                }
            })?;
        Ok(DecodeAhead {
            rx,
            recycle: recycle_tx,
            handle,
        })
    }

    /// The next decoded block, in stream order; `None` at a clean end of
    /// stream. A fault arrives here exactly once, after every block that
    /// was decoded ahead of it, and ends the stream.
    pub fn next_batch(&mut self) -> Option<Result<Vec<TraceRecord>, TraceError>> {
        self.rx.recv().ok()
    }

    /// Hands a drained block buffer back for reuse.
    pub fn recycle(&self, batch: Vec<TraceRecord>) {
        let _ = self.recycle.send(batch);
    }

    /// Stops the pipeline and returns the reader's final state. Joins the
    /// helper thread; any panic on it is resumed here.
    pub fn finish(self) -> DecodeFinal {
        let DecodeAhead {
            rx,
            recycle,
            handle,
        } = self;
        // Closing the channels unblocks a helper mid-send.
        drop(rx);
        drop(recycle);
        match handle.join() {
            Ok(fin) => fin,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Result of a successful [`decode_all_parallel`].
#[derive(Debug)]
pub struct ParallelDecode {
    /// Every record of the stream, in order.
    pub records: Vec<TraceRecord>,
    /// Segment boundaries from the file header.
    pub segments: SegmentMap,
    /// Total records declared by the trailer.
    pub total: u64,
    /// Size of the decoded stream in bytes.
    pub bytes: u64,
}

/// Mirror of the sequential reader's governor admission checks, run
/// against the structural scan. Any stream a governed sequential reader
/// might reject is declined here, so the caller's sequential fallback
/// owns the (identical) rejection.
fn admits(scan: &crate::binary::ChunkScan, stream_len: u64, limits: &Limits) -> bool {
    if limits.deadline.is_some() {
        // Wall-clock budgets need the sequential reader's bookkeeping.
        return false;
    }
    if stream_len > limits.max_decode_bytes || scan.total > limits.max_records {
        return false;
    }
    scan.chunks.iter().all(|c| {
        (c.frame_len as u64) <= limits.max_alloc_bytes
            && ((c.frame_len - c.header_len) as u64) <= limits.max_declared_len
            && c.count <= limits.max_declared_len
    })
}

/// Decodes a complete in-memory v2 stream across `jobs` threads, each
/// CRC-checking and decoding a contiguous run of chunks straight out of
/// the shared region.
///
/// Returns `None` — decode sequentially instead — unless the stream is
/// pristine (see [`scan_chunks`]) and within `limits`. On any CRC or
/// payload fault discovered by a worker the whole decode is abandoned and
/// `None` is returned, so error reporting and recovery accounting always
/// come from the sequential reader and are identical across paths.
pub fn decode_all_parallel(
    bytes: &SharedBytes,
    jobs: usize,
    limits: &Limits,
) -> Option<ParallelDecode> {
    let data: &[u8] = bytes;
    let scan = scan_chunks(data)?;
    if !admits(&scan, data.len() as u64, limits) {
        return None;
    }
    let jobs = jobs.max(1).min(scan.chunks.len().max(1));
    // Contiguous chunk ranges balanced by payload bytes, so one huge chunk
    // does not serialize the fan-out.
    let total_payload: usize = scan.chunks.iter().map(|c| c.frame_len - c.header_len).sum();
    let target = total_payload / jobs + 1;
    let mut groups: Vec<(usize, usize)> = Vec::with_capacity(jobs);
    let mut lo = 0usize;
    let mut acc = 0usize;
    for (i, c) in scan.chunks.iter().enumerate() {
        acc += c.frame_len - c.header_len;
        if acc >= target && groups.len() + 1 < jobs {
            groups.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
        }
    }
    if lo < scan.chunks.len() {
        groups.push((lo, scan.chunks.len()));
    }
    let ok = AtomicBool::new(true);
    let mut parts: Vec<Vec<TraceRecord>> = Vec::with_capacity(groups.len());
    std::thread::scope(|s| {
        let scan_ref = &scan;
        let ok_ref = &ok;
        let handles: Vec<_> = groups
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let spans = &scan_ref.chunks[lo..hi];
                    let expected: u64 = spans.iter().map(|c| c.count).sum();
                    let mut out = Vec::with_capacity(expected as usize);
                    for span in spans {
                        if !ok_ref.load(Ordering::Relaxed) {
                            return None;
                        }
                        if !decode_span(data, span, &mut out) {
                            ok_ref.store(false, Ordering::Relaxed);
                            return None;
                        }
                    }
                    Some(out)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(Some(part)) => parts.push(part),
                Ok(None) => {}
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if !ok.load(Ordering::Relaxed) || parts.len() != groups.len() {
        return None;
    }
    let mut records = Vec::with_capacity(scan.total as usize);
    for part in parts {
        records.extend_from_slice(&part);
    }
    if records.len() as u64 != scan.total {
        return None;
    }
    Some(ParallelDecode {
        records,
        segments: scan.segments,
        total: scan.total,
        bytes: data.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::TraceWriter;
    use crate::synthetic;

    fn trace_bytes(records: usize, seed: u64, chunk: u64) -> (Vec<u8>, Vec<TraceRecord>) {
        let records = synthetic::random_trace(records, seed);
        let mut bytes = Vec::new();
        let mut writer = TraceWriter::with_chunk_records(&mut bytes, SegmentMap::all_data(), chunk)
            .expect("in-memory writer");
        for record in &records {
            writer.write_record(record).expect("in-memory write");
        }
        writer.finish().expect("in-memory finish");
        (bytes, records)
    }

    fn read_all(source: TraceSource) -> Vec<TraceRecord> {
        let mut reader = TraceReader::from_source(source).expect("open");
        let mut out = Vec::new();
        while reader.read_block(&mut out).expect("read") > 0 {}
        out
    }

    #[test]
    fn memory_source_decodes_zero_copy_to_the_same_records() {
        let (bytes, expected) = trace_bytes(2000, 11, 128);
        let got = read_all(TraceSource::from_bytes(bytes));
        assert_eq!(got, expected);
    }

    #[test]
    fn mapped_source_matches_buffered_source() {
        let (bytes, expected) = trace_bytes(3000, 7, 256);
        let mut path = std::env::temp_dir();
        path.push(format!("paragraph-source-test-{}", std::process::id()));
        std::fs::write(&path, &bytes).expect("write temp trace");
        let mapped = read_all(TraceSource::mapped_file(&path).expect("map"));
        let buffered = read_all(TraceSource::buffered_file(&path).expect("open"));
        std::fs::remove_file(&path).ok();
        assert_eq!(mapped, expected);
        assert_eq!(buffered, expected);
    }

    #[test]
    fn decode_ahead_delivers_identical_records_in_order() {
        let (bytes, expected) = trace_bytes(5000, 3, 512);
        let reader = TraceReader::from_source(TraceSource::from_bytes(bytes)).expect("open");
        let mut pipeline = DecodeAhead::spawn(reader, None).expect("spawn");
        let mut got = Vec::new();
        while let Some(batch) = pipeline.next_batch() {
            let batch = batch.expect("clean stream");
            got.extend_from_slice(&batch);
            pipeline.recycle(batch);
        }
        let fin = pipeline.finish();
        assert_eq!(got, expected);
        assert_eq!(fin.records_written, Some(expected.len() as u64));
        assert_eq!(fin.stats.records_read, expected.len() as u64);
    }

    #[test]
    fn decode_ahead_surfaces_the_fault_after_prior_blocks() {
        let (mut bytes, _) = trace_bytes(2000, 5, 128);
        // Flip a payload byte in the middle of the stream.
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        // Sequential oracle.
        let mut seq = TraceReader::new(io::Cursor::new(bytes.clone())).expect("open");
        let mut seq_records = Vec::new();
        let seq_err = loop {
            match seq.read_block(&mut seq_records) {
                Ok(0) => break None,
                Ok(_) => {}
                Err(e) => break Some(e),
            }
        };
        // Pipelined run.
        let reader = TraceReader::from_source(TraceSource::from_bytes(bytes)).expect("open");
        let mut pipeline = DecodeAhead::spawn(reader, None).expect("spawn");
        let mut got = Vec::new();
        let mut got_err = None;
        while let Some(batch) = pipeline.next_batch() {
            match batch {
                Ok(batch) => got.extend_from_slice(&batch),
                Err(e) => got_err = Some(e),
            }
        }
        pipeline.finish();
        assert_eq!(got, seq_records);
        match (seq_err, got_err) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(
                    std::mem::discriminant(a.kind()),
                    std::mem::discriminant(b.kind())
                );
                assert_eq!(a.byte_offset(), b.byte_offset());
            }
            (a, b) => panic!("fault mismatch: sequential {a:?} vs pipelined {b:?}"),
        }
    }

    #[test]
    fn parallel_decode_matches_sequential_on_clean_streams() {
        let (bytes, expected) = trace_bytes(6000, 9, 256);
        let shared = SharedBytes::from_vec(bytes);
        for jobs in [1, 2, 4, 7] {
            let decoded = decode_all_parallel(&shared, jobs, &Limits::default())
                .expect("pristine stream must decode in parallel");
            assert_eq!(decoded.records, expected, "jobs {jobs}");
            assert_eq!(decoded.total, expected.len() as u64);
        }
    }

    #[test]
    fn parallel_decode_declines_damaged_streams() {
        let (mut bytes, _) = trace_bytes(2000, 13, 128);
        let at = bytes.len() / 3;
        bytes[at] ^= 0x01;
        let shared = SharedBytes::from_vec(bytes);
        assert!(decode_all_parallel(&shared, 4, &Limits::default()).is_none());
    }

    #[test]
    fn parallel_decode_declines_truncation_and_limits() {
        let (bytes, _) = trace_bytes(2000, 17, 128);
        let truncated = SharedBytes::from_vec(bytes[..bytes.len() - 9].to_vec());
        assert!(decode_all_parallel(&truncated, 4, &Limits::default()).is_none());
        let shared = SharedBytes::from_vec(bytes);
        let tight = Limits {
            max_records: 10,
            ..Limits::default()
        };
        assert!(decode_all_parallel(&shared, 4, &tight).is_none());
    }
}

//! Parametric synthetic traces with known dependency structure.
//!
//! These generators exist for testing and benchmarking the analyzer itself:
//! each has an analytically known critical path and parallelism, so analyzer
//! results can be asserted exactly. The paper's worked examples (Figures 1
//! and 2) are provided verbatim.

use crate::loc::Loc;
use crate::record::TraceRecord;
use paragraph_isa::OpClass;

/// Word addresses of the variables in the paper's Figures 1, 2 and 5:
/// `A`, `B`, `C`, `D` are pre-initialized DATA-segment values and `S` is the
/// result slot.
pub mod figure_vars {
    /// Address of `A`.
    pub const A: u64 = 0;
    /// Address of `B`.
    pub const B: u64 = 1;
    /// Address of `C`.
    pub const C: u64 = 2;
    /// Address of `D`.
    pub const D: u64 = 3;
    /// Address of `S`.
    pub const S: u64 = 4;
}

/// The execution trace of Figure 1 of the paper: `S := A + B + C + D`
/// compiled so that every value gets a fresh register (no storage
/// dependencies).
///
/// With unit latencies and pre-initialized `A..D`, its DDG has critical path
/// length 4 and parallelism profile `[4, 2, 1, 1]`.
///
/// # Examples
///
/// ```
/// let trace = paragraph_trace::synthetic::figure1();
/// assert_eq!(trace.len(), 8);
/// ```
pub fn figure1() -> Vec<TraceRecord> {
    use figure_vars::*;
    vec![
        TraceRecord::load(0, A, None, Loc::int(10)), // load r0,A (r10 avoids the zero reg)
        TraceRecord::load(1, B, None, Loc::int(11)), // load r1,B
        TraceRecord::compute(
            2,
            OpClass::IntAlu,
            &[Loc::int(10), Loc::int(11)],
            Loc::int(4),
        ),
        TraceRecord::load(3, C, None, Loc::int(12)), // load r2,C
        TraceRecord::load(4, D, None, Loc::int(13)), // load r3,D
        TraceRecord::compute(
            5,
            OpClass::IntAlu,
            &[Loc::int(12), Loc::int(13)],
            Loc::int(5),
        ),
        TraceRecord::compute(6, OpClass::IntAlu, &[Loc::int(4), Loc::int(5)], Loc::int(6)),
        TraceRecord::store(7, S, Loc::int(6), None),
    ]
}

/// The execution trace of Figure 2 of the paper: the same computation as
/// [`figure1`] but with registers `r0` and `r1` reused for `C` and `D`,
/// introducing storage dependencies.
///
/// Without renaming its DDG has critical path length 6 (profile
/// `[2, 1, 2, 1, 1, 1]`); with register renaming it matches Figure 1.
pub fn figure2() -> Vec<TraceRecord> {
    use figure_vars::*;
    vec![
        TraceRecord::load(0, A, None, Loc::int(10)),
        TraceRecord::load(1, B, None, Loc::int(11)),
        TraceRecord::compute(
            2,
            OpClass::IntAlu,
            &[Loc::int(10), Loc::int(11)],
            Loc::int(4),
        ),
        TraceRecord::load(3, C, None, Loc::int(10)), // reuses r0
        TraceRecord::load(4, D, None, Loc::int(11)), // reuses r1
        TraceRecord::compute(
            5,
            OpClass::IntAlu,
            &[Loc::int(10), Loc::int(11)],
            Loc::int(5),
        ),
        TraceRecord::compute(6, OpClass::IntAlu, &[Loc::int(4), Loc::int(5)], Loc::int(6)),
        TraceRecord::store(7, S, Loc::int(6), None),
    ]
}

/// A serial dependency chain of `n` integer ALU operations: every operation
/// reads the previous operation's result.
///
/// Critical path `n`, available parallelism 1.
pub fn chain(n: usize) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let srcs = if i == 0 { vec![] } else { vec![Loc::int(1)] };
        out.push(TraceRecord::compute(
            i as u64,
            OpClass::IntAlu,
            &srcs,
            Loc::int(1),
        ));
    }
    out
}

/// `n` mutually independent integer ALU operations (each a load-immediate).
///
/// Critical path 1, available parallelism `n`.
pub fn independent(n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord::compute(i as u64, OpClass::IntAlu, &[], Loc::int(1 + (i % 31) as u8)))
        .collect()
}

/// `chains` independent serial chains, each `len` operations long, round-
/// robin interleaved in the trace.
///
/// Critical path `len`, available parallelism `chains`. At most 62 chains
/// (one register per chain across both register files).
///
/// # Panics
///
/// Panics if `chains` is 0 or exceeds 62.
pub fn interleaved_chains(chains: usize, len: usize) -> Vec<TraceRecord> {
    assert!(
        (1..=62).contains(&chains),
        "chains must be in 1..=62, got {chains}"
    );
    let reg = |c: usize| -> Loc {
        if c < 31 {
            Loc::int(1 + c as u8)
        } else {
            Loc::fp((c - 31) as u8)
        }
    };
    let mut out = Vec::with_capacity(chains * len);
    let mut pc = 0u64;
    for step in 0..len {
        for c in 0..chains {
            let srcs = if step == 0 { vec![] } else { vec![reg(c)] };
            out.push(TraceRecord::compute(pc, OpClass::IntAlu, &srcs, reg(c)));
            pc += 1;
        }
    }
    out
}

/// A fan-out/fan-in diamond: one root, `width` independent middle operations
/// reading the root, and a binary reduction tree joining them.
///
/// With unit latencies the critical path is `2 + ceil(log2(width))` and the
/// widest level holds `width` operations.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn diamond(width: usize) -> Vec<TraceRecord> {
    assert!(width > 0, "diamond width must be positive");
    let mut out = Vec::new();
    let mut pc = 0u64;
    // Root value in memory word 0; middles write memory words 1..=width.
    out.push(TraceRecord::store(pc, 0, Loc::int(1), None));
    pc += 1;
    for i in 0..width {
        out.push(TraceRecord::load(pc, 0, None, Loc::int(2)));
        pc += 1;
        out.push(TraceRecord::store(pc, 1 + i as u64, Loc::int(2), None));
        pc += 1;
    }
    // Reduction tree over memory words.
    let mut frontier: Vec<u64> = (1..=width as u64).collect();
    let mut next_word = width as u64 + 1;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            out.push(TraceRecord::load(pc, pair[0], None, Loc::int(3)));
            pc += 1;
            out.push(TraceRecord::load(pc, pair[1], None, Loc::int(4)));
            pc += 1;
            out.push(TraceRecord::compute(
                pc,
                OpClass::IntAlu,
                &[Loc::int(3), Loc::int(4)],
                Loc::int(5),
            ));
            pc += 1;
            out.push(TraceRecord::store(pc, next_word, Loc::int(5), None));
            pc += 1;
            next.push(next_word);
            next_word += 1;
        }
        frontier = next;
    }
    out
}

/// A counted loop kernel: `iterations` passes, each executing `body_ops`
/// independent ALU operations plus the loop-counter update and back-branch
/// the paper identifies as the recurrence "successive independent
/// iterations unroll around".
///
/// At the dataflow limit the critical path is `iterations` (the counter
/// chain) and the available parallelism approaches `body_ops + 1`.
pub fn counted_loop(iterations: usize, body_ops: usize) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(iterations * (body_ops + 2));
    let mut pc = 0u64;
    for _ in 0..iterations {
        for b in 0..body_ops {
            // Independent work: overwrites rotate through registers 2..30.
            out.push(TraceRecord::compute(
                pc,
                OpClass::IntAlu,
                &[],
                Loc::int(2 + (b % 28) as u8),
            ));
            pc += 1;
        }
        // Counter update (the recurrence) and the loop branch.
        out.push(TraceRecord::compute(
            pc,
            OpClass::IntAlu,
            &[Loc::int(1)],
            Loc::int(1),
        ));
        pc += 1;
        out.push(TraceRecord::branch_outcome(pc, &[Loc::int(1)], true, 0));
        pc += 1;
    }
    out
}

/// A pointer chase through memory: `n` loads where each load's address is
/// the value produced by the previous one — the serial pattern of linked
/// lists and of the xlisp interpreter's `prog` recurrence.
///
/// Critical path `n` (loads are unit latency), available parallelism 1.
pub fn pointer_chase(n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord::load(i as u64, i as u64, Some(Loc::int(1)), Loc::int(1)))
        .collect()
}

/// A producer/consumer ring through memory: `rounds` alternations where a
/// store publishes a value and a load consumes it, through `slots` buffer
/// words reused round-robin.
///
/// With memory renaming only the store→load true chains remain; without it
/// the slot reuse also orders rounds `slots` apart.
pub fn producer_consumer(rounds: usize, slots: usize) -> Vec<TraceRecord> {
    assert!(slots > 0, "need at least one buffer slot");
    let mut out = Vec::with_capacity(rounds * 3);
    let mut pc = 0u64;
    for r in 0..rounds {
        let slot = (r % slots) as u64;
        out.push(TraceRecord::compute(pc, OpClass::IntAlu, &[], Loc::int(2)));
        pc += 1;
        out.push(TraceRecord::store(pc, slot, Loc::int(2), None));
        pc += 1;
        out.push(TraceRecord::load(pc, slot, None, Loc::int(3)));
        pc += 1;
    }
    out
}

/// A deterministic pseudo-random trace for differential and property tests.
///
/// Operations are drawn from ALU/load/store/branch/syscall classes over a
/// small register file and memory, with dependencies arising naturally from
/// location reuse. The same `(n, seed)` pair always yields the same trace.
pub fn random_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let pc = i as u64;
        let reg = |rng: &mut SplitMix64| Loc::int(1 + (rng.next() % 8) as u8);
        let addr = |rng: &mut SplitMix64| rng.next() % 32;
        let rec = match rng.next() % 100 {
            0..=39 => {
                let a = reg(&mut rng);
                let b = reg(&mut rng);
                let d = reg(&mut rng);
                TraceRecord::compute(pc, OpClass::IntAlu, &[a, b], d)
            }
            40..=54 => TraceRecord::load(pc, addr(&mut rng), Some(reg(&mut rng)), reg(&mut rng)),
            55..=69 => TraceRecord::store(pc, addr(&mut rng), reg(&mut rng), Some(reg(&mut rng))),
            70..=79 => {
                let a = reg(&mut rng);
                let d = reg(&mut rng);
                TraceRecord::compute(pc, OpClass::IntMul, &[a, d], d)
            }
            80..=89 => {
                let a = Loc::fp((rng.next() % 8) as u8);
                let b = Loc::fp((rng.next() % 8) as u8);
                let d = Loc::fp((rng.next() % 8) as u8);
                TraceRecord::compute(pc, OpClass::FpMul, &[a, b], d)
            }
            90..=97 => TraceRecord::branch(pc, &[reg(&mut rng)]),
            _ => TraceRecord::syscall(pc, &[], None),
        };
        out.push(rec);
    }
    out
}

/// Minimal deterministic PRNG (SplitMix64) so synthetic traces need no
/// external dependency in non-test builds.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_traces_have_eight_instructions() {
        assert_eq!(figure1().len(), 8);
        assert_eq!(figure2().len(), 8);
    }

    #[test]
    fn figure2_differs_from_figure1_only_in_registers() {
        let classes1: Vec<_> = figure1().iter().map(|r| r.class()).collect();
        let classes2: Vec<_> = figure2().iter().map(|r| r.class()).collect();
        assert_eq!(classes1, classes2);
        assert_ne!(figure1(), figure2());
    }

    #[test]
    fn chain_links_consecutive_ops() {
        let t = chain(5);
        assert_eq!(t.len(), 5);
        assert!(t[0].srcs().is_empty());
        for rec in &t[1..] {
            assert_eq!(rec.srcs(), &[Loc::int(1)]);
        }
    }

    #[test]
    fn independent_ops_have_no_sources() {
        for rec in independent(40) {
            assert!(rec.srcs().is_empty());
        }
    }

    #[test]
    fn interleaved_chains_dimensions() {
        let t = interleaved_chains(62, 3);
        assert_eq!(t.len(), 62 * 3);
    }

    #[test]
    #[should_panic(expected = "chains must be in")]
    fn too_many_chains_panics() {
        interleaved_chains(63, 1);
    }

    #[test]
    fn diamond_contains_width_middles() {
        let t = diamond(4);
        let stores = t.iter().filter(|r| r.class() == OpClass::Store).count();
        // Root store + 4 middle stores + 3 reduction stores.
        assert_eq!(stores, 8);
    }

    #[test]
    fn counted_loop_shape() {
        let t = counted_loop(10, 4);
        assert_eq!(t.len(), 10 * 6);
        let branches = t.iter().filter(|r| r.class() == OpClass::Branch).count();
        assert_eq!(branches, 10);
        assert!(t
            .iter()
            .filter(|r| r.class() == OpClass::Branch)
            .all(|r| r.branch_info().unwrap().taken));
    }

    #[test]
    fn pointer_chase_is_serial() {
        let t = pointer_chase(5);
        assert_eq!(t.len(), 5);
        for rec in &t {
            assert_eq!(rec.class(), OpClass::Load);
            assert_eq!(rec.dest(), Some(Loc::int(1)));
        }
    }

    #[test]
    fn producer_consumer_cycles_slots() {
        let t = producer_consumer(6, 2);
        assert_eq!(t.len(), 18);
        let stores: Vec<u64> = t
            .iter()
            .filter(|r| r.class() == OpClass::Store)
            .map(|r| r.mem_addr().unwrap())
            .collect();
        assert_eq!(stores, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one buffer slot")]
    fn producer_consumer_needs_slots() {
        producer_consumer(1, 0);
    }

    #[test]
    fn random_trace_is_deterministic() {
        assert_eq!(random_trace(100, 7), random_trace(100, 7));
        assert_ne!(random_trace(100, 7), random_trace(100, 8));
    }

    #[test]
    fn random_trace_has_requested_length() {
        assert_eq!(random_trace(257, 1).len(), 257);
    }
}

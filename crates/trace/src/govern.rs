//! Resource governors for untrusted input.
//!
//! Every byte-consuming entry point in the toolkit — the trace decoder, the
//! resync reader, the checkpoint loader, the text-trace ingester, the asm
//! parser — can be handed bytes produced by software we do not control. A
//! hostile (or merely buggy) producer must not be able to make the process
//! allocate unbounded memory, spin forever, or panic. The
//! [`ResourceGovernor`] is the single knob for all of those: it carries hard
//! caps on record counts, per-allocation sizes, declared lengths, cumulative
//! decode bytes, and wall-clock time, and every violation surfaces as a
//! typed [`LimitViolation`] rather than an abort.
//!
//! The cardinal rule the governor enforces: **check a declared length
//! against the cap before allocating for it.** A checkpoint that *declares*
//! a four-gigabyte live well is rejected while it is still just an eight-byte
//! varint.
//!
//! Defaults are generous — far above anything the paper's ten workloads
//! produce — so trusted pipelines never notice the governor. Operators can
//! tighten (or loosen) every limit via `PARAGRAPH_MAX_*` environment
//! variables; see [`Limits::from_env`].

use std::fmt;
use std::time::{Duration, Instant};

/// Hard resource caps applied while decoding untrusted input.
///
/// Construct with [`Limits::default`] (generous), [`Limits::strict`]
/// (tight, for fuzzing), or [`Limits::from_env`] (defaults plus operator
/// overrides), then adjust fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of records the reader will deliver.
    pub max_records: u64,
    /// Maximum size, in bytes, of any single buffer allocated on behalf of
    /// the input (chunk payloads, checkpoint bodies, text lines).
    pub max_alloc_bytes: u64,
    /// Maximum value accepted for any declared length field (chunk payload
    /// length, varint-encoded counts, string/line lengths) before the
    /// bytes it describes are read.
    pub max_declared_len: u64,
    /// Cumulative budget, in bytes, of input the decoder may consume. This
    /// also bounds resync scanning through garbage regions.
    pub max_decode_bytes: u64,
    /// Optional wall-clock budget for the whole decode.
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_records: 1 << 40,
            max_alloc_bytes: 1 << 31,
            max_declared_len: 1 << 28,
            max_decode_bytes: 1 << 42,
            deadline: None,
        }
    }
}

impl Limits {
    /// Tight limits for fuzzing and adversarial tests: small allocations,
    /// few records, a short deadline. A fuzz case that would OOM or hang a
    /// default-governed reader fails fast and typed under these.
    pub fn strict() -> Limits {
        Limits {
            max_records: 1 << 16,
            max_alloc_bytes: 1 << 20,
            max_declared_len: 1 << 20,
            max_decode_bytes: 1 << 22,
            deadline: Some(Duration::from_secs(5)),
        }
    }

    /// Default limits with operator overrides applied from the environment.
    ///
    /// Recognized variables (all optional, all plain decimal):
    ///
    /// * `PARAGRAPH_MAX_RECORDS`
    /// * `PARAGRAPH_MAX_ALLOC_BYTES`
    /// * `PARAGRAPH_MAX_DECLARED_LEN`
    /// * `PARAGRAPH_MAX_DECODE_BYTES`
    /// * `PARAGRAPH_DEADLINE_MS` (0 disables the deadline)
    ///
    /// A malformed value (say `PARAGRAPH_MAX_RECORDS=1e6` — the variables
    /// take plain decimal, not scientific notation) falls back to the
    /// default for that limit **with a warning on stderr** — a typo must
    /// neither silently disable analysis nor silently run with a far more
    /// generous cap than the operator asked for. Long-running services
    /// should use [`Limits::from_env_checked`] instead and refuse to start
    /// on a malformed override.
    pub fn from_env() -> Limits {
        match Limits::from_env_checked() {
            Ok(limits) => limits,
            Err(errors) => {
                for e in &errors.errors {
                    eprintln!("warning: {e}; using the default for that limit");
                }
                errors.fallback
            }
        }
    }

    /// [`Limits::from_env`] that reports malformed overrides instead of
    /// falling back: `Err` carries one message per bad variable plus the
    /// limits that *would* apply if the bad values were ignored. One-shot
    /// commands warn and continue with the fallback; `paragraph serve`
    /// refuses to start, because a daemon that silently runs with generous
    /// defaults after an operator typo is a fail-open policy hole.
    ///
    /// # Errors
    ///
    /// [`EnvLimitErrors`] naming every unparsable variable and its value.
    pub fn from_env_checked() -> Result<Limits, EnvLimitErrors> {
        let mut limits = Limits::default();
        let mut errors = Vec::new();
        let mut var = |name: &'static str| -> Option<u64> {
            let raw = std::env::var(name).ok()?;
            match raw.trim().parse() {
                Ok(v) => Some(v),
                Err(_) => {
                    errors.push(format!("{name}={raw:?} is not a plain decimal integer"));
                    None
                }
            }
        };
        if let Some(v) = var("PARAGRAPH_MAX_RECORDS") {
            limits.max_records = v;
        }
        if let Some(v) = var("PARAGRAPH_MAX_ALLOC_BYTES") {
            limits.max_alloc_bytes = v;
        }
        if let Some(v) = var("PARAGRAPH_MAX_DECLARED_LEN") {
            limits.max_declared_len = v;
        }
        if let Some(v) = var("PARAGRAPH_MAX_DECODE_BYTES") {
            limits.max_decode_bytes = v;
        }
        if let Some(v) = var("PARAGRAPH_DEADLINE_MS") {
            limits.deadline = (v > 0).then(|| Duration::from_millis(v));
        }
        if errors.is_empty() {
            Ok(limits)
        } else {
            Err(EnvLimitErrors {
                errors,
                fallback: limits,
            })
        }
    }
}

/// Malformed `PARAGRAPH_MAX_*` / `PARAGRAPH_DEADLINE_MS` overrides found
/// by [`Limits::from_env_checked`]: every bad variable, plus the limits
/// that apply when the bad values are ignored (for callers that choose to
/// warn and degrade rather than refuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvLimitErrors {
    /// One human-readable message per unparsable variable.
    pub errors: Vec<String>,
    /// The limits with every *valid* override applied and every malformed
    /// one left at its default.
    pub fallback: Limits,
}

impl fmt::Display for EnvLimitErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed limit override(s): {}", self.errors.join("; "))
    }
}

impl std::error::Error for EnvLimitErrors {}

/// A resource limit was exceeded while decoding untrusted input.
///
/// Names the limit that tripped, what the input asked for, and the cap it
/// ran into — enough for an operator to decide whether the input is hostile
/// or the cap merely needs raising.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitViolation {
    /// Stable machine-readable name of the limit, e.g. `"max-declared-len"`.
    pub limit: &'static str,
    /// What was being measured, e.g. `"chunk payload length"`.
    pub what: &'static str,
    /// The value the input declared or reached.
    pub actual: u64,
    /// The configured cap it exceeded.
    pub cap: u64,
}

impl fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} exceeds the {} limit of {}",
            self.what, self.actual, self.limit, self.cap
        )
    }
}

impl std::error::Error for LimitViolation {}

/// Enforces a set of [`Limits`] over the lifetime of one decode.
///
/// The governor is stateful: it tracks how many records have been
/// delivered, how many input bytes have been consumed, the wall-clock start
/// time, and the largest single allocation charged so far (so tests can
/// assert that no allocation exceeded the cap no matter what the input
/// declared).
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    limits: Limits,
    started: Instant,
    records: u64,
    peak_alloc: u64,
}

impl Default for ResourceGovernor {
    fn default() -> ResourceGovernor {
        ResourceGovernor::new(Limits::default())
    }
}

impl ResourceGovernor {
    /// Builds a governor enforcing `limits`, with the wall clock starting
    /// now.
    pub fn new(limits: Limits) -> ResourceGovernor {
        ResourceGovernor {
            limits,
            started: Instant::now(),
            records: 0,
            peak_alloc: 0,
        }
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The largest single allocation charged so far, in bytes.
    ///
    /// Invariant: never exceeds `limits.max_alloc_bytes`, because
    /// [`charge_alloc`](Self::charge_alloc) rejects before recording.
    pub fn peak_alloc(&self) -> u64 {
        self.peak_alloc
    }

    /// How many records have been charged so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Validates a declared length field *before* the bytes it describes
    /// are read or buffered.
    pub fn check_declared_len(
        &self,
        what: &'static str,
        declared: u64,
    ) -> Result<(), LimitViolation> {
        if declared > self.limits.max_declared_len {
            return Err(LimitViolation {
                limit: "max-declared-len",
                what,
                actual: declared,
                cap: self.limits.max_declared_len,
            });
        }
        Ok(())
    }

    /// Authorizes (and records) a single allocation of `bytes` bytes.
    /// Call this *before* the allocation; on `Err` the caller must not
    /// allocate.
    pub fn charge_alloc(&mut self, what: &'static str, bytes: u64) -> Result<(), LimitViolation> {
        if bytes > self.limits.max_alloc_bytes {
            return Err(LimitViolation {
                limit: "max-alloc-bytes",
                what,
                actual: bytes,
                cap: self.limits.max_alloc_bytes,
            });
        }
        self.peak_alloc = self.peak_alloc.max(bytes);
        Ok(())
    }

    /// Charges `n` delivered records against the record budget.
    pub fn charge_records(&mut self, n: u64) -> Result<(), LimitViolation> {
        self.records = self.records.saturating_add(n);
        if self.records > self.limits.max_records {
            return Err(LimitViolation {
                limit: "max-records",
                what: "record count",
                actual: self.records,
                cap: self.limits.max_records,
            });
        }
        Ok(())
    }

    /// Checks the cumulative count of input bytes consumed (the reader's
    /// absolute offset) against the decode budget.
    pub fn check_decode_bytes(&self, consumed: u64) -> Result<(), LimitViolation> {
        if consumed > self.limits.max_decode_bytes {
            return Err(LimitViolation {
                limit: "max-decode-bytes",
                what: "input bytes consumed",
                actual: consumed,
                cap: self.limits.max_decode_bytes,
            });
        }
        Ok(())
    }

    /// Checks the wall-clock deadline, if one is configured.
    pub fn check_deadline(&self) -> Result<(), LimitViolation> {
        let Some(deadline) = self.limits.deadline else {
            return Ok(());
        };
        let elapsed = self.started.elapsed();
        if elapsed > deadline {
            return Err(LimitViolation {
                limit: "deadline",
                what: "elapsed milliseconds",
                actual: elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
                cap: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let limits = Limits::default();
        assert!(limits.max_records >= 1 << 32);
        assert!(limits.max_alloc_bytes >= 1 << 30);
        assert!(limits.deadline.is_none());
    }

    #[test]
    fn declared_len_is_rejected_before_any_allocation() {
        let gov = ResourceGovernor::new(Limits::strict());
        let err = gov
            .check_declared_len("chunk payload length", u64::MAX)
            .unwrap_err();
        assert_eq!(err.limit, "max-declared-len");
        assert_eq!(gov.peak_alloc(), 0);
    }

    #[test]
    fn alloc_charges_track_the_peak_but_never_exceed_the_cap() {
        let mut gov = ResourceGovernor::new(Limits::strict());
        gov.charge_alloc("chunk frame", 512).unwrap();
        gov.charge_alloc("chunk frame", 128).unwrap();
        assert_eq!(gov.peak_alloc(), 512);
        let err = gov.charge_alloc("chunk frame", u64::MAX).unwrap_err();
        assert_eq!(err.limit, "max-alloc-bytes");
        assert_eq!(gov.peak_alloc(), 512, "rejected charge must not record");
    }

    #[test]
    fn record_budget_trips_once_exceeded() {
        let mut gov = ResourceGovernor::new(Limits {
            max_records: 10,
            ..Limits::default()
        });
        gov.charge_records(10).unwrap();
        let err = gov.charge_records(1).unwrap_err();
        assert_eq!(err.limit, "max-records");
        assert_eq!(err.actual, 11);
    }

    #[test]
    fn decode_byte_budget_bounds_consumption() {
        let gov = ResourceGovernor::new(Limits {
            max_decode_bytes: 100,
            ..Limits::default()
        });
        gov.check_decode_bytes(100).unwrap();
        let err = gov.check_decode_bytes(101).unwrap_err();
        assert_eq!(err.limit, "max-decode-bytes");
    }

    #[test]
    fn deadline_zero_duration_trips_immediately() {
        let gov = ResourceGovernor::new(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        let err = gov.check_deadline().unwrap_err();
        assert_eq!(err.limit, "deadline");
    }

    #[test]
    fn no_deadline_never_trips() {
        let gov = ResourceGovernor::default();
        gov.check_deadline().unwrap();
    }

    #[test]
    fn violation_display_names_limit_and_values() {
        let v = LimitViolation {
            limit: "max-declared-len",
            what: "chunk payload length",
            actual: 4096,
            cap: 1024,
        };
        let text = v.to_string();
        assert!(text.contains("chunk payload length"), "{text}");
        assert!(text.contains("4096"), "{text}");
        assert!(text.contains("max-declared-len"), "{text}");
    }

    #[test]
    fn env_overrides_parse_and_ignore_garbage() {
        // Not testing actual env mutation (process-global, racy across the
        // parallel test harness); exercise the parser shape via from_env on
        // the unset path instead. The malformed-override paths (warning,
        // fallback, serve's refusal to start) are covered end to end by
        // crates/cli/tests/serve_cli.rs, which owns its child's environment.
        let limits = Limits::from_env();
        assert_eq!(limits.max_declared_len, Limits::default().max_declared_len);
        let checked = Limits::from_env_checked();
        assert_eq!(checked, Ok(limits), "unset env must be clean");
    }

    #[test]
    fn env_limit_errors_display_names_every_variable() {
        let errs = EnvLimitErrors {
            errors: vec![
                "PARAGRAPH_MAX_RECORDS=\"1e6\" is not a plain decimal integer".to_owned(),
                "PARAGRAPH_DEADLINE_MS=\"fast\" is not a plain decimal integer".to_owned(),
            ],
            fallback: Limits::default(),
        };
        let text = errs.to_string();
        assert!(text.contains("PARAGRAPH_MAX_RECORDS"), "{text}");
        assert!(text.contains("PARAGRAPH_DEADLINE_MS"), "{text}");
        assert!(text.contains("malformed"), "{text}");
    }
}

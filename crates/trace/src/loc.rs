//! Storage locations named by trace records.

use paragraph_isa::{FpReg, IntReg, RegRef};
use std::fmt;

/// A storage location: an architectural register or a memory word.
///
/// Locations are the keys of the analyzer's live well: every value created
/// during execution is bound to the location that holds it, and storage
/// dependencies arise when a location is reused for a new value.
///
/// Memory is word-addressed (one 64-bit value per address), matching the VM.
///
/// # Examples
///
/// ```
/// use paragraph_trace::Loc;
///
/// assert!(Loc::int(4).is_reg());
/// assert!(Loc::mem(0x1000).is_mem());
/// assert_eq!(Loc::fp(2).to_string(), "f2");
/// assert_eq!(Loc::mem(64).to_string(), "[64]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Loc {
    /// An integer register.
    IntReg(IntReg),
    /// A floating-point register.
    FpReg(FpReg),
    /// A memory word at the given word address.
    Mem(u64),
}

impl Loc {
    /// An integer register location.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below 32.
    pub fn int(index: u8) -> Loc {
        match IntReg::new(index) {
            Some(reg) => Loc::IntReg(reg),
            None => panic!("integer register index {index} out of range"),
        }
    }

    /// A floating-point register location.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below 32.
    pub fn fp(index: u8) -> Loc {
        match FpReg::new(index) {
            Some(reg) => Loc::FpReg(reg),
            None => panic!("floating-point register index {index} out of range"),
        }
    }

    /// A memory-word location.
    pub fn mem(addr: u64) -> Loc {
        Loc::Mem(addr)
    }

    /// Whether this location is a register (of either file).
    pub fn is_reg(self) -> bool {
        matches!(self, Loc::IntReg(_) | Loc::FpReg(_))
    }

    /// Whether this location is a memory word.
    pub fn is_mem(self) -> bool {
        matches!(self, Loc::Mem(_))
    }

    /// The memory address, if this is a memory location.
    pub fn addr(self) -> Option<u64> {
        match self {
            Loc::Mem(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is the hardwired integer zero register, which never
    /// carries a dependency.
    pub fn is_zero_reg(self) -> bool {
        matches!(self, Loc::IntReg(r) if r.is_zero())
    }
}

impl From<RegRef> for Loc {
    fn from(r: RegRef) -> Loc {
        match r {
            RegRef::Int(r) => Loc::IntReg(r),
            RegRef::Fp(r) => Loc::FpReg(r),
        }
    }
}

impl From<IntReg> for Loc {
    fn from(r: IntReg) -> Loc {
        Loc::IntReg(r)
    }
}

impl From<FpReg> for Loc {
    fn from(r: FpReg) -> Loc {
        Loc::FpReg(r)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::IntReg(r) => r.fmt(f),
            Loc::FpReg(r) => r.fmt(f),
            Loc::Mem(a) => write!(f, "[{a}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Loc::int(0).is_reg());
        assert!(Loc::int(0).is_zero_reg());
        assert!(!Loc::int(1).is_zero_reg());
        assert!(!Loc::fp(0).is_zero_reg());
        assert!(Loc::mem(7).is_mem());
        assert_eq!(Loc::mem(7).addr(), Some(7));
        assert_eq!(Loc::int(7).addr(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        Loc::int(32);
    }

    #[test]
    fn reg_ref_conversion() {
        let r = RegRef::Int(IntReg::new(5).unwrap());
        assert_eq!(Loc::from(r), Loc::int(5));
        let f = RegRef::Fp(FpReg::new(6).unwrap());
        assert_eq!(Loc::from(f), Loc::fp(6));
    }

    #[test]
    fn ordering_groups_register_files() {
        // The derived ordering keeps int regs, fp regs and memory separate,
        // which report code relies on for stable grouping.
        assert!(Loc::int(31) < Loc::fp(0));
        assert!(Loc::fp(31) < Loc::mem(0));
    }
}

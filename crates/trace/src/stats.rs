//! First-order trace metrics (operation frequencies).

use crate::record::TraceRecord;
use paragraph_isa::OpClass;
use std::fmt;

/// Running first-order statistics over a trace.
///
/// These are the "simple first-order metrics of the dynamic execution, such
/// as operation frequencies" that the paper argues are necessary but not
/// sufficient; the toolkit reports them alongside the dependency analyses
/// (they populate Table 2's instruction counts).
///
/// # Examples
///
/// ```
/// use paragraph_trace::{Loc, TraceRecord, TraceStats};
/// use paragraph_isa::OpClass;
///
/// let mut stats = TraceStats::new();
/// stats.observe(&TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)));
/// stats.observe(&TraceRecord::branch(4, &[Loc::int(1)]));
/// assert_eq!(stats.total(), 2);
/// assert_eq!(stats.count(OpClass::IntAlu), 1);
/// assert_eq!(stats.placed(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    counts: [u64; OpClass::ALL.len()],
    fp_touching: u64,
    total: u64,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> TraceStats {
        TraceStats::default()
    }

    /// Folds one record into the statistics.
    pub fn observe(&mut self, record: &TraceRecord) {
        self.counts[record.class() as usize] += 1;
        self.total += 1;
        let touches_fp = record.class().is_fp()
            || record
                .dest()
                .is_some_and(|d| matches!(d, crate::Loc::FpReg(_)))
            || record
                .srcs()
                .iter()
                .any(|s| matches!(s, crate::Loc::FpReg(_)));
        if record.creates_value() && touches_fp {
            self.fp_touching += 1;
        }
    }

    /// Computes statistics for an entire iterator of records.
    pub fn from_records<'a, I>(records: I) -> TraceStats
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut stats = TraceStats::new();
        for r in records {
            stats.observe(r);
        }
        stats
    }

    /// Total dynamic instructions observed (all classes).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Dynamic instructions of one class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class as usize]
    }

    /// Dynamic instructions that the analyzer places in the DDG
    /// (value-creating classes).
    pub fn placed(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.creates_value())
            .map(|&c| self.count(c))
            .sum()
    }

    /// Number of system calls observed (the paper reports these in Table 3).
    pub fn syscalls(&self) -> u64 {
        self.count(OpClass::Syscall)
    }

    /// Fraction of dynamic instructions in `class`, in `[0, 1]`.
    ///
    /// Returns 0 for an empty trace.
    pub fn frequency(&self, class: OpClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(class) as f64 / self.total as f64
        }
    }

    /// Fraction of *placed* (value-creating) operations that touch the
    /// floating-point state: FP arithmetic plus loads/stores of FP
    /// registers. Returns 0 for an empty trace.
    pub fn fp_fraction(&self) -> f64 {
        let placed = self.placed();
        if placed == 0 {
            return 0.0;
        }
        self.fp_touching as f64 / placed as f64
    }

    /// Classifies the trace the way the paper's Table 2 classifies its
    /// benchmarks: `"Int"`, `"FP"`, or `"Int and FP"`.
    ///
    /// The thresholds are simple: below 5% FP-touching operations is an
    /// integer benchmark, above 46% a floating-point benchmark, in between
    /// a mix (spice2g6's index-chasing keeps it in the band, as in the
    /// paper's "Int and FP" label).
    pub fn benchmark_type(&self) -> &'static str {
        let fp = self.fp_fraction();
        if fp < 0.05 {
            "Int"
        } else if fp > 0.46 {
            "FP"
        } else {
            "Int and FP"
        }
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.fp_touching += other.fp_touching;
        self.total += other.total;
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} instructions", self.total)?;
        for class in OpClass::ALL {
            let n = self.count(class);
            if n > 0 {
                writeln!(f, "{n:>12} {class} ({:.2}%)", 100.0 * self.frequency(class))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;

    fn alu(pc: u64) -> TraceRecord {
        TraceRecord::compute(pc, OpClass::IntAlu, &[], Loc::int(1))
    }

    #[test]
    fn counts_accumulate_by_class() {
        let records = vec![
            alu(0),
            alu(1),
            TraceRecord::branch(2, &[Loc::int(1)]),
            TraceRecord::syscall(3, &[], None),
        ];
        let stats = TraceStats::from_records(&records);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.count(OpClass::IntAlu), 2);
        assert_eq!(stats.count(OpClass::Branch), 1);
        assert_eq!(stats.syscalls(), 1);
        assert_eq!(stats.placed(), 3);
    }

    #[test]
    fn frequency_of_empty_trace_is_zero() {
        let stats = TraceStats::new();
        assert_eq!(stats.frequency(OpClass::IntAlu), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let a = TraceStats::from_records(&[alu(0)]);
        let mut b = TraceStats::from_records(&[alu(1), alu(2)]);
        b.merge(&a);
        assert_eq!(b.total(), 3);
        assert_eq!(b.count(OpClass::IntAlu), 3);
    }

    #[test]
    fn benchmark_type_thresholds() {
        let mut stats = TraceStats::new();
        for i in 0..100 {
            stats.observe(&alu(i));
        }
        assert_eq!(stats.benchmark_type(), "Int");
        for i in 0..20 {
            stats.observe(&TraceRecord::compute(i, OpClass::FpMul, &[], Loc::fp(1)));
        }
        assert_eq!(stats.benchmark_type(), "Int and FP");
        for i in 0..200 {
            stats.observe(&TraceRecord::compute(i, OpClass::FpAdd, &[], Loc::fp(2)));
        }
        assert_eq!(stats.benchmark_type(), "FP");
    }

    #[test]
    fn display_reports_total_and_classes() {
        let stats = TraceStats::from_records(&[alu(0)]);
        let text = stats.to_string();
        assert!(text.contains("1 instructions"));
        assert!(text.contains("int-alu"));
    }
}

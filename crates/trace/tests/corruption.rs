//! Property tests for the recovery reader: no mutation of a valid v2
//! stream may panic the reader, lose accounting, or fabricate records.

use paragraph_trace::binary::{RecoveryStats, TraceReader, TraceWriter};
use paragraph_trace::faultinject::FaultPlan;
use paragraph_trace::{synthetic, SegmentMap, TraceRecord};
use proptest::prelude::*;

/// Serializes `records` as a v2 stream with the given chunk size.
fn encode(records: &[TraceRecord], chunk_records: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer =
        TraceWriter::with_chunk_records(&mut buf, SegmentMap::all_data(), chunk_records)
            .expect("Vec writes cannot fail");
    for record in records {
        writer.write_record(record).expect("Vec writes cannot fail");
    }
    writer.finish().expect("Vec writes cannot fail");
    buf
}

/// Drains `bytes` in recovery mode. Returns the delivered records and the
/// damage tally; an unopenable header counts as zero of each.
fn drain(bytes: &[u8]) -> (Vec<TraceRecord>, RecoveryStats) {
    match TraceReader::with_recovery(bytes) {
        Ok(mut reader) => {
            let mut records = Vec::new();
            for item in reader.by_ref() {
                match item {
                    Ok(record) => records.push(record),
                    Err(_) => break,
                }
            }
            (records, reader.recovery_stats())
        }
        Err(_) => (Vec::new(), RecoveryStats::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary point mutations: the reader terminates, its stats agree
    /// with what it delivered, and it never claims more records than were
    /// written. Delivered records are genuine, never decoded garbage.
    #[test]
    fn point_mutations_are_survived(
        trace_seed in any::<u64>(),
        len in 1usize..300,
        chunk in 1u64..48,
        edits in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..24),
    ) {
        let records = synthetic::random_trace(len, trace_seed);
        let mut bytes = encode(&records, chunk);
        for &(pos, value) in &edits {
            let i = (pos as usize) % bytes.len();
            bytes[i] = value;
        }
        let (delivered, stats) = drain(&bytes);
        prop_assert_eq!(delivered.len() as u64, stats.records_read);
        prop_assert!(stats.records_read + stats.records_skipped <= records.len() as u64);
        for record in &delivered {
            prop_assert!(records.contains(record), "recovery fabricated a record");
        }
    }

    /// Truncation at any point: what survives is a strict prefix of the
    /// written trace (whole chunks only, in order, nothing invented).
    #[test]
    fn truncation_yields_a_prefix(
        trace_seed in any::<u64>(),
        len in 1usize..300,
        chunk in 1u64..48,
        cut in any::<u64>(),
    ) {
        let records = synthetic::random_trace(len, trace_seed);
        let bytes = encode(&records, chunk);
        let keep = (cut as usize) % (bytes.len() + 1);
        let (delivered, stats) = drain(&bytes[..keep]);
        prop_assert_eq!(delivered.len() as u64, stats.records_read);
        prop_assert_eq!(&delivered[..], &records[..delivered.len()]);
    }

    /// Whole fault campaigns (flips + garbage + duplication + truncation):
    /// accounting never exceeds written plus injected duplicates.
    #[test]
    fn fault_campaigns_are_accounted(
        trace_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        len in 1usize..300,
        chunk in 1u64..48,
        flip in 0u32..80,
        garbage in 0u32..40,
        dup in 0u32..30,
        keep in 50u32..=100,
    ) {
        let records = synthetic::random_trace(len, trace_seed);
        let bytes = encode(&records, chunk);
        let plan = FaultPlan::new(fault_seed)
            .bit_flip_rate(f64::from(flip) / 10_000.0)
            .garbage_rate(f64::from(garbage) / 10_000.0)
            .chunk_dup_rate(f64::from(dup) / 100.0)
            .truncate_to(f64::from(keep) / 100.0);
        let (damaged, report) = plan.apply(&bytes);
        let (delivered, stats) = drain(&damaged);
        prop_assert_eq!(delivered.len() as u64, stats.records_read);
        prop_assert!(
            stats.records_read + stats.records_skipped
                <= records.len() as u64 + report.duplicated_records
        );
    }
}

//! End-to-end rejection checks against the built `paragraph` binary.
//!
//! The front-door contract (ISSUE tentpole): malformed or hostile input to
//! `ingest`, `analyze`, `--resume`, and the assembler always exits with the
//! typed rejection code — 7 for a resource-governor refusal (with a
//! machine-readable JSON report on stderr), 4 for plain corruption — never
//! a panic, never an unbounded allocation. The adversarial payloads here
//! *declare* absurd lengths; if any of them were believed, the process
//! would try to allocate gigabytes and the test would OOM or time out.

use std::path::PathBuf;
use std::process::{Command, Output};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-reject-{}-{name}", std::process::id()));
    path
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A v2 trace whose first chunk *declares* `count` records in `payload_len`
/// payload bytes it never supplies. The CRC is garbage on purpose: the
/// governor must fire on the declaration, before any CRC check could.
fn trace_declaring(count: u64, payload_len: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"PGTR");
    bytes.push(2); // version 2
    bytes.push(0); // segment map: heap base 0
    bytes.push(0); // segment map: stack floor 0
    bytes.extend_from_slice(&paragraph_trace::binary::SYNC_MARKER);
    push_varint(&mut bytes, 0); // first record index
    push_varint(&mut bytes, count);
    push_varint(&mut bytes, payload_len);
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // CRC, never reached
    bytes
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("process was killed by a signal")
}

#[test]
fn analyze_rejects_a_trace_declaring_a_huge_chunk() {
    let path = scratch("huge-chunk.pgtr");
    // A 1 MiB declared payload: structurally plausible (under the format's
    // own 256 MiB hard cap, so only the governor can refuse it), but over
    // the 4 KiB policy cap set below.
    std::fs::write(&path, trace_declaring(1000, 1 << 20)).expect("write scratch trace");

    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(["analyze", "--trace", path.to_str().expect("utf-8 path")])
        .env("PARAGRAPH_MAX_DECLARED_LEN", "4096")
        .output()
        .expect("failed to spawn the paragraph binary");
    assert_eq!(
        exit_code(&out),
        7,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("input rejected"), "stderr: {stderr}");
    assert!(
        stderr.contains("\"error\":\"input-rejected\""),
        "missing JSON report: {stderr}"
    );
    assert!(
        stderr.contains("\"limit\":\"max-declared-len\""),
        "stderr: {stderr}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovery_mode_still_rejects_limit_violations() {
    // `--recover` resynchronizes past damage, but a governor refusal is a
    // policy decision, not damage — it must stay terminal.
    let path = scratch("huge-chunk-recover.pgtr");
    std::fs::write(&path, trace_declaring(1000, 1 << 20)).expect("write scratch trace");

    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args([
            "analyze",
            "--recover",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ])
        .env("PARAGRAPH_MAX_DECLARED_LEN", "4096")
        .output()
        .expect("failed to spawn the paragraph binary");
    assert_eq!(
        exit_code(&out),
        7,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn plain_corruption_still_exits_4() {
    let path = scratch("corrupt.pgtr");
    std::fs::write(&path, b"PGTR\x02\x00\x00garbage that is not a chunk")
        .expect("write scratch trace");

    let out = paragraph(&["analyze", "--trace", path.to_str().expect("utf-8 path")]);
    assert_eq!(
        exit_code(&out),
        4,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_checkpoint_declaring_a_huge_live_well() {
    // Well-formed PGCP framing whose body declares a 4-billion-entry
    // memory table. The loader must reject the declaration (exit 7)
    // without sizing anything from it.
    let ckpt = scratch("huge-well.pgcp");
    let out_trace = scratch("resume-input.pgtr");
    // A real trace for `--resume` to analyze (the checkpoint is read first).
    let gen = paragraph(&[
        "trace",
        "--workload",
        "matrix300",
        "--size",
        "4",
        "--out",
        out_trace.to_str().expect("utf-8 path"),
    ]);
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    // Body: config fingerprint (wrong is fine — the length check fires
    // first only if it comes first; fingerprint is checked earlier, so use
    // an oversized *body* instead, which the alloc cap rejects up front).
    let body = vec![0u8; 64 << 20]; // 64 MiB of zeros
    let mut file = Vec::new();
    file.extend_from_slice(b"PGCP");
    file.push(2);
    file.extend_from_slice(&body);
    file.extend_from_slice(&[0, 0, 0, 0]);
    std::fs::write(&ckpt, &file).expect("write scratch checkpoint");

    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args([
            "analyze",
            "--trace",
            out_trace.to_str().expect("utf-8 path"),
            "--resume",
            ckpt.to_str().expect("utf-8 path"),
        ])
        // Tighten the alloc cap so the oversized body is a governor
        // refusal, demonstrating the env override end to end.
        .env("PARAGRAPH_MAX_ALLOC_BYTES", "1048576")
        .output()
        .expect("failed to spawn the paragraph binary");
    assert_eq!(
        exit_code(&out),
        7,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"what\":\"checkpoint body\""),
        "stderr: {stderr}"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&out_trace);
}

#[test]
fn run_rejects_an_asm_file_declaring_huge_space() {
    let path = scratch("hostile.s");
    std::fs::write(&path, ".data\nbuf: .space 1099511627776\n.text\nhalt\n")
        .expect("write scratch asm");

    let out = paragraph(&["run", "--asm", path.to_str().expect("utf-8 path")]);
    assert_eq!(
        exit_code(&out),
        7,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"limit\":\"max-data-words\""),
        "stderr: {stderr}"
    );

    // An ordinary syntax error stays an analysis failure (exit 5).
    std::fs::write(&path, ".text\nfrobnicate r1\n").expect("write scratch asm");
    let out = paragraph(&["run", "--asm", path.to_str().expect("utf-8 path")]);
    assert_eq!(
        exit_code(&out),
        5,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn ingest_converts_text_and_rejects_hostile_lines() {
    let text = scratch("ok.pgtxt");
    let out_trace = scratch("ok.pgtr");
    std::fs::write(
        &text,
        "# a tiny trace\n!segments heap=4096 stack=1048576\n\
         0x400000 int-alu r1 r2 -> r3\n0x400004 load r3 m:4096 -> r4\n",
    )
    .expect("write scratch text");

    let ok = paragraph(&[
        "ingest",
        "--text",
        text.to_str().expect("utf-8 path"),
        "--out",
        out_trace.to_str().expect("utf-8 path"),
    ]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("2 records"), "stdout: {stdout}");

    // The converted trace analyzes cleanly.
    let analyzed = paragraph(&[
        "analyze",
        "--trace",
        out_trace.to_str().expect("utf-8 path"),
    ]);
    assert!(
        analyzed.status.success(),
        "{}",
        String::from_utf8_lossy(&analyzed.stderr)
    );

    // A syntax error is corruption: exit 4, with the line number.
    std::fs::write(&text, "0x400000 not-a-class r1 -> r2\n").expect("write scratch text");
    let bad = paragraph(&[
        "ingest",
        "--text",
        text.to_str().expect("utf-8 path"),
        "--out",
        out_trace.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        exit_code(&bad),
        4,
        "stderr: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("line 1"),
        "stderr: {}",
        String::from_utf8_lossy(&bad.stderr)
    );

    // A single line longer than the declared-length cap is a governor
    // refusal: exit 7, and `--reject-report` captures the JSON.
    let report = scratch("why.json");
    let mut huge = Vec::new();
    huge.extend_from_slice(b"0x400000 int-alu ");
    huge.resize(2 << 20, b'x');
    std::fs::write(&text, &huge).expect("write scratch text");
    let rejected = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args([
            "ingest",
            "--text",
            text.to_str().expect("utf-8 path"),
            "--out",
            out_trace.to_str().expect("utf-8 path"),
            "--reject-report",
            report.to_str().expect("utf-8 path"),
        ])
        .env("PARAGRAPH_MAX_DECLARED_LEN", "65536")
        .output()
        .expect("failed to spawn the paragraph binary");
    assert_eq!(
        exit_code(&rejected),
        7,
        "stderr: {}",
        String::from_utf8_lossy(&rejected.stderr)
    );
    let written = std::fs::read_to_string(&report).expect("reject report file");
    assert!(
        written.contains("\"error\":\"input-rejected\""),
        "report: {written}"
    );

    let _ = std::fs::remove_file(&text);
    let _ = std::fs::remove_file(&out_trace);
    let _ = std::fs::remove_file(&report);
}

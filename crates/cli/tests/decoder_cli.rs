//! End-to-end byte-identity checks for the trace input backends.
//!
//! `--mmap` / `--no-mmap` / `--no-decode-ahead` select *how* trace bytes
//! reach the decoder, never *what* is decoded: for every combination of
//! {buffered, mapped} × {decode-ahead on, off} × {--jobs 1, 4}, over
//! clean and damaged (`--recover`) traces, analyze/sweep/ingest output
//! must be byte-identical. These tests drive the built `paragraph`
//! binary; the engine-level differentials live in `paragraph-trace`'s
//! `source` module and the root `decoder_backends` suite.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use paragraph_trace::binary::TraceWriter;
use paragraph_trace::{synthetic, SegmentMap};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-decoder-{}-{name}", std::process::id()));
    path
}

/// Writes `n` records of the deterministic random trace (which includes
/// conservative syscalls, so `--jobs` has cut points) to a scratch file.
fn write_random_trace(name: &str, n: usize, seed: u64) -> PathBuf {
    let path = scratch(name);
    let file = File::create(&path).expect("create scratch trace");
    let mut writer =
        TraceWriter::new(BufWriter::new(file), SegmentMap::all_data()).expect("trace header");
    for record in synthetic::random_trace(n, seed) {
        writer.write_record(&record).expect("trace record");
    }
    writer.finish().expect("trace finish");
    path
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs `analyze` on `trace` with extra flags, returning stdout bytes.
fn analyze_stdout(trace: &Path, extra: &[&str]) -> Vec<u8> {
    let trace_str = trace.to_str().expect("utf-8 path");
    let mut args = vec!["analyze", "--trace", trace_str];
    args.extend_from_slice(extra);
    let out = paragraph(&args);
    assert_ok(&out, &format!("analyze {extra:?}"));
    out.stdout
}

#[test]
fn analyze_report_is_byte_identical_across_the_backend_matrix() {
    let trace = write_random_trace("matrix", 30_000, 42);
    let reference = analyze_stdout(&trace, &["--no-mmap", "--no-decode-ahead", "--jobs", "1"]);
    assert!(!reference.is_empty());
    for backend in [&["--mmap"][..], &["--no-mmap"][..], &[][..]] {
        for ahead in [&["--no-decode-ahead"][..], &[][..]] {
            for jobs in [&["--jobs", "1"][..], &["--jobs", "4"][..], &[][..]] {
                let mut extra: Vec<&str> = Vec::new();
                extra.extend_from_slice(backend);
                extra.extend_from_slice(ahead);
                extra.extend_from_slice(jobs);
                let stdout = analyze_stdout(&trace, &extra);
                assert_eq!(reference, stdout, "analyze stdout diverged under {extra:?}");
            }
        }
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn recover_mode_matches_across_backends() {
    let trace = write_random_trace("recover", 20_000, 43);
    // Flip one byte mid-file: recovery skips the damaged chunk the same
    // way no matter how the bytes were read.
    let mut bytes = std::fs::read(&trace).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&trace, &bytes).expect("write damaged trace");

    let trace_str = trace.to_str().expect("utf-8 path");
    let mut outputs = Vec::new();
    for backend in [&["--mmap"][..], &["--no-mmap"][..]] {
        let mut args = vec!["analyze", "--trace", trace_str, "--recover"];
        args.extend_from_slice(backend);
        let out = paragraph(&args);
        assert_ok(&out, &format!("analyze --recover {backend:?}"));
        outputs.push((out.stdout, out.stderr));
    }
    assert_eq!(outputs[0], outputs[1], "recovery output diverged");
    // The damage warning itself must appear, with identical accounting.
    let stderr = String::from_utf8_lossy(&outputs[0].1);
    assert!(
        stderr.contains("trace damage"),
        "expected a damage warning, got: {stderr}"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn corrupt_trace_fails_identically_across_backends() {
    let trace = write_random_trace("corrupt", 20_000, 44);
    let mut bytes = std::fs::read(&trace).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&trace, &bytes).expect("write damaged trace");

    let trace_str = trace.to_str().expect("utf-8 path");
    let mut outputs = Vec::new();
    for backend in [
        &["--mmap"][..],
        &["--no-mmap"][..],
        &["--no-mmap", "--no-decode-ahead"][..],
    ] {
        let mut args = vec!["analyze", "--trace", trace_str];
        args.extend_from_slice(backend);
        let out = paragraph(&args);
        assert_eq!(
            out.status.code(),
            Some(4),
            "corrupt trace must exit 4 under {backend:?}"
        );
        outputs.push(out.stderr);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "corruption error diverged (mmap vs buffered)"
    );
    assert_eq!(
        outputs[1], outputs[2],
        "corruption error diverged (decode-ahead on vs off)"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn sweep_is_byte_identical_across_backends() {
    let trace = write_random_trace("sweep", 12_000, 45);
    let trace_str = trace.to_str().expect("utf-8 path");
    let mut outputs = Vec::new();
    for backend in [&["--mmap"][..], &["--no-mmap"][..]] {
        let mut args = vec!["sweep", "--trace", trace_str, "--windows", "10,1000"];
        args.extend_from_slice(backend);
        let out = paragraph(&args);
        assert_ok(&out, &format!("sweep {backend:?}"));
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "sweep output diverged");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn ingested_traces_analyze_identically_on_both_backends() {
    // Render a text trace, ingest it to binary, then analyze the result
    // through both backends: the whole conversion pipeline must be
    // backend-agnostic end to end.
    let records = synthetic::random_trace(2_000, 46);
    let text = paragraph_trace::ingest::render_trace(&records, SegmentMap::all_data());
    let text_path = scratch("ingest.txt");
    std::fs::write(&text_path, text).expect("write text trace");
    let bin_path = scratch("ingest.pgtr");

    let out = paragraph(&[
        "ingest",
        "--text",
        text_path.to_str().expect("utf-8 path"),
        "--out",
        bin_path.to_str().expect("utf-8 path"),
    ]);
    assert_ok(&out, "ingest");

    let mapped = analyze_stdout(&bin_path, &["--mmap"]);
    let buffered = analyze_stdout(&bin_path, &["--no-mmap", "--no-decode-ahead"]);
    assert_eq!(mapped, buffered, "ingested trace analysis diverged");
    let _ = std::fs::remove_file(&text_path);
    let _ = std::fs::remove_file(&bin_path);
}

#[test]
fn run_accepts_the_backend_flags_inertly() {
    // `run` consumes assembly, not a binary trace; the backend flags must
    // parse and change nothing.
    let asm_path = scratch("run.s");
    std::fs::write(&asm_path, ".text\nmain: li r8, 3\nhalt\n").expect("write asm");
    let asm_str = asm_path.to_str().expect("utf-8 path");
    let plain = paragraph(&["run", "--asm", asm_str]);
    assert_ok(&plain, "run");
    let flagged = paragraph(&["run", "--asm", asm_str, "--mmap", "--no-decode-ahead"]);
    assert_ok(&flagged, "run with backend flags");
    assert_eq!(plain.stdout, flagged.stdout, "run output diverged");
    let _ = std::fs::remove_file(&asm_path);
}

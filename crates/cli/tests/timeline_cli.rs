//! End-to-end flight-recorder checks against the built `paragraph` binary.
//!
//! The ISSUE's acceptance bar, verified from the outside: `--timeline-out`
//! emits valid Chrome trace-event JSON without perturbing stdout by a
//! single byte; the timeline a sweep emits is deterministic across worker
//! counts once timestamps and lane identity are normalized away; and the
//! `profile` subcommand summarizes, diffs, and gates bench history.

use paragraph_core::telemetry::tracefmt;
use std::path::PathBuf;
use std::process::{Command, Output};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-timeline-{}-{name}", std::process::id()));
    path
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn analyze_timeline_is_valid_and_stdout_is_unchanged() {
    let timeline = scratch("analyze.json");

    let plain = paragraph(&["analyze", "--workload", "matrix300", "--size", "4"]);
    assert!(
        plain.status.success(),
        "plain analyze failed: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let recorded = paragraph(&[
        "analyze",
        "--workload",
        "matrix300",
        "--size",
        "4",
        "--timeline-out",
        timeline.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        recorded.status.success(),
        "recorded analyze failed: {}",
        String::from_utf8_lossy(&recorded.stderr)
    );
    // The recorder must be invisible on stdout: report bytes identical.
    assert_eq!(
        plain.stdout, recorded.stdout,
        "--timeline-out changed the report on stdout"
    );
    let stderr = String::from_utf8_lossy(&recorded.stderr);
    assert!(
        stderr.contains("timeline written to"),
        "missing timeline notice: {stderr}"
    );

    // The artifact is well-formed Chrome trace-event JSON with the analyze
    // stages attributed: generation (or decode), the live-well loop, and
    // report finishing each get a slice.
    let text = read(&timeline);
    tracefmt::validate(&text).expect("timeline must validate");
    let events = tracefmt::parse_chrome_trace(&text).expect("timeline must parse");
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for stage in ["generate", "livewell", "report"] {
        assert!(names.contains(&stage), "missing {stage} slice: {names:?}");
    }

    let _ = std::fs::remove_file(&timeline);
}

#[test]
fn sweep_timeline_normalizes_identically_across_job_counts() {
    let one = scratch("sweep-j1.json");
    let eight = scratch("sweep-j8.json");
    for (jobs, path) in [("1", &one), ("8", &eight)] {
        let out = paragraph(&[
            "sweep",
            "--workloads",
            "xlisp,eqntott",
            "--windows",
            "16,64",
            "--fuel",
            "20000",
            "--jobs",
            jobs,
            "--timeline-out",
            path.to_str().expect("utf-8 temp path"),
        ]);
        assert!(
            out.status.success(),
            "sweep --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = tracefmt::normalized_events(&read(&one)).expect("jobs=1 timeline normalizes");
    let b = tracefmt::normalized_events(&read(&eight)).expect("jobs=8 timeline normalizes");
    assert_eq!(
        a, b,
        "sweep timelines must be identical after normalization"
    );
    // Sanity: the normalized stream still carries the per-cell slices (2
    // workloads x (2 windows + full) = 6) and both grid boundary markers.
    let cells = a.iter().filter(|l| l.contains("|sweep.cell|")).count();
    assert_eq!(cells, 6, "expected 6 cell slices: {a:?}");
    assert!(a.iter().any(|l| l.starts_with("i|sweep.start|")));
    assert!(a.iter().any(|l| l.starts_with("i|sweep.done|")));

    // A worker-count-dependent artifact (lane names, timestamps, counter
    // interleavings) sneaking back in would show up here first: profile
    // must also read both files.
    for path in [&one, &eight] {
        let profile = paragraph(&["profile", path.to_str().expect("utf-8 temp path")]);
        assert!(
            profile.status.success(),
            "profile failed: {}",
            String::from_utf8_lossy(&profile.stderr)
        );
        let table = String::from_utf8_lossy(&profile.stdout);
        assert!(table.contains("sweep.cell"), "missing stage row: {table}");
        assert!(table.contains("arena.hits"), "missing counters: {table}");
    }

    let _ = std::fs::remove_file(&one);
    let _ = std::fs::remove_file(&eight);
}

#[test]
fn profile_diffs_two_timelines() {
    let first = scratch("diff-a.json");
    let second = scratch("diff-b.json");
    for path in [&first, &second] {
        let out = paragraph(&[
            "analyze",
            "--workload",
            "matrix300",
            "--size",
            "4",
            "--timeline-out",
            path.to_str().expect("utf-8 temp path"),
        ]);
        assert!(out.status.success());
    }
    let diff = paragraph(&[
        "profile",
        first.to_str().expect("utf-8 temp path"),
        "--diff",
        second.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        diff.status.success(),
        "profile --diff failed: {}",
        String::from_utf8_lossy(&diff.stderr)
    );
    let out = String::from_utf8_lossy(&diff.stdout);
    assert!(out.contains("wall"), "diff lacks wall delta: {out}");
    assert!(out.contains("livewell"), "diff lacks stage rows: {out}");

    let _ = std::fs::remove_file(&first);
    let _ = std::fs::remove_file(&second);
}

#[test]
fn profile_rejects_malformed_timelines() {
    let bad = scratch("bad.json");
    std::fs::write(&bad, "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\"}]}")
        .expect("write scratch file");
    let out = paragraph(&["profile", bad.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(4), "malformed timeline must exit 4");
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn bench_compare_gates_on_regression() {
    let baseline = scratch("bench-base.json");
    let current = scratch("bench-cur.json");
    std::fs::write(
        &baseline,
        "{\"bench\":\"hotpath-block-decode\",\"mode\":\"quick\",\"after_ns\":100}\n\
         {\"bench\":\"sweep-decode-once\",\"grid\":\"10x2\",\"after_ns\":1000}\n",
    )
    .expect("write baseline");

    // Within threshold: +10% on one key, faster on the other.
    std::fs::write(
        &current,
        "{\"bench\":\"hotpath-block-decode\",\"mode\":\"quick\",\"after_ns\":110}\n\
         {\"bench\":\"sweep-decode-once\",\"grid\":\"10x2\",\"after_ns\":900}\n",
    )
    .expect("write current");
    let ok = paragraph(&[
        "profile",
        current.to_str().expect("utf-8 temp path"),
        "--bench-compare",
        baseline.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        ok.status.success(),
        "within-threshold compare failed: {}\n{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );
    let table = String::from_utf8_lossy(&ok.stdout);
    assert!(table.contains("ok"), "missing verdicts: {table}");

    // A 3x slowdown must fail with the analysis exit code...
    std::fs::write(
        &current,
        "{\"bench\":\"hotpath-block-decode\",\"mode\":\"quick\",\"after_ns\":300}\n",
    )
    .expect("write current");
    let slow = paragraph(&[
        "profile",
        current.to_str().expect("utf-8 temp path"),
        "--bench-compare",
        baseline.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(
        slow.status.code(),
        Some(5),
        "regression must exit 5: {}",
        String::from_utf8_lossy(&slow.stderr)
    );
    assert!(
        String::from_utf8_lossy(&slow.stdout).contains("REGRESSED"),
        "missing REGRESSED marker"
    );

    // ...unless the caller raises the threshold above the slowdown.
    let waved = paragraph(&[
        "profile",
        current.to_str().expect("utf-8 temp path"),
        "--bench-compare",
        baseline.to_str().expect("utf-8 temp path"),
        "--bench-threshold",
        "250",
    ]);
    assert!(
        waved.status.success(),
        "raised threshold must pass: {}",
        String::from_utf8_lossy(&waved.stderr)
    );

    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);
}

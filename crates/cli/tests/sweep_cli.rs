//! End-to-end determinism checks for the parallel grid sweep.
//!
//! The key property (ISSUE satellite): `paragraph sweep --jobs 8` must be
//! indistinguishable from `--jobs 1`. For a 3-workload × 3-configuration
//! grid, the stdout table, every per-cell report JSON, and every profile
//! CSV must be byte-identical — scheduling and work-stealing may change
//! *when* a cell runs, never *what* it produces.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-sweep-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&path);
    path
}

fn run_grid(jobs: &str, out: &Path) -> Output {
    paragraph(&[
        "sweep",
        "--workloads",
        "xlisp,eqntott,matrix300",
        "--windows",
        "64,1024",
        "--fuel",
        "30000",
        "--jobs",
        jobs,
        "--out",
        out.to_str().expect("utf-8 temp path"),
    ])
}

#[test]
fn grid_sweep_is_byte_identical_across_job_counts() {
    let dir_seq = scratch("jobs1");
    let dir_par = scratch("jobs8");

    let seq = run_grid("1", &dir_seq);
    assert!(
        seq.status.success(),
        "--jobs 1 sweep failed: {}",
        String::from_utf8_lossy(&seq.stderr)
    );
    let par = run_grid("8", &dir_par);
    assert!(
        par.status.success(),
        "--jobs 8 sweep failed: {}",
        String::from_utf8_lossy(&par.stderr)
    );

    assert_eq!(
        seq.stdout, par.stdout,
        "job count changed the sweep table on stdout"
    );

    // Every artifact — 9 report JSONs + 9 profile CSVs (+ the manifest,
    // compared below after masking its timing fields) — must match.
    let mut names: Vec<String> = fs::read_dir(&dir_seq)
        .expect("read --jobs 1 output dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8")
        })
        .collect();
    names.sort();
    let mut par_names: Vec<String> = fs::read_dir(&dir_par)
        .expect("read --jobs 8 output dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8")
        })
        .collect();
    par_names.sort();
    assert_eq!(
        names, par_names,
        "the two runs produced different artifacts"
    );
    assert_eq!(
        names.iter().filter(|n| n.ends_with(".report.json")).count(),
        9,
        "expected 3 workloads x 3 configurations of report JSON"
    );
    assert_eq!(
        names.iter().filter(|n| n.ends_with(".profile.csv")).count(),
        9
    );

    for name in &names {
        let a = fs::read(dir_seq.join(name)).expect("read sequential artifact");
        let b = fs::read(dir_par.join(name)).expect("read parallel artifact");
        if name == "sweep.json" {
            // The manifest records wall-clock timings and the job count;
            // mask the volatile fields, then demand identity.
            assert_eq!(mask_timings(&a), mask_timings(&b), "{name} differs");
        } else {
            assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 8");
        }
    }

    let _ = fs::remove_dir_all(&dir_seq);
    let _ = fs::remove_dir_all(&dir_par);
}

/// Zeroes `"wall_ns":...` and `"jobs":...` values so manifests from runs
/// with different job counts can be compared structurally.
fn mask_timings(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes);
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_ref();
    while let Some(pos) = ["\"wall_ns\":", "\"jobs\":"]
        .iter()
        .filter_map(|k| rest.find(k).map(|i| i + k.len()))
        .min()
    {
        out.push_str(&rest[..pos]);
        out.push('0');
        rest = rest[pos..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn grid_sweep_rejects_trace_and_window_flags() {
    let with_trace = paragraph(&["sweep", "--workloads", "xlisp", "--trace", "whatever.pgtr"]);
    assert_eq!(with_trace.status.code(), Some(2), "usage error expected");

    let with_window = paragraph(&["sweep", "--workloads", "xlisp", "--window", "64"]);
    assert_eq!(with_window.status.code(), Some(2), "usage error expected");
}

//! End-to-end supervision checks for the grid sweep and checkpoint resume.
//!
//! The contract (see docs/supervision.md): a fault injected into one cell
//! must quarantine that cell alone — the sweep completes, exits with the
//! dedicated degraded code (6), reports the quarantine in `sweep.json`,
//! and every *other* cell's artifacts are byte-identical to a fault-free
//! run's. A transient fault must retry to success and change nothing.
//! Resuming a checkpoint against the wrong trace must fail as typed
//! corruption (exit 4), never silently produce wrong numbers.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn paragraph_with_fault(args: &[&str], fault: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_paragraph"));
    cmd.args(args);
    match fault {
        Some(spec) => cmd.env("PARAGRAPH_FAULT_CELL", spec),
        None => cmd.env_remove("PARAGRAPH_FAULT_CELL"),
    };
    cmd.output().expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-supervise-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&path);
    path
}

fn run_grid(jobs: &str, out: &Path, fault: Option<&str>) -> Output {
    paragraph_with_fault(
        &[
            "sweep",
            "--workloads",
            "xlisp,eqntott",
            "--windows",
            "64",
            "--fuel",
            "30000",
            "--jobs",
            jobs,
            "--retries",
            "1",
            "--retry-backoff-ms",
            "0",
            "--out",
            out.to_str().expect("utf-8 temp path"),
        ],
        fault,
    )
}

fn artifact_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("read output dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8")
        })
        .collect();
    names.sort();
    names
}

#[test]
fn faulted_cell_quarantines_alone_and_exits_degraded() {
    let dir_clean = scratch("clean");
    let dir_faulted = scratch("faulted");

    let clean = run_grid("4", &dir_clean, None);
    assert!(
        clean.status.success(),
        "clean sweep failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Permanently panic one cell: bounded retries, then quarantine.
    let faulted = run_grid("4", &dir_faulted, Some("xlisp@w64"));
    assert_eq!(
        faulted.status.code(),
        Some(6),
        "a quarantined cell must exit with the degraded-sweep code, got {:?}: {}",
        faulted.status.code(),
        String::from_utf8_lossy(&faulted.stderr)
    );
    let stderr = String::from_utf8_lossy(&faulted.stderr);
    assert!(
        stderr.contains("quarantined"),
        "stderr should report the quarantine: {stderr}"
    );

    // The degradation report names the cell, its status, and its attempts.
    let manifest =
        fs::read_to_string(dir_faulted.join("sweep.json")).expect("faulted sweep manifest");
    assert!(manifest.contains("\"quarantined\":1"), "{manifest}");
    assert!(
        manifest.contains("\"status\":\"quarantined\""),
        "{manifest}"
    );
    assert!(manifest.contains("\"attempts\":2"), "{manifest}");

    // The quarantined cell has no artifacts; every sibling's artifacts are
    // byte-identical to the fault-free run's.
    let faulted_names = artifact_names(&dir_faulted);
    assert!(
        !faulted_names.iter().any(|n| n.starts_with("xlisp@w64.")),
        "quarantined cell must not leave artifacts: {faulted_names:?}"
    );
    for name in &faulted_names {
        if name == "sweep.json" {
            continue;
        }
        let a = fs::read(dir_clean.join(name)).expect("clean artifact");
        let b = fs::read(dir_faulted.join(name)).expect("faulted artifact");
        assert_eq!(a, b, "{name} differs between the clean and faulted runs");
    }
    // Three of the four cells survived (xlisp@full, eqntott@w64,
    // eqntott@full): 3 reports + 3 profiles + the manifest.
    assert_eq!(faulted_names.len(), 7, "{faulted_names:?}");

    let _ = fs::remove_dir_all(&dir_clean);
    let _ = fs::remove_dir_all(&dir_faulted);
}

#[test]
fn transient_fault_retries_to_an_identical_sweep() {
    let dir_clean = scratch("retry-clean");
    let dir_retry = scratch("retry-faulted");

    let clean = run_grid("2", &dir_clean, None);
    assert!(
        clean.status.success(),
        "clean sweep failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Fail the first attempt only (VM-fault flavor): the retry succeeds
    // and the run is healthy — exit 0, every artifact byte-identical.
    let retried = run_grid("2", &dir_retry, Some("eqntott@full:1:vm"));
    assert!(
        retried.status.success(),
        "retried sweep should exit 0: {}",
        String::from_utf8_lossy(&retried.stderr)
    );
    let manifest =
        fs::read_to_string(dir_retry.join("sweep.json")).expect("retried sweep manifest");
    assert!(manifest.contains("\"status\":\"retried\""), "{manifest}");
    assert!(manifest.contains("\"quarantined\":0"), "{manifest}");

    let names = artifact_names(&dir_clean);
    assert_eq!(names, artifact_names(&dir_retry));
    for name in &names {
        if name == "sweep.json" {
            continue;
        }
        let a = fs::read(dir_clean.join(name)).expect("clean artifact");
        let b = fs::read(dir_retry.join(name)).expect("retried artifact");
        assert_eq!(a, b, "{name} differs after a retried transient fault");
    }

    let _ = fs::remove_dir_all(&dir_clean);
    let _ = fs::remove_dir_all(&dir_retry);
}

#[test]
fn resume_against_the_wrong_trace_fails_typed() {
    let dir = scratch("identity");
    fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt = dir.join("xlisp.pgcp");
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");

    // Checkpoint an xlisp analysis; the checkpoint embeds the trace
    // identity of the analyzed stream.
    let save = paragraph_with_fault(
        &[
            "analyze",
            "--workload",
            "xlisp",
            "--fuel",
            "20000",
            "--checkpoint-every",
            "5000",
            "--checkpoint",
            ckpt_str,
        ],
        None,
    );
    assert!(
        save.status.success(),
        "checkpointed analyze failed: {}",
        String::from_utf8_lossy(&save.stderr)
    );
    assert!(ckpt.exists(), "checkpoint file must exist");

    // Resuming over the matching trace is fine (the analysis is already
    // complete, so this is a no-op replay) — and must succeed.
    let ok = paragraph_with_fault(
        &[
            "analyze",
            "--workload",
            "xlisp",
            "--fuel",
            "20000",
            "--resume",
            ckpt_str,
        ],
        None,
    );
    assert!(
        ok.status.success(),
        "matching-trace resume failed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Resuming over a different record stream must fail as corruption
    // (exit 4) with a typed mismatch message — not a panic, not silence.
    // Same workload and configuration, shifted stream (`--skip`): only the
    // embedded trace identity can catch this.
    let wrong = paragraph_with_fault(
        &[
            "analyze",
            "--workload",
            "xlisp",
            "--fuel",
            "20000",
            "--skip",
            "100",
            "--resume",
            ckpt_str,
        ],
        None,
    );
    assert_eq!(
        wrong.status.code(),
        Some(4),
        "wrong-trace resume must exit 4, got {:?}: {}",
        wrong.status.code(),
        String::from_utf8_lossy(&wrong.stderr)
    );
    let stderr = String::from_utf8_lossy(&wrong.stderr);
    assert!(
        stderr.contains("different trace"),
        "stderr should explain the identity mismatch: {stderr}"
    );

    let _ = fs::remove_dir_all(&dir);
}

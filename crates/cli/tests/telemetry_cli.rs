//! End-to-end telemetry checks against the built `paragraph` binary.
//!
//! The key property (ISSUE satellite): instrumenting a run must not change
//! the analysis. A run with telemetry disabled and a run with the full
//! instrumentation enabled (`--progress`, `--telemetry-out`,
//! `--metrics-out`) must produce byte-identical reports on stdout, and the
//! artifacts the instrumented run leaves behind must parse through the
//! `paragraph stats` validators.

use std::path::PathBuf;
use std::process::{Command, Output};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-telemetry-{}-{name}", std::process::id()));
    path
}

#[test]
fn instrumented_report_is_byte_identical_and_artifacts_parse() {
    let jsonl = scratch("run.jsonl");
    let prom = scratch("metrics.prom");

    let plain = paragraph(&["analyze", "--workload", "matrix300", "--size", "4"]);
    assert!(
        plain.status.success(),
        "plain analyze failed: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let instrumented = paragraph(&[
        "analyze",
        "--workload",
        "matrix300",
        "--size",
        "4",
        "--progress=0",
        "--telemetry-out",
        jsonl.to_str().expect("utf-8 temp path"),
        "--metrics-out",
        prom.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        instrumented.status.success(),
        "instrumented analyze failed: {}",
        String::from_utf8_lossy(&instrumented.stderr)
    );

    // Telemetry must be invisible on stdout: the report bytes are identical
    // whether or not the run was instrumented.
    assert_eq!(
        plain.stdout, instrumented.stdout,
        "instrumentation changed the report on stdout"
    );
    // The heartbeat and artifact notices land on stderr only, and each
    // heartbeat carries throughput and the critical-path cursor.
    let stderr = String::from_utf8_lossy(&instrumented.stderr);
    assert!(stderr.contains("progress:"), "missing heartbeat: {stderr}");
    assert!(
        stderr.contains("rec/s"),
        "heartbeat lacks throughput: {stderr}"
    );
    assert!(
        stderr.contains("cp="),
        "heartbeat lacks critical path: {stderr}"
    );

    // Both artifacts must survive their own validators.
    let stats = paragraph(&[
        "stats",
        "--telemetry",
        jsonl.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        stats.status.success(),
        "stats --telemetry rejected the event log: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let table = String::from_utf8_lossy(&stats.stdout);
    assert!(
        table.contains("analyze"),
        "stage table lacks analyze: {table}"
    );

    let metrics = paragraph(&[
        "stats",
        "--metrics",
        prom.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        metrics.status.success(),
        "stats --metrics rejected the snapshot: {}",
        String::from_utf8_lossy(&metrics.stderr)
    );
    let verdict = String::from_utf8_lossy(&metrics.stdout);
    assert!(
        verdict.contains("valid Prometheus exposition"),
        "unexpected verdict: {verdict}"
    );

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&prom);
}

#[test]
fn malformed_artifacts_are_rejected() {
    let bad = scratch("bad.jsonl");
    std::fs::write(&bad, "{\"ts_ns\":1,\"event\":\"run_start\"\nnot json\n")
        .expect("write scratch file");

    // `--strict` fails fast on the first bad line (the CI contract).
    let stats = paragraph(&[
        "stats",
        "--strict",
        "--telemetry",
        bad.to_str().expect("utf-8 temp path"),
    ]);
    assert!(!stats.status.success(), "truncated JSONL accepted");

    // The default is lossy: the readable lines are summarized, each bad
    // line is warned about, and the skip count is reported.
    let lossy = paragraph(&[
        "stats",
        "--telemetry",
        bad.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        lossy.status.success(),
        "lossy stats failed: {}",
        String::from_utf8_lossy(&lossy.stderr)
    );
    let stderr = String::from_utf8_lossy(&lossy.stderr);
    assert!(
        stderr.contains("skipped_lines: 2"),
        "missing skip count: {stderr}"
    );

    std::fs::write(&bad, "paragraph_bad{le=\"nope\" 1\n").expect("write scratch file");
    let metrics = paragraph(&["stats", "--metrics", bad.to_str().expect("utf-8 temp path")]);
    assert!(!metrics.status.success(), "malformed exposition accepted");

    let _ = std::fs::remove_file(&bad);
}

#[test]
fn report_json_flags_bounded_live_well() {
    let json_path = scratch("report.json");
    let out = paragraph(&[
        "analyze",
        "--workload",
        "matrix300",
        "--size",
        "4",
        "--json",
        json_path.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        out.status.success(),
        "analyze --json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).expect("read report json");
    assert!(json.contains("\"live_well_evictions\":0"));
    assert!(json.contains("\"live_well_cap\":null"));
    assert!(json.contains("\"parallelism_is_upper_bound\":false"));
    let _ = std::fs::remove_file(&json_path);
}

//! End-to-end byte-identity checks for `analyze --jobs N`.
//!
//! The contract of intra-trace parallel analysis is absolute: for every
//! job count, over clean, damaged (`--recover`), and checkpoint-resumed
//! traces, the report written by the CLI is *byte-identical* to the
//! `--jobs 1` report. These tests drive the built `paragraph` binary —
//! the engine-level differentials live in `paragraph-core`'s `parallel`
//! module; this file covers the orchestration the CLI adds on top
//! (flag plumbing, heartbeats, checkpoint interplay, fallbacks).

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::process::{Command, Output};

use paragraph_trace::binary::TraceWriter;
use paragraph_trace::{synthetic, SegmentMap};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("paragraph-parallel-{}-{name}", std::process::id()));
    path
}

/// Writes `n` records of the deterministic random trace (~2% conservative
/// syscalls — plenty of cut points) to a fresh scratch file.
fn write_random_trace(name: &str, n: usize, seed: u64) -> PathBuf {
    let path = scratch(name);
    let file = File::create(&path).expect("create scratch trace");
    let mut writer =
        TraceWriter::new(BufWriter::new(file), SegmentMap::all_data()).expect("trace header");
    for record in synthetic::random_trace(n, seed) {
        writer.write_record(&record).expect("trace record");
    }
    writer.finish().expect("trace finish");
    path
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs `analyze` with the given extra flags and returns the JSON report
/// bytes.
fn analyze_json(trace: &PathBuf, tag: &str, extra: &[&str]) -> Vec<u8> {
    let json = scratch(tag);
    let trace_str = trace.to_str().expect("utf-8 path");
    let json_str = json.to_str().expect("utf-8 path");
    let mut args = vec!["analyze", "--trace", trace_str, "--json", json_str];
    args.extend_from_slice(extra);
    let out = paragraph(&args);
    assert_ok(&out, tag);
    let bytes = std::fs::read(&json).expect("read report json");
    let _ = std::fs::remove_file(&json);
    bytes
}

#[test]
fn clean_trace_reports_are_byte_identical_across_jobs() {
    let trace = write_random_trace("clean.pgtr", 20_000, 11);
    let oracle = analyze_json(&trace, "clean-seq.json", &["--jobs", "1"]);
    for jobs in ["2", "4", "8"] {
        let parallel = analyze_json(&trace, "clean-par.json", &["--jobs", jobs]);
        assert_eq!(
            oracle, parallel,
            "--jobs {jobs} diverged from the sequential report"
        );
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn constrained_configs_stay_byte_identical_across_jobs() {
    let trace = write_random_trace("constrained.pgtr", 20_000, 23);
    // A bounded window plus finite issue width plus no renaming — the
    // harshest configuration the cut rule still reproduces exactly.
    let flags = [
        "--rename",
        "none",
        "--window",
        "64",
        "--units",
        "4",
        "--no-disambiguation",
    ];
    let mut seq: Vec<&str> = vec!["--jobs", "1"];
    seq.extend_from_slice(&flags);
    let oracle = analyze_json(&trace, "con-seq.json", &seq);
    let mut par: Vec<&str> = vec!["--jobs", "4"];
    par.extend_from_slice(&flags);
    let parallel = analyze_json(&trace, "con-par.json", &par);
    assert_eq!(oracle, parallel);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn damaged_trace_recovery_is_byte_identical_across_jobs() {
    let trace = write_random_trace("damaged.pgtr", 20_000, 17);
    // Stomp a stretch in the middle of the file: the CRC check discards
    // the damaged chunk(s) and `--recover` resynchronizes past them. Both
    // runs then analyze the same surviving record stream.
    let mut bytes = std::fs::read(&trace).expect("read trace");
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 256] {
        *b ^= 0x5a;
    }
    std::fs::write(&trace, bytes).expect("rewrite damaged trace");

    let oracle = analyze_json(&trace, "dmg-seq.json", &["--recover", "--jobs", "1"]);
    for jobs in ["2", "8"] {
        let parallel = analyze_json(&trace, "dmg-par.json", &["--recover", "--jobs", jobs]);
        assert_eq!(
            oracle, parallel,
            "--jobs {jobs} diverged on the recovered trace"
        );
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn resumed_checkpoint_reports_are_byte_identical_across_jobs() {
    let trace = write_random_trace("resumed.pgtr", 20_000, 29);
    let ckpt = scratch("resumed.pgcp");
    let trace_str = trace.to_str().expect("utf-8 path");
    let ckpt_str = ckpt.to_str().expect("utf-8 path");
    // Analyze a prefix under `--take` with checkpointing: the trace
    // identity is taken before `--take` truncates, so the checkpoint is
    // valid for resuming over the full trace.
    let out = paragraph(&[
        "analyze",
        "--trace",
        trace_str,
        "--take",
        "8000",
        "--checkpoint-every",
        "8000",
        "--checkpoint",
        ckpt_str,
    ]);
    assert_ok(&out, "prefix run");
    assert!(ckpt.exists(), "prefix run must leave a checkpoint");

    let oracle = analyze_json(
        &trace,
        "res-seq.json",
        &["--resume", ckpt_str, "--jobs", "1"],
    );
    // The resumed analyzer becomes chunk 0; cuts are planned after it.
    for jobs in ["2", "4"] {
        let parallel = analyze_json(
            &trace,
            "res-par.json",
            &["--resume", ckpt_str, "--jobs", jobs],
        );
        assert_eq!(
            oracle, parallel,
            "--jobs {jobs} diverged on the resumed trace"
        );
    }
    // A full sequential run with no checkpoint in play agrees too: the
    // resume machinery changed where analysis started, not its answer.
    let fresh = analyze_json(&trace, "res-fresh.json", &["--jobs", "4"]);
    assert_eq!(oracle, fresh);
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn ineligible_config_falls_back_to_one_thread_with_a_note() {
    let trace = write_random_trace("ineligible.pgtr", 10_000, 31);
    let trace_str = trace.to_str().expect("utf-8 path");
    // --value-stats retires values across cut points, so the parallel
    // path must decline. The answer still matches --jobs 1, and with
    // --progress the fallback says why.
    let oracle = analyze_json(&trace, "inel-seq.json", &["--value-stats", "--jobs", "1"]);
    let parallel = analyze_json(&trace, "inel-par.json", &["--value-stats", "--jobs", "8"]);
    assert_eq!(oracle, parallel);

    let json = scratch("inel-note.json");
    let out = paragraph(&[
        "analyze",
        "--trace",
        trace_str,
        "--json",
        json.to_str().expect("utf-8 path"),
        "--value-stats",
        "--jobs",
        "8",
        "--progress=0",
    ]);
    assert_ok(&out, "fallback note run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("analyzing on one thread"),
        "expected a fallback note, got: {stderr}"
    );
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn checkpointing_is_refused_under_parallel_jobs() {
    let trace = write_random_trace("nockpt.pgtr", 10_000, 37);
    let ckpt = scratch("nockpt.pgcp");
    let out = paragraph(&[
        "analyze",
        "--trace",
        trace.to_str().expect("utf-8 path"),
        "--checkpoint-every",
        "2000",
        "--checkpoint",
        ckpt.to_str().expect("utf-8 path"),
        "--jobs",
        "4",
    ]);
    assert_ok(&out, "parallel run with checkpoints requested");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoints are disabled under --jobs"),
        "expected a checkpoint warning, got: {stderr}"
    );
    assert!(
        !ckpt.exists(),
        "no checkpoint may be written under --jobs > 1: a merged state cannot resume"
    );
    let _ = std::fs::remove_file(&trace);
}

//! End-to-end daemon checks against the built `paragraph` binary.
//!
//! The ISSUE tentpole's acceptance criteria, exercised for real: a spawned
//! `paragraph serve` process stays up and byte-identical through a fault
//! soak (injected panic, oversized declared input, deadline overrun,
//! mid-upload disconnect, memory-pressure eviction + resume), N parallel
//! clients read the same bytes the one-shot CLI prints, a malformed
//! governor override refuses to start (exit 2) where one-shot commands
//! merely warn, and SIGTERM drains to exit 0 with checkpointed sessions
//! and no orphaned temp files.

use paragraph_serve::{request, Endpoint};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn paragraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(args)
        .output()
        .expect("failed to spawn the paragraph binary")
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("paragraph-serve-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A daemon child process; killed on drop so a failing test never leaks
/// a listener.
struct Daemon {
    child: Child,
    endpoint: Endpoint,
    spool: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `paragraph serve` on an ephemeral port with `extra` flags and
/// `envs`, and waits for the ready file to learn the endpoint.
fn spawn_daemon(dir: &PathBuf, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
    let spool = dir.join("spool");
    let ready = dir.join("ready.txt");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_paragraph"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .arg("--spool")
        .arg(&spool)
        .arg("--ready-file")
        .arg(&ready)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("failed to spawn the daemon");
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(line) = std::fs::read_to_string(&ready) {
            let line = line.trim();
            if let Some(addr) = line.strip_prefix("http://") {
                break addr.to_owned();
            }
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };
    Daemon {
        child,
        endpoint: Endpoint::Tcp(addr),
        spool,
    }
}

/// Captures a small workload trace with the real `trace` command.
fn capture_trace(dir: &PathBuf) -> PathBuf {
    let path = dir.join("t.pgtr");
    let out = paragraph(&[
        "trace",
        "--workload",
        "eqntott",
        "--size",
        "8",
        "--out",
        path.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn upload(daemon: &Daemon, trace: &PathBuf) -> String {
    let bytes = std::fs::read(trace).expect("trace bytes");
    let resp = request(&daemon.endpoint, "POST", "/traces", &bytes).expect("upload");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    field_str(&resp.body_text(), "id")
}

fn field_str(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no `{key}` in {json}"))
        + pat.len();
    json[start..].chars().take_while(|c| *c != '"').collect()
}

fn field_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no `{key}` in {json}"))
        + pat.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` not numeric in {json}"))
}

fn assert_no_tmp_files(spool: &PathBuf) {
    for sub in ["traces", "sessions"] {
        let dir = spool.join(sub);
        if !dir.exists() {
            continue;
        }
        for entry in std::fs::read_dir(&dir).expect("spool dir") {
            let name = entry
                .expect("entry")
                .file_name()
                .to_string_lossy()
                .into_owned();
            assert!(!name.ends_with(".tmp"), "orphaned temp file {sub}/{name}");
        }
    }
}

#[test]
fn parallel_clients_read_the_bytes_the_cli_prints() {
    let dir = scratch("determinism");
    let trace = capture_trace(&dir);
    let trace_str = trace.to_str().expect("utf8 path").to_owned();

    // Reference bytes from the one-shot CLI: stdout text and --json.
    let text_out = paragraph(&["analyze", "--trace", &trace_str]);
    assert!(text_out.status.success());
    let expected_text = String::from_utf8(text_out.stdout).expect("utf8 report");
    let json_path = dir.join("cli.json");
    let json_out = paragraph(&[
        "analyze",
        "--trace",
        &trace_str,
        "--json",
        json_path.to_str().expect("utf8 path"),
    ]);
    assert!(json_out.status.success());
    let expected_json = std::fs::read_to_string(&json_path).expect("cli json artifact");

    let daemon = spawn_daemon(&dir, &[], &[]);
    let trace_id = upload(&daemon, &trace);

    // N concurrent clients, varying --jobs: every response is
    // byte-identical to the CLI's artifacts.
    let answers: Vec<_> = (0..6)
        .map(|i| {
            let endpoint = daemon.endpoint.clone();
            let id = trace_id.clone();
            std::thread::spawn(move || {
                let jobs = 1 + (i % 3);
                let fmt = if i % 2 == 0 { "json" } else { "text" };
                let resp = request(
                    &endpoint,
                    "POST",
                    &format!("/analyze?trace={id}&jobs={jobs}&format={fmt}"),
                    &[],
                )
                .expect("analyze");
                (fmt, resp.status, resp.body_text())
            })
        })
        .collect();
    for t in answers {
        let (fmt, status, body) = t.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let expected = if fmt == "json" {
            &expected_json
        } else {
            &expected_text
        };
        assert_eq!(&body, expected, "served {fmt} must match the CLI bytes");
    }
}

#[test]
fn fault_soak_leaves_the_daemon_serving_identical_bytes() {
    let dir = scratch("soak");
    let trace = capture_trace(&dir);
    // One injected panic on the first /analyze; uploads capped at 1000
    // records so the big trace below is an oversized declaration.
    let daemon = spawn_daemon(
        &dir,
        &["--max-live-sessions", "1"],
        &[
            ("PARAGRAPH_FAULT_REQUEST", "POST@/analyze:1:panic"),
            ("PARAGRAPH_MAX_RECORDS", "1000"),
        ],
    );

    // Fault 1 — oversized declared input: a well-formed trace with more
    // records than admission policy allows is a 422 with the CLI-shaped
    // report, and nothing is spooled for it.
    let big = std::fs::read(&trace).expect("trace bytes");
    let resp = request(&daemon.endpoint, "POST", "/traces", &big).expect("upload");
    assert_eq!(resp.status, 422, "{}", resp.body_text());
    assert!(resp
        .body_text()
        .starts_with("{\"error\":\"input-rejected\""));
    assert!(resp.body_text().contains("\"limit\":\"max-records\""));

    // A trace under the cap is accepted.
    let small = dir.join("small.pgtr");
    let out = paragraph(&[
        "trace",
        "--workload",
        "eqntott",
        "--size",
        "2",
        "--out",
        small.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_id = upload(&daemon, &small);
    let small_str = small.to_str().expect("utf8 path");
    let cli = paragraph(&["analyze", "--trace", small_str]);
    let expected_text = String::from_utf8(cli.stdout).expect("utf8 report");

    // Fault 2 — injected panic: a 500 reaches the client, the worker is
    // recycled, and the daemon answers the retry with the canonical bytes.
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}&format=text"),
        &[],
    )
    .expect("the 500 must be written before the worker dies");
    assert_eq!(resp.status, 500, "{}", resp.body_text());
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/analyze?trace={trace_id}&format=text"),
        &[],
    )
    .expect("analyze after panic");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text(), expected_text);

    // Fault 3 — mid-upload disconnect: declare a body, send half, hang up.
    {
        let Endpoint::Tcp(addr) = &daemon.endpoint else {
            unreachable!("tcp daemon")
        };
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"POST /traces HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .expect("head");
        conn.write_all(&vec![0u8; 1000]).expect("partial body");
        drop(conn);
    }

    // Fault 4 — deadline overrun: a 1 ms per-request deadline on a
    // session advance preserves progress and answers 422.
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/sessions?trace={trace_id}"),
        &[],
    )
    .expect("session opens");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let s1 = field_str(&resp.body_text(), "id");
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/sessions/{s1}/advance?records=50&deadline-ms=0"),
        &[],
    )
    .expect("advance under an exhausted deadline");
    assert_eq!(resp.status, 422, "{}", resp.body_text());
    assert!(
        resp.body_text().contains("\"limit\":\"deadline\""),
        "{}",
        resp.body_text()
    );

    // Fault 5 — memory-pressure eviction + resume: a second session over
    // the 1-live budget forces checkpoint eviction; both still finish
    // with the canonical report.
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/sessions?trace={trace_id}"),
        &[],
    )
    .expect("second session opens");
    let s2 = field_str(&resp.body_text(), "id");
    for _ in 0..3 {
        for id in [&s1, &s2] {
            let resp = request(
                &daemon.endpoint,
                "POST",
                &format!("/sessions/{id}/advance?records=40"),
                &[],
            )
            .expect("advance");
            assert_eq!(resp.status, 200, "{}", resp.body_text());
        }
    }
    let health = request(&daemon.endpoint, "GET", "/healthz", &[]).expect("healthz");
    assert_eq!(health.status, 200);
    let health_body = health.body_text();
    assert!(health_body.contains("\"status\":\"ok\""), "{health_body}");
    assert!(
        field_u64(&health_body, "sessions_evicted") >= 1,
        "{health_body}"
    );
    assert_eq!(
        field_u64(&health_body, "workers_recycled"),
        1,
        "{health_body}"
    );
    let expected_json = {
        let json_path = dir.join("cli.json");
        let out = paragraph(&[
            "analyze",
            "--trace",
            small_str,
            "--json",
            json_path.to_str().expect("utf8 path"),
        ]);
        assert!(out.status.success());
        std::fs::read_to_string(&json_path).expect("cli json artifact")
    };
    for id in [&s1, &s2] {
        let resp = request(
            &daemon.endpoint,
            "POST",
            &format!("/sessions/{id}/finish"),
            &[],
        )
        .expect("finish");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        assert_eq!(
            resp.body_text(),
            expected_json,
            "session bytes must survive the soak"
        );
    }
    assert_no_tmp_files(&daemon.spool);
}

#[test]
fn malformed_governor_override_refuses_to_start() {
    let dir = scratch("badenv");
    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--spool")
        .arg(dir.join("spool"))
        .env("PARAGRAPH_DEADLINE_MS", "soon")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "malformed override must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to start"), "{stderr}");
    assert!(stderr.contains("PARAGRAPH_DEADLINE_MS"), "{stderr}");

    // A malformed fault spec is the same refusal, not a silent default.
    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--spool")
        .arg(dir.join("spool"))
        .env("PARAGRAPH_FAULT_REQUEST", "not@a@valid@spec:::")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));

    // The one-shot commands keep their warn-and-degrade contract.
    let trace = capture_trace(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_paragraph"))
        .args(["analyze", "--trace", trace.to_str().expect("utf8 path")])
        .env("PARAGRAPH_DEADLINE_MS", "soon")
        .output()
        .expect("spawn");
    assert!(out.status.success(), "analyze must warn and proceed");
    assert!(String::from_utf8_lossy(&out.stderr).contains("warning"));
}

#[cfg(unix)]
#[test]
fn sigterm_drains_checkpoints_sessions_and_exits_zero() {
    let dir = scratch("sigterm");
    let trace = capture_trace(&dir);
    let mut daemon = spawn_daemon(&dir, &[], &[]);
    let trace_id = upload(&daemon, &trace);
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/sessions?trace={trace_id}"),
        &[],
    )
    .expect("session opens");
    let session_id = field_str(&resp.body_text(), "id");
    let resp = request(
        &daemon.endpoint,
        "POST",
        &format!("/sessions/{session_id}/advance?records=100"),
        &[],
    )
    .expect("advance");
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill spawns");
    assert!(kill.success());
    let status = daemon.child.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "a drained daemon exits 0");
    assert!(
        daemon
            .spool
            .join("sessions")
            .join(format!("{session_id}.pgcp"))
            .exists(),
        "the in-flight session must be checkpointed by the drain"
    );
    assert_no_tmp_files(&daemon.spool);
}

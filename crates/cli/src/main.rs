//! `paragraph` — command-line front end for the Paragraph toolkit.
//!
//! ```text
//! paragraph list
//! paragraph analyze --workload matrix300 [--size N] [--fuel N]
//!                   [--rename none|regs|regs-stack|all] [--optimistic]
//!                   [--window N] [--unit-latency] [--profile out.csv] [--plot]
//! paragraph analyze --trace trace.pgtr [...]
//! paragraph trace --workload eqntott --out trace.pgtr [--size N] [--fuel N]
//! paragraph run --asm file.s [--input 1,2,3] [--fuel N]
//! paragraph disasm --workload xlisp [--size N]
//! paragraph dot --workload cc1 --out ddg.dot [--size N] [--fuel N]
//! paragraph sweep --workload doduc --windows 1,10,100,1000 [--size N]
//! ```

use paragraph_core::branch::{BranchPolicy, PredictorKind};
use paragraph_core::telemetry::progress::ProgressReporter;
use paragraph_core::telemetry::{self, Value};
use paragraph_core::{
    analyze_refs, AnalysisConfig, AnalysisReport, LiveWell, MemoryModel, RenameSet, SyscallPolicy,
    WindowSize,
};
use paragraph_isa::LatencyModel;
use paragraph_trace::binary::{RecoveryStats, TraceReader, TraceWriter};
use paragraph_trace::govern::{Limits, ResourceGovernor};
use paragraph_trace::{SegmentMap, TraceError, TraceErrorKind, TraceRecord, TraceSource};
use paragraph_vm::Vm;
use paragraph_workloads::{Workload, WorkloadId};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure, classified so scripts can dispatch on the exit code:
/// 2 usage, 3 I/O, 4 corrupt trace/checkpoint input, 5 analysis failure,
/// 6 degraded sweep (some cells quarantined, the rest completed),
/// 7 input rejected by a resource governor (well-formed-looking input that
/// *declares* more than policy allows; distinct from damage).
#[derive(Debug)]
enum CliError {
    /// Bad command line: unknown flag, missing argument, invalid value.
    Usage(String),
    /// The filesystem failed (open, create, read, write).
    Io(String),
    /// A trace or checkpoint file exists but its contents are damaged.
    CorruptTrace(String),
    /// The workload or VM run itself failed.
    Analysis(String),
    /// A sweep completed but quarantined one or more cells; the healthy
    /// cells' artifacts are intact and byte-identical to a fault-free run.
    Quarantined(String),
    /// Untrusted input tripped a resource-governor limit. Carries both the
    /// human-readable message and a machine-readable JSON report (one
    /// object: `error`, `path`, `limit`, `what`, `actual`, `cap`) that is
    /// printed to stderr so supervisors can parse the rejection.
    InputRejected {
        /// Human-readable diagnostic, printed like every other error.
        message: String,
        /// One-line JSON rejection report, printed to stderr after the
        /// diagnostic (and written to `--reject-report FILE` if given).
        report: String,
    },
    /// `client` only: the daemon answered 429 (queue full) or 503
    /// (draining) — a retryable back-pressure condition, not a failure of
    /// the request itself. Distinct code so supervisors can retry with
    /// backoff instead of alerting.
    ServerBusy(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::CorruptTrace(_) => 4,
            CliError::Analysis(_) => 5,
            CliError::Quarantined(_) => 6,
            CliError::InputRejected { .. } => 7,
            CliError::ServerBusy(_) => 8,
        })
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::CorruptTrace(m)
            | CliError::Analysis(m)
            | CliError::Quarantined(m)
            | CliError::ServerBusy(m) => f.write_str(m),
            CliError::InputRejected { message, .. } => f.write_str(message),
        }
    }
}

/// Minimal JSON string escaping for the rejection report (paths may contain
/// quotes or backslashes; limit names never do, but escape uniformly).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds the typed rejection: message for humans, JSON for machines.
fn input_rejected(
    path: &str,
    limit: &'static str,
    what: &'static str,
    actual: u64,
    cap: u64,
    detail: impl fmt::Display,
) -> CliError {
    CliError::InputRejected {
        message: format!("{path}: input rejected: {detail}"),
        report: format!(
            "{{\"error\":\"input-rejected\",\"path\":\"{}\",\"limit\":\"{}\",\
             \"what\":\"{}\",\"actual\":{actual},\"cap\":{cap}}}",
            json_escape(path),
            json_escape(limit),
            json_escape(what),
        ),
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn io_err(path: &str, e: impl fmt::Display) -> CliError {
    CliError::Io(format!("{path}: {e}"))
}

/// Classifies a trace-format error: damaged bytes are distinct from a
/// failing disk, and a governor rejection is distinct from both.
fn trace_err(path: &str, e: TraceError) -> CliError {
    if let Some(v) = e.limit_violation() {
        return input_rejected(path, v.limit, v.what, v.actual, v.cap, v);
    }
    match e.kind() {
        TraceErrorKind::Io(_) => CliError::Io(format!("{path}: {e}")),
        _ => CliError::CorruptTrace(format!("{path}: {e}")),
    }
}

/// Classifies a checkpoint-loader error the same way: I/O, governor
/// rejection, or damage.
fn checkpoint_err(path: &str, e: paragraph_core::CheckpointError) -> CliError {
    use paragraph_core::CheckpointError;
    match e {
        CheckpointError::LimitExceeded(v) => {
            input_rejected(path, v.limit, v.what, v.actual, v.cap, v)
        }
        CheckpointError::Io(_) => CliError::Io(format!("{path}: {e}")),
        _ => CliError::CorruptTrace(format!("{path}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("paragraph: {e}");
            if let CliError::InputRejected { report, .. } = &e {
                // Machine-readable rejection on its own stderr line, so a
                // supervisor can parse what was refused and why.
                eprintln!("{report}");
            }
            e.exit_code()
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let opts = Options::parse(&args[1..]).map_err(CliError::Usage)?;
    // Only `profile` (timeline/bench-log files) and `client`
    // (METHOD PATH) take positional arguments; everywhere else a stray
    // word is a typo, not an input.
    if command != "profile" && command != "client" && !opts.positional.is_empty() {
        return Err(usage_err(format!(
            "unexpected argument `{}`",
            opts.positional[0]
        )));
    }
    let result = match command.as_str() {
        "list" => cmd_list(),
        "analyze" => cmd_analyze(&opts),
        "trace" => cmd_trace(&opts),
        "ingest" => cmd_ingest(&opts),
        "run" => cmd_run(&opts),
        "disasm" => cmd_disasm(&opts),
        "dot" => cmd_dot(&opts),
        "sweep" => cmd_sweep(&opts),
        "compare" => cmd_compare(&opts),
        "stats" => cmd_stats(&opts),
        "report" => cmd_report(&opts),
        "profile" => cmd_profile(&opts),
        "serve" => cmd_serve(&opts),
        "client" => cmd_client(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(usage_err(format!(
            "unknown command `{other}` (try `paragraph help`)"
        ))),
    };
    if let (Err(CliError::InputRejected { report, .. }), Some(path)) =
        (&result, &opts.reject_report)
    {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("warning: reject report failed ({path}: {e})");
        }
    }
    result
}

fn print_usage() {
    println!(
        "paragraph — dynamic dependency analysis of ordinary programs (ISCA 1992)

usage: paragraph <command> [options]

commands:
  list      show the available workloads (the paper's Table 2 inventory)
  analyze   run the live-well analyzer over a workload or a trace file
  trace     capture a workload's execution trace to a binary file
  ingest    convert an external text trace (--text FILE, see docs/ingest.md)
            into the binary trace format (--out FILE); streaming, governed
  run       execute an assembly file on the VM
  disasm    print a workload's generated assembly
  dot       export a (small) workload's explicit DDG in Graphviz format
  sweep     window-size sweep: one workload (Figure 8, one curve), or a
            parallel (workload x window) grid with --workloads [--jobs N]
  compare   one workload under the standard ladder of machine conditions
  stats     first-order operation frequencies of a workload or trace file
  report    full Section-2.3 analysis: lifetimes, sharing, slack, storage
  profile   summarize a --timeline-out recording: per-stage self-time,
            lane utilization, slowest slices; --diff B compares two
            timelines; --bench-compare BASELINE checks bench-log rows
  serve     run the multi-tenant analysis daemon (see docs/serve.md):
            trace uploads and analysis over HTTP on --addr or --uds, a
            bounded worker pool with panic isolation, load shedding, and
            graceful drain on SIGTERM/SIGINT
  client    one request against a running daemon:
            client ENDPOINT METHOD PATH [--body FILE]; the response body
            goes to stdout and the status maps onto the exit codes below

common options:
  --workload NAME   one of the ten benchmark analogues
  --trace FILE      read a binary trace instead of running a workload
  --size N          workload problem size (default per workload)
  --fuel N          dynamic instruction cap (default 100,000,000)
  --rename MODE     none | regs | regs-stack | all   (default all)
  --optimistic      ignore system calls (default: conservative firewalls)
  --window N        instruction window size (default infinite)
  --branch MODE     perfect | stall | always-taken | never-taken | btfn |
                    bimodal:N | gshare:N   (default perfect)
  --units N         at most N operations may start per level (default inf)
  --no-disambiguation  conservative memory aliasing (loads wait for all
                    earlier stores; stores for all earlier memory ops)
  --value-stats     report value lifetime and sharing distributions
  --unit-latency    all operations take one level (default: Table 1)
  --seed N          workload input seed
  --skip N          drop the first N trace records before analyzing
  --take N          analyze at most N trace records (after --skip)
  --input A,B,C     read_int inputs for `run`
  --out FILE        output file (trace/dot)
  --format FMT      trace output format: binary (default) | csv
  --profile FILE    write the parallelism profile as CSV
  --json FILE       write the analysis report as JSON
  --plot            print an ASCII parallelism profile
  --windows A,B,C   window sizes for `sweep`
  --workloads LIST  grid sweep: comma-separated workloads, or `all`; each
                    trace is decoded once into a shared arena and the
                    (workload x window) cells run on --jobs workers
  --jobs N          worker threads. For `sweep --workloads`: cells of the
                    grid fan out across N workers (0 or absent: all cores;
                    also PARAGRAPH_JOBS). For `analyze`: one trace is cut
                    at conservative-syscall firewalls into N segments
                    analyzed concurrently; the report is byte-identical to
                    --jobs 1 (see docs/hotpath.md). Configurations the cut
                    rule cannot split exactly fall back to one thread
  --mmap / --no-mmap  force the trace input backend: memory-mapped or
                    buffered reads (default: map regular files, fall back
                    to buffered reads; identical records, errors, and
                    recovery accounting either way — see docs/hotpath.md)
  --no-decode-ahead  decode chunks inline on the analysis thread instead
                    of one chunk ahead on a helper thread (analyze with a
                    --trace file)
  --retries N       grid sweep: failed-cell retries before quarantine
                    (default 2; see docs/supervision.md)
  --retry-backoff-ms N  base backoff between cell retries (default 25;
                    exponential growth, deterministic jitter)

fault tolerance (analyze):
  --recover             read a damaged trace: resynchronize past corrupt
                        chunks and report how many records were lost
  --checkpoint-every N  save analyzer state every N records
  --checkpoint FILE     checkpoint path (default: <trace>.pgcp)
  --resume FILE         resume an interrupted analysis from a checkpoint
  --live-well-cap N     bound the live-well table to N memory locations,
                        evicting the coldest (reported as a caveat)

telemetry (analyze; see docs/telemetry.md):
  --progress[=SECS]     heartbeat line to stderr every SECS seconds
                        (default 2): records, %done, MB/s, critical path, ETA
  --telemetry-out FILE  write a JSONL structured event log
  --metrics-out FILE    write a Prometheus text snapshot at exit and at
                        every checkpoint
  stats --telemetry FILE   summarize a JSONL log (per-stage table); bad
                        lines are skipped with a warning (--strict: fail)
  stats --metrics FILE     validate a Prometheus snapshot

flight recorder (analyze / run / sweep; see docs/telemetry.md):
  --timeline-out FILE   record a per-thread span timeline and export it as
                        Chrome trace-event JSON (open in ui.perfetto.dev);
                        lane capacity via PARAGRAPH_TIMELINE_EVENTS
  profile T.json [--top N]        per-stage self-time, lanes, slow slices
  profile A.json --diff B.json    stage-by-stage timeline comparison
  profile CUR --bench-compare BASE [--bench-threshold PCT]
                        compare bench-log rows (BENCH.*.json); exit 5 when
                        any row slows down more than PCT% (default 20)

daemon (serve / client; see docs/serve.md):
  --addr HOST:PORT      TCP bind address (default 127.0.0.1:7307)
  --uds PATH            bind a unix-domain socket instead of TCP
  --workers N           worker threads (default 4)
  --queue N             admission queue capacity; beyond it, shed with
                        429 + Retry-After (default 64)
  --max-live-sessions N analyzers resident at once; beyond it, idle
                        sessions are checkpointed to disk and resumed on
                        touch (default 8)
  --spool DIR           trace + session spool (default paragraph-serve)
  --deadline-ms N       per-request analysis deadline (default none)
  --max-body-mb N       largest accepted request body (default 256)
  --ready-file FILE     write one line with the bound endpoint once
                        listening, crash-consistently, for launchers
  --body FILE           client: request body ('-' reads stdin)
  uploads decode under Limits::strict(); PARAGRAPH_MAX_* overrides are
  honored, but serve refuses to start on a malformed override (exit 2)
  where the one-shot commands warn and fall back to defaults
  PARAGRAPH_FAULT_REQUEST=<METHOD|*>@<path-prefix>[:fails[:kind]]
  injects request faults (panic|reject|corrupt|deadline|disconnect|stall)

untrusted input (see docs/ingest.md):
  resource governors cap what a trace, checkpoint, ingest, or asm file may
  declare or allocate (PARAGRAPH_MAX_* env overrides); a violation exits 7
  with a one-line JSON rejection report on stderr
  --reject-report FILE  also write the JSON rejection report to FILE

exit codes: 0 ok, 2 usage, 3 I/O, 4 corrupt trace, 5 analysis failure,
            6 degraded sweep (cells quarantined; healthy cells intact),
            7 input rejected by a resource governor,
            8 daemon busy or draining (client; retry with backoff)
            (HTTP mapping for the daemon: see the README table)"
    );
}

#[derive(Debug, Default)]
struct Options {
    workload: Option<WorkloadId>,
    trace: Option<String>,
    asm: Option<String>,
    size: Option<u32>,
    seed: Option<u64>,
    fuel: Option<u64>,
    rename: Option<RenameSet>,
    optimistic: bool,
    window: Option<usize>,
    branch: Option<BranchPolicy>,
    units: Option<usize>,
    skip: Option<usize>,
    take: Option<usize>,
    no_disambiguation: bool,
    value_stats: bool,
    unit_latency: bool,
    out: Option<String>,
    profile: Option<String>,
    json: Option<String>,
    format: Option<String>,
    plot: bool,
    inputs: Vec<i64>,
    windows: Vec<usize>,
    recover: bool,
    /// Trace input backend: `Some(true)` forces the memory-mapped backend
    /// (`--mmap`), `Some(false)` forces buffered reads (`--no-mmap`),
    /// `None` maps regular files and silently falls back to buffered
    /// reads where mapping is unavailable.
    mmap: Option<bool>,
    /// `--no-decode-ahead`: decode chunks inline on the analysis thread
    /// instead of one chunk ahead on a helper thread.
    no_decode_ahead: bool,
    checkpoint_every: Option<u64>,
    checkpoint: Option<String>,
    resume: Option<String>,
    live_well_cap: Option<usize>,
    /// Heartbeat interval in seconds (`--progress[=N]`).
    progress: Option<f64>,
    telemetry_out: Option<String>,
    metrics_out: Option<String>,
    /// `stats --telemetry FILE`: summarize a JSONL telemetry log.
    stats_telemetry: Option<String>,
    /// `stats --metrics FILE`: validate a Prometheus snapshot.
    stats_metrics: Option<String>,
    /// `sweep --workloads a,b,c|all`: multi-workload grid sweep through the
    /// parallel sweep engine instead of the single-workload ladder.
    workloads: Vec<WorkloadId>,
    /// Worker threads for the grid sweep (`0`/absent = all cores).
    jobs: Option<usize>,
    /// Failed-cell retries before quarantine (grid sweep).
    retries: Option<u32>,
    /// Base backoff between cell retries, in milliseconds (grid sweep).
    retry_backoff_ms: Option<u64>,
    /// `ingest --text FILE`: external text trace to convert.
    text: Option<String>,
    /// Where to also write the JSON rejection report on exit code 7.
    reject_report: Option<String>,
    /// `stats --telemetry`: fail on the first malformed JSONL line instead
    /// of warning and skipping it.
    strict: bool,
    /// `--timeline-out FILE`: record a flight-recorder timeline and export
    /// it as Chrome trace-event JSON (analyze / run / sweep).
    timeline_out: Option<String>,
    /// `profile A --diff B`: compare two timelines stage by stage.
    diff: Option<String>,
    /// `profile --top N`: how many slowest slices to list (default 10).
    top: Option<usize>,
    /// `profile CURRENT --bench-compare BASELINE`: compare bench-log rows
    /// against a baseline instead of profiling a timeline.
    bench_compare: Option<String>,
    /// `--bench-threshold PCT`: allowed slowdown before the compare fails
    /// (default 20).
    bench_threshold: Option<f64>,
    /// `serve --addr HOST:PORT`: TCP bind address.
    addr: Option<String>,
    /// `serve --uds PATH`: unix-domain socket path instead of TCP.
    uds: Option<String>,
    /// `serve --workers N`: worker threads.
    workers: Option<usize>,
    /// `serve --queue N`: admission queue capacity.
    queue: Option<usize>,
    /// `serve --max-live-sessions N`: resident analyzer budget.
    max_live_sessions: Option<usize>,
    /// `serve --spool DIR`: trace + session spool directory.
    spool: Option<String>,
    /// `serve --deadline-ms N`: per-request analysis deadline.
    deadline_ms: Option<u64>,
    /// `serve --max-body-mb N`: largest accepted request body.
    max_body_mb: Option<u64>,
    /// `serve --ready-file FILE`: readiness line for launchers.
    ready_file: Option<String>,
    /// `client --body FILE`: request body source (`-` reads stdin).
    body: Option<String>,
    /// Non-flag arguments (only `profile` and `client` accept them).
    positional: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--workload" => {
                    let name = value()?;
                    opts.workload = Some(
                        WorkloadId::by_name(&name)
                            .ok_or_else(|| format!("unknown workload `{name}`"))?,
                    );
                }
                "--trace" => opts.trace = Some(value()?),
                "--asm" => opts.asm = Some(value()?),
                "--size" => opts.size = Some(parse_num(&value()?)?),
                "--seed" => opts.seed = Some(parse_num(&value()?)?),
                "--fuel" => opts.fuel = Some(parse_num(&value()?)?),
                "--rename" => {
                    let mode = value()?;
                    opts.rename = Some(match mode.as_str() {
                        "none" => RenameSet::none(),
                        "regs" => RenameSet::registers_only(),
                        "regs-stack" => RenameSet::registers_and_stack(),
                        "all" => RenameSet::all(),
                        _ => return Err(format!("unknown rename mode `{mode}`")),
                    });
                }
                "--optimistic" => opts.optimistic = true,
                "--window" => opts.window = Some(parse_num(&value()?)?),
                "--branch" => {
                    let mode = value()?;
                    opts.branch = Some(parse_branch_policy(&mode)?);
                }
                "--units" => opts.units = Some(parse_num(&value()?)?),
                "--skip" => opts.skip = Some(parse_num(&value()?)?),
                "--take" => opts.take = Some(parse_num(&value()?)?),
                "--no-disambiguation" => opts.no_disambiguation = true,
                "--value-stats" => opts.value_stats = true,
                "--unit-latency" => opts.unit_latency = true,
                "--out" => opts.out = Some(value()?),
                "--profile" => opts.profile = Some(value()?),
                "--json" => opts.json = Some(value()?),
                "--format" => opts.format = Some(value()?),
                "--plot" => opts.plot = true,
                "--input" => {
                    opts.inputs = parse_list(&value()?)?;
                }
                "--windows" => {
                    opts.windows = parse_list(&value()?)?
                        .into_iter()
                        .map(|v| v as usize)
                        .collect();
                }
                "--workloads" => {
                    let list = value()?;
                    if list == "all" {
                        opts.workloads = WorkloadId::ALL.to_vec();
                    } else {
                        for name in list.split(',').filter(|s| !s.is_empty()) {
                            opts.workloads.push(
                                WorkloadId::by_name(name)
                                    .ok_or_else(|| format!("unknown workload `{name}`"))?,
                            );
                        }
                    }
                    if opts.workloads.is_empty() {
                        return Err("--workloads requires at least one workload".into());
                    }
                }
                "--jobs" => opts.jobs = Some(parse_num(&value()?)?),
                "--retries" => opts.retries = Some(parse_num(&value()?)?),
                "--retry-backoff-ms" => opts.retry_backoff_ms = Some(parse_num(&value()?)?),
                "--recover" => opts.recover = true,
                "--mmap" => opts.mmap = Some(true),
                "--no-mmap" => opts.mmap = Some(false),
                "--no-decode-ahead" => opts.no_decode_ahead = true,
                "--checkpoint-every" => {
                    let n: u64 = parse_num(&value()?)?;
                    if n == 0 {
                        return Err("--checkpoint-every requires a positive count".into());
                    }
                    opts.checkpoint_every = Some(n);
                }
                "--checkpoint" => opts.checkpoint = Some(value()?),
                "--resume" => opts.resume = Some(value()?),
                "--live-well-cap" => {
                    let n: usize = parse_num(&value()?)?;
                    if n == 0 {
                        return Err("--live-well-cap requires a positive size".into());
                    }
                    opts.live_well_cap = Some(n);
                }
                "--progress" => opts.progress = Some(2.0),
                "--telemetry-out" => opts.telemetry_out = Some(value()?),
                "--metrics-out" => opts.metrics_out = Some(value()?),
                "--telemetry" => opts.stats_telemetry = Some(value()?),
                "--metrics" => opts.stats_metrics = Some(value()?),
                "--text" => opts.text = Some(value()?),
                "--reject-report" => opts.reject_report = Some(value()?),
                "--strict" => opts.strict = true,
                "--timeline-out" => opts.timeline_out = Some(value()?),
                "--diff" => opts.diff = Some(value()?),
                "--top" => opts.top = Some(parse_num(&value()?)?),
                "--bench-compare" => opts.bench_compare = Some(value()?),
                "--addr" => opts.addr = Some(value()?),
                "--uds" => opts.uds = Some(value()?),
                "--workers" => {
                    let n: usize = parse_num(&value()?)?;
                    if n == 0 {
                        return Err("--workers requires a positive count".into());
                    }
                    opts.workers = Some(n);
                }
                "--queue" => opts.queue = Some(parse_num(&value()?)?),
                "--max-live-sessions" => {
                    let n: usize = parse_num(&value()?)?;
                    if n == 0 {
                        return Err("--max-live-sessions requires a positive count".into());
                    }
                    opts.max_live_sessions = Some(n);
                }
                "--spool" => opts.spool = Some(value()?),
                "--deadline-ms" => opts.deadline_ms = Some(parse_num(&value()?)?),
                "--max-body-mb" => opts.max_body_mb = Some(parse_num(&value()?)?),
                "--ready-file" => opts.ready_file = Some(value()?),
                "--body" => opts.body = Some(value()?),
                "--bench-threshold" => {
                    let pct: f64 = parse_num(&value()?)?;
                    if !pct.is_finite() || pct < 0.0 {
                        return Err("--bench-threshold must be a non-negative percent".into());
                    }
                    opts.bench_threshold = Some(pct);
                }
                flag if flag.starts_with("--progress=") => {
                    let secs: f64 = flag["--progress=".len()..]
                        .parse()
                        .map_err(|_| format!("invalid progress interval `{flag}`"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err("--progress interval must be a non-negative number".into());
                    }
                    opts.progress = Some(secs);
                }
                other if !other.starts_with('-') => opts.positional.push(other.to_owned()),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    fn config(&self, segments: SegmentMap) -> AnalysisConfig {
        let mut config = AnalysisConfig::dataflow_limit().with_segments(segments);
        if let Some(renames) = self.rename {
            config = config.with_renames(renames);
        }
        if self.optimistic {
            config = config.with_syscall_policy(SyscallPolicy::Optimistic);
        }
        if let Some(w) = self.window {
            config = config.with_window(WindowSize::bounded(w));
        }
        if let Some(policy) = self.branch {
            config = config.with_branch_policy(policy);
        }
        if let Some(units) = self.units {
            config = config.with_issue_limit(units);
        }
        if self.no_disambiguation {
            config = config.with_memory_model(MemoryModel::NoDisambiguation);
        }
        if self.value_stats {
            config = config.with_value_stats(true);
        }
        if self.unit_latency {
            config = config.with_latency(LatencyModel::unit());
        }
        if let Some(cap) = self.live_well_cap {
            config = config.with_live_well_cap(cap);
        }
        config
    }

    fn build_workload(&self) -> Result<Workload, String> {
        let id = self
            .workload
            .ok_or("this command needs --workload (see `paragraph list`)")?;
        let mut workload = Workload::new(id);
        if let Some(size) = self.size {
            workload = workload.with_size(size);
        }
        if let Some(seed) = self.seed {
            workload = workload.with_seed(seed);
        }
        Ok(workload)
    }

    fn fuel(&self) -> u64 {
        self.fuel.unwrap_or(paragraph_vm::DEFAULT_FUEL)
    }
}

fn parse_branch_policy(mode: &str) -> Result<BranchPolicy, String> {
    Ok(match mode {
        "perfect" => BranchPolicy::Perfect,
        "stall" => BranchPolicy::StallAlways,
        "always-taken" => BranchPolicy::Predict(PredictorKind::AlwaysTaken),
        "never-taken" => BranchPolicy::Predict(PredictorKind::NeverTaken),
        "btfn" => BranchPolicy::Predict(PredictorKind::Btfn),
        other => {
            let (kind, bits) = other
                .split_once(':')
                .ok_or_else(|| format!("unknown branch policy `{other}`"))?;
            let index_bits: u8 = bits
                .parse()
                .map_err(|_| format!("invalid predictor size `{bits}`"))?;
            match kind {
                "bimodal" => BranchPolicy::Predict(PredictorKind::Bimodal { index_bits }),
                "gshare" => BranchPolicy::Predict(PredictorKind::Gshare { index_bits }),
                _ => return Err(format!("unknown branch policy `{other}`")),
            }
        }
    })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("invalid number `{s}`"))
}

fn parse_list(s: &str) -> Result<Vec<i64>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(parse_num)
        .collect()
}

fn cmd_list() -> Result<(), CliError> {
    println!(
        "{:<12} {:<9} {:<11} {:>6}  description",
        "name", "language", "type", "size"
    );
    for id in WorkloadId::ALL {
        println!(
            "{:<12} {:<9} {:<11} {:>6}  {}",
            id.name(),
            id.source_language(),
            id.benchmark_type(),
            id.default_size(),
            id.description()
        );
    }
    Ok(())
}

/// The decoded input of one analysis: records, segment map, recovery
/// tallies (under `--recover`), and the bytes the trace occupied on disk
/// (0 when the trace was generated in memory).
struct LoadedTrace {
    records: Vec<TraceRecord>,
    segments: SegmentMap,
    recovery: Option<RecoveryStats>,
    bytes: u64,
    /// Identity of the stream for checkpoint embedding/verification —
    /// taken after `--skip` but *before* `--take`, so a checkpoint saved
    /// under a `--take` bound resumes over the full trace. `None` when no
    /// checkpointing is in play.
    identity: Option<paragraph_core::TraceIdentity>,
}

/// Opens the trace input through the backend `--mmap`/`--no-mmap` asks
/// for: forced mapped, forced buffered, or (by default) mapped with a
/// silent fallback to buffered reads. Decode semantics are identical
/// across backends; only how bytes reach the decoder differs.
fn open_trace_source(path: &str, mmap: Option<bool>) -> Result<TraceSource, CliError> {
    let p = std::path::Path::new(path);
    match mmap {
        Some(true) => TraceSource::mapped_file(p),
        Some(false) => TraceSource::buffered_file(p),
        None => TraceSource::auto_file(p),
    }
    .map_err(|e| io_err(path, e))
}

/// Loads the records to analyze: either a binary trace or a workload run,
/// then applies the `--skip`/`--take` phase window. Under `--recover` a
/// damaged trace is read in recovery mode; the returned stats say what was
/// lost.
///
/// When the trace is memory-mapped, `--jobs` is parallel, and the stream
/// scans as pristine, whole-file decode fans out across the workers —
/// each decodes its own span of chunks straight from the shared map. Any
/// anomaly (damage, truncation, limits, a recovery request) declines the fast path
/// and the sequential reader, which owns the exact error and recovery
/// semantics, takes over.
fn load_records(opts: &Options) -> Result<LoadedTrace, CliError> {
    let mut loaded = if let Some(path) = &opts.trace {
        let mut span = paragraph_core::span!("decode");
        let mut tspan = telemetry::timeline::timeline_span("decode");
        let source = open_trace_source(path, opts.mmap)?;
        let limits = Limits::from_env();
        let jobs = opts
            .jobs
            .map_or(1, paragraph_core::parallel::effective_jobs);
        let parallel = if jobs > 1 && !opts.recover {
            source.shared_bytes().and_then(|bytes| {
                paragraph_trace::source::decode_all_parallel(&bytes, jobs, &limits)
            })
        } else {
            None
        };
        if let Some(decoded) = parallel {
            span.field("records", decoded.total);
            span.field("bytes", decoded.bytes);
            span.field("parallel", jobs as u64);
            tspan.arg("records", decoded.total);
            tspan.arg("bytes", decoded.bytes);
            tspan.arg("jobs", jobs as u64);
            paragraph_core::counter!("decode.records", decoded.total);
            paragraph_core::counter!("decode.bytes", decoded.bytes);
            LoadedTrace {
                records: decoded.records,
                segments: decoded.segments,
                recovery: None,
                bytes: decoded.bytes,
                identity: None,
            }
        } else {
            let mut reader = if opts.recover {
                TraceReader::from_source_with_recovery(source)
            } else {
                TraceReader::from_source(source)
            }
            .map_err(|e| trace_err(path, e))?
            // Every length the file declares is checked against the governor
            // before anything is allocated for it; violations exit 7.
            .with_governor(ResourceGovernor::new(Limits::from_env()));
            let segments = reader.segment_map();
            // Block decode: whole chunk payloads at a time, no per-record
            // iterator dispatch.
            let mut records = Vec::new();
            while reader
                .read_block(&mut records)
                .map_err(|e| trace_err(path, e))?
                > 0
            {}
            let recovery = opts.recover.then(|| reader.recovery_stats());
            span.field("records", reader.records_read());
            span.field("bytes", reader.bytes_read());
            tspan.arg("records", reader.records_read());
            tspan.arg("bytes", reader.bytes_read());
            paragraph_core::counter!("decode.records", reader.records_read());
            paragraph_core::counter!("decode.bytes", reader.bytes_read());
            if let Some(stats) = &recovery {
                span.field("resyncs", stats.resyncs);
                paragraph_core::counter!("decode.resyncs", stats.resyncs);
                paragraph_core::counter!("decode.records_skipped", stats.records_skipped);
            }
            LoadedTrace {
                records,
                segments,
                recovery,
                bytes: reader.bytes_read(),
                identity: None,
            }
        }
    } else {
        let mut span = paragraph_core::span!("generate");
        let mut tspan = telemetry::timeline::timeline_span("generate");
        let workload = opts.build_workload().map_err(usage_err)?;
        let (records, segments) = workload
            .collect_trace(opts.fuel())
            .map_err(|e| CliError::Analysis(format!("{}: {e}", workload.id())))?;
        span.field("records", records.len() as u64);
        tspan.arg("records", records.len() as u64);
        LoadedTrace {
            records,
            segments,
            recovery: None,
            bytes: 0,
            identity: None,
        }
    };
    if let Some(skip) = opts.skip {
        loaded.records.drain(..skip.min(loaded.records.len()));
    }
    // The identity is taken before `--take` truncates: `--take` bounds how
    // far this run analyzes the trace, it does not make it a different
    // trace — a checkpoint saved under `--take N` must resume over the
    // full stream. `--skip` genuinely shifts the stream, so it applies
    // first. Computed once here, never in the hot loop, and only when
    // checkpoints are in play.
    loaded.identity = (opts.checkpoint_every.is_some() || opts.resume.is_some())
        .then(|| paragraph_core::TraceIdentity::of_records(&loaded.records));
    if let Some(take) = opts.take {
        loaded.records.truncate(take);
    }
    Ok(loaded)
}

/// Prints what recovery-mode reading had to discard, if anything.
fn print_recovery_stats(stats: &RecoveryStats) {
    if stats.records_skipped == 0 && stats.resyncs == 0 {
        return;
    }
    eprintln!(
        "warning: trace damage — {} records lost, {} corrupt chunks skipped, \
         {} duplicate chunks dropped, {} resyncs over {} bytes; \
         {} records recovered",
        stats.records_skipped,
        stats.chunks_skipped,
        stats.duplicate_chunks,
        stats.resyncs,
        stats.bytes_skipped,
        stats.records_read,
    );
}

/// Prints the analysis report and writes the requested artifacts. Artifact
/// write failures (a full disk under `--profile`/`--json`) degrade: the
/// report still reaches stdout, the failure lands in `artifact_failures`,
/// and the caller turns a non-empty ledger into exit code 3 at the end.
fn print_report(report: &AnalysisReport, opts: &Options, artifact_failures: &mut Vec<String>) {
    // The text rendering is shared with the daemon (`format=text`
    // responses call the same function), so serve/CLI byte-identity holds
    // by construction rather than by keeping two format strings in sync.
    print!("{}", paragraph_serve::render_report_text(report));
    if let Some(path) = &opts.profile {
        match paragraph_core::artifact::write_atomic(std::path::Path::new(path), |out| {
            report.profile().write_csv(out)
        }) {
            // Diagnostics go to stderr; stdout carries only the report
            // itself, so piping/redirecting it never picks up status noise.
            Ok(()) => eprintln!("profile written to {path}"),
            Err(e) => {
                eprintln!("warning: profile CSV failed ({path}: {e})");
                artifact_failures.push(format!("profile {path}: {e}"));
            }
        }
    }
    if let Some(path) = &opts.json {
        match paragraph_core::artifact::write_atomic_bytes(
            std::path::Path::new(path),
            report.to_json().as_bytes(),
        ) {
            Ok(()) => eprintln!("report written to {path}"),
            Err(e) => {
                eprintln!("warning: report JSON failed ({path}: {e})");
                artifact_failures.push(format!("report {path}: {e}"));
            }
        }
    }
    if opts.plot {
        println!("{}", report.profile().ascii_plot(72, 12));
    }
}

/// The checkpoint path for this run: `--checkpoint FILE`, or derived from
/// the trace file name.
fn checkpoint_path(opts: &Options) -> String {
    opts.checkpoint.clone().unwrap_or_else(|| {
        opts.trace
            .as_deref()
            .map(|t| format!("{t}.pgcp"))
            .unwrap_or_else(|| "paragraph.pgcp".to_owned())
    })
}

/// Saves a checkpoint through the shared crash-consistent writer: unique
/// temp name, `sync_all`, rename, parent-directory fsync — an interrupt or
/// power cut mid-save never destroys the previous checkpoint, and two
/// concurrent processes checkpointing the same path never collide on the
/// temp file.
fn save_checkpoint_atomic(analyzer: &LiveWell, path: &str) -> Result<(), CliError> {
    paragraph_core::artifact::write_atomic(std::path::Path::new(path), |out| {
        analyzer
            .save_checkpoint(out)
            .map_err(|e| std::io::Error::other(e.to_string()))
    })
    .map_err(|e| io_err(path, e))
}

/// The telemetry wiring of one `analyze` run: whether the global registry
/// was enabled, and where to drop the Prometheus snapshot.
struct TelemetrySetup {
    enabled: bool,
    metrics_out: Option<String>,
}

/// Turns telemetry on when any of `--progress`/`--telemetry-out`/
/// `--metrics-out` asks for it; otherwise the global registry stays absent
/// and the hot path pays only the macros' disabled check.
fn init_telemetry(opts: &Options) -> Result<TelemetrySetup, CliError> {
    let wanted =
        opts.progress.is_some() || opts.telemetry_out.is_some() || opts.metrics_out.is_some();
    if !wanted {
        return Ok(TelemetrySetup {
            enabled: false,
            metrics_out: None,
        });
    }
    let registry = telemetry::global();
    registry.enable();
    if let Some(path) = &opts.telemetry_out {
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        registry.set_event_sink(Box::new(BufWriter::new(file)));
    }
    Ok(TelemetrySetup {
        enabled: true,
        metrics_out: opts.metrics_out.clone(),
    })
}

/// Writes the current global metrics as a Prometheus text snapshot.
fn write_metrics_snapshot(path: &str) -> Result<(), CliError> {
    let text = telemetry::global().snapshot().to_prometheus();
    std::fs::write(path, text).map_err(|e| io_err(path, e))
}

/// Arms the flight recorder when `--timeline-out` asks for it. Separate
/// from the metrics registry: a timeline can be recorded without paying
/// for counters/heartbeats and vice versa. Lane capacity is overridable
/// via `PARAGRAPH_TIMELINE_EVENTS` (events per thread lane).
fn init_timeline(opts: &Options) -> bool {
    if opts.timeline_out.is_none() {
        return false;
    }
    let timeline = telemetry::timeline::timeline();
    if let Some(cap) = std::env::var("PARAGRAPH_TIMELINE_EVENTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        timeline.set_lane_capacity(cap);
    }
    timeline.enable();
    timeline.set_thread_name("main");
    true
}

/// Exports the recorded timeline as Chrome trace-event JSON, atomically.
/// Touches only the target file and stderr — never stdout, so instrumented
/// reports stay byte-identical to plain runs.
fn export_timeline(path: &str) -> Result<(), CliError> {
    let Some(timeline) = telemetry::timeline::timeline_active() else {
        return Ok(());
    };
    paragraph_core::artifact::write_atomic(std::path::Path::new(path), |out| {
        timeline.export_chrome_trace(out)
    })
    .map_err(|e| io_err(path, e))?;
    eprintln!("timeline written to {path}");
    Ok(())
}

/// [`export_timeline`] with ledger-style degradation: a failed export
/// warns and lands in the artifact-failure ledger instead of aborting.
fn export_timeline_degraded(path: &str, artifact_failures: &mut Vec<String>) {
    if let Err(e) = export_timeline(path) {
        eprintln!("warning: timeline export failed ({e})");
        artifact_failures.push(format!("timeline {path}: {e}"));
    }
}

/// Bytes attributable to `seen` of `total_records` records, proportional
/// to the trace's on-disk size. Widened to `u128` before multiplying:
/// `total_bytes * seen` overflows `u64` long before either factor is
/// individually implausible (a 1 TiB trace crosses 2^64 once ~16M records
/// are seen), and the former `saturating_mul` silently pinned the
/// heartbeat's byte figures at garbage values from then on.
fn proportional_bytes(total_bytes: u64, seen: u64, total_records: u64) -> u64 {
    if total_records == 0 {
        return 0;
    }
    let scaled = u128::from(total_bytes) * u128::from(seen) / u128::from(total_records);
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

/// One periodic beat of the analysis loop: refresh gauges, and when a
/// heartbeat is due, print it to stderr and log it as a `progress` event.
/// `extra_records` counts records analyzed outside `analyzer` — the
/// worker segments of a `--jobs` run, whose outcomes merge in only at the
/// end — so the heartbeat reflects whole-run progress.
fn progress_beat(
    reporter: &mut Option<ProgressReporter>,
    analyzer: &LiveWell,
    total_bytes: u64,
    total_records: usize,
    extra_records: u64,
    force: bool,
) {
    let instrumented = telemetry::enabled();
    if instrumented {
        analyzer.publish_telemetry(telemetry::global());
    }
    let Some(reporter) = reporter.as_mut() else {
        return;
    };
    if !force && !reporter.is_due() {
        return;
    }
    let (chunk0_seen, _, cp, _) = analyzer.snapshot();
    let seen = chunk0_seen.saturating_add(extra_records);
    // Records are decoded up front, so attribute bytes to the analysis
    // proportionally: seen/total of the trace's on-disk size.
    let bytes = proportional_bytes(total_bytes, seen, total_records as u64);
    let tick = reporter.force_tick(seen, bytes, cp);
    eprintln!("{}", tick.line);
    if instrumented {
        telemetry::global().emit(
            "progress",
            &[
                ("records", Value::U64(tick.records)),
                ("records_per_sec", Value::F64(tick.records_per_sec)),
                ("bytes_per_sec", Value::F64(tick.bytes_per_sec)),
                ("mb_per_sec", Value::F64(tick.mb_per_sec)),
                ("critical_path", Value::U64(cp)),
                ("eta_secs", Value::F64(tick.eta_secs.unwrap_or(-1.0))),
            ],
        );
    }
}

/// Saves a checkpoint under a `checkpoint.save` span, then refreshes the
/// Prometheus snapshot so an external watcher always sees state no older
/// than the last checkpoint.
fn save_checkpoint_instrumented(
    analyzer: &LiveWell,
    path: &str,
    setup: &TelemetrySetup,
) -> Result<(), CliError> {
    {
        let mut span = paragraph_core::span!("checkpoint.save");
        span.field("records", analyzer.records_processed());
        let mut tspan = telemetry::timeline::timeline_span("checkpoint.save");
        tspan.arg("records", analyzer.records_processed());
        save_checkpoint_atomic(analyzer, path)?;
    }
    if setup.enabled {
        analyzer.publish_telemetry(telemetry::global());
        if let Some(metrics_path) = &setup.metrics_out {
            write_metrics_snapshot(metrics_path)?;
        }
    }
    Ok(())
}

/// Returns the trace path when `analyze` should take the decode-ahead
/// streaming path: the analyzer consumes chunk N while a helper thread
/// CRC-checks and decodes chunk N+1, so decode and analysis overlap
/// instead of running back to back. Only configurations whose stdout is
/// trivially byte-identical to the load-then-analyze path are eligible: a
/// plain sequential run over a trace file, with no phase window,
/// recovery, checkpointing, heartbeats, or structured telemetry (those
/// paths need the whole record vector, exact up-front counts, or decode
/// bookkeeping the pipeline does not reproduce).
fn streaming_trace_path(opts: &Options, setup: &TelemetrySetup) -> Option<String> {
    let path = opts.trace.clone()?;
    let plain = !opts.no_decode_ahead
        && !opts.recover
        && !setup.enabled
        && opts.resume.is_none()
        && opts.checkpoint_every.is_none()
        && opts.skip.is_none()
        && opts.take.is_none()
        && opts.progress.is_none()
        && opts
            .jobs
            .map_or(1, paragraph_core::parallel::effective_jobs)
            <= 1;
    plain.then_some(path)
}

/// `analyze --trace` through the decode-ahead pipeline (see
/// [`streaming_trace_path`] for when this runs). The helper thread gets
/// its own `decode-ahead` timeline lane, so a `--timeline-out` recording
/// shows decode slices running ahead of the `livewell` slices that
/// consume them.
fn cmd_analyze_streaming(opts: &Options, path: &str) -> Result<(), CliError> {
    use paragraph_trace::source::{DecodeAhead, DecodeEvent, DecodeObserver};
    let source = open_trace_source(path, opts.mmap)?;
    let reader = TraceReader::from_source(source)
        .map_err(|e| trace_err(path, e))?
        .with_governor(ResourceGovernor::new(Limits::from_env()));
    let segments = reader.segment_map();
    let mut analyzer = LiveWell::new(opts.config(segments));
    analyzer.set_trace_identity(None);
    let observer: Option<DecodeObserver> = telemetry::timeline::timeline_active().map(|timeline| {
        let mut block: Option<telemetry::timeline::TimelineSpan<'static>> = None;
        Box::new(move |event: DecodeEvent| match event {
            DecodeEvent::ThreadStart => timeline.set_thread_name("decode-ahead"),
            DecodeEvent::BlockStart => block = Some(timeline.span("decode.block")),
            DecodeEvent::BlockEnd { records } => {
                if let Some(mut span) = block.take() {
                    span.arg("records", records as u64);
                }
            }
        }) as DecodeObserver
    });
    let mut artifact_failures: Vec<String> = Vec::new();
    let stream_err = {
        let mut span = paragraph_core::span!("analyze");
        let mut da = DecodeAhead::spawn(reader, observer).map_err(|e| io_err(path, e))?;
        let mut stream_err = None;
        while let Some(batch) = da.next_batch() {
            match batch {
                Ok(batch) => {
                    {
                        let mut tspan = telemetry::timeline::timeline_span("livewell");
                        tspan.arg("records", batch.len() as u64);
                        analyzer.process_slice(&batch);
                    }
                    da.recycle(batch);
                }
                // The fault arrives after every batch decoded ahead of it,
                // exactly like the sequential reader delivers it; drain the
                // pipeline before surfacing it.
                Err(e) => {
                    stream_err = Some(e);
                    break;
                }
            }
        }
        let done = da.finish();
        span.field("records", done.stats.records_read);
        span.field("bytes", done.bytes_read);
        paragraph_core::counter!("decode.records", done.stats.records_read);
        paragraph_core::counter!("decode.bytes", done.bytes_read);
        stream_err
    };
    if let Some(e) = stream_err {
        return Err(trace_err(path, e));
    }
    let report = {
        let _span = paragraph_core::span!("report");
        let _tspan = telemetry::timeline::timeline_span("report");
        analyzer.finish()
    };
    print_report(&report, opts, &mut artifact_failures);
    if let Some(out) = &opts.timeline_out {
        export_timeline_degraded(out, &mut artifact_failures);
    }
    if !artifact_failures.is_empty() {
        return Err(CliError::Io(format!(
            "analysis completed, but {} artifact(s) failed: {}",
            artifact_failures.len(),
            artifact_failures.join("; ")
        )));
    }
    Ok(())
}

fn cmd_analyze(opts: &Options) -> Result<(), CliError> {
    let setup = init_telemetry(opts)?;
    init_timeline(opts);
    if let Some(path) = streaming_trace_path(opts, &setup) {
        return cmd_analyze_streaming(opts, &path);
    }
    let loaded = load_records(opts)?;
    if let Some(stats) = &loaded.recovery {
        print_recovery_stats(stats);
    }
    let records = &loaded.records;
    let config = opts.config(loaded.segments);
    // Workers of a `--jobs` run analyze their segments under (a variant
    // of) the same configuration; the primary analyzer consumes `config`
    // itself below.
    let worker_config = config.clone();
    if setup.enabled {
        let source = opts
            .trace
            .clone()
            .or_else(|| opts.workload.map(|w| w.name().to_owned()))
            .unwrap_or_default();
        telemetry::global().emit(
            "run_start",
            &[
                ("command", Value::Str("analyze")),
                ("source", Value::Str(&source)),
                ("records", Value::U64(records.len() as u64)),
                ("bytes", Value::U64(loaded.bytes)),
            ],
        );
    }

    // The identity of the analyzed trace (see `load_records`): checkpoints
    // embed it so `--resume` against the wrong trace fails as typed
    // corruption instead of producing silently wrong numbers.
    let trace_identity = loaded.identity;
    let mut analyzer = match &opts.resume {
        Some(path) => {
            let mut span = paragraph_core::span!("checkpoint.load");
            let _tspan = telemetry::timeline::timeline_span("checkpoint.load");
            let file = File::open(path).map_err(|e| io_err(path, e))?;
            let analyzer = LiveWell::resume_from(BufReader::new(file), config)
                .map_err(|e| checkpoint_err(path, e))?;
            if let Some(current) = &trace_identity {
                analyzer
                    .verify_trace_identity(current)
                    .map_err(|e| checkpoint_err(path, e))?;
            }
            span.field("records", analyzer.records_processed());
            eprintln!(
                "resumed from {path} at record {}",
                analyzer.records_processed()
            );
            analyzer
        }
        None => LiveWell::new(config),
    };
    analyzer.set_trace_identity(trace_identity);
    let done = usize::try_from(analyzer.records_processed()).unwrap_or(usize::MAX);
    if done > records.len() {
        return Err(CliError::CorruptTrace(format!(
            "checkpoint is ahead of the input: {} records processed, {} available",
            done,
            records.len()
        )));
    }

    // Intra-trace parallelism: cut the records still to analyze at
    // conservative-syscall firewalls into one segment per job. Worker
    // segments start on fresh analyzers and their outcomes are spliced
    // back level-exactly, so the report is byte-identical to --jobs 1.
    // Configurations the cut rule cannot reproduce exactly — and traces
    // without syscalls — fall back to the single-threaded path with a
    // note, never to approximate numbers. See docs/hotpath.md.
    let jobs = opts
        .jobs
        .map_or(1, paragraph_core::parallel::effective_jobs);
    let cuts: Vec<usize> = if jobs > 1 {
        match paragraph_core::parallel::eligibility(records, &worker_config) {
            Ok(()) => {
                let cuts = paragraph_core::parallel::plan_cuts(records, done, jobs);
                if cuts.is_empty() && opts.progress.is_some() {
                    eprintln!(
                        "note: --jobs {jobs}: no conservative-syscall cut points; \
                         analyzing on one thread"
                    );
                }
                cuts
            }
            Err(reason) => {
                if opts.progress.is_some() {
                    eprintln!("note: --jobs {jobs}: {reason}; analyzing on one thread");
                }
                Vec::new()
            }
        }
    } else {
        Vec::new()
    };

    let mut reporter = opts.progress.map(|secs| {
        ProgressReporter::new(Duration::from_secs_f64(secs), Some(records.len() as u64))
            .with_total_bytes((loaded.bytes > 0).then_some(loaded.bytes))
            .with_resumed(
                done as u64,
                proportional_bytes(loaded.bytes, done as u64, records.len() as u64),
            )
    });
    let ckpt_path = checkpoint_path(opts);
    // Artifact-failure ledger: sink failures (checkpoint, telemetry log,
    // metrics, CSVs) never abort the analysis — they warn, the analysis
    // runs to completion, and a non-empty ledger becomes exit code 3.
    let mut artifact_failures: Vec<String> = Vec::new();
    let mut checkpoints_enabled = opts.checkpoint_every.is_some();
    if checkpoints_enabled && !cuts.is_empty() {
        // A checkpoint is a resumable *sequential* analyzer state. Chunk-0
        // checkpoints would stay valid, but the post-merge state is not a
        // sequential prefix of anything, so a final checkpoint would
        // resume into silently wrong numbers. Refuse the combination
        // loudly rather than write a trap.
        eprintln!(
            "warning: checkpoints are disabled under --jobs {jobs}: a merged analyzer \
             state cannot be resumed; rerun with --jobs 1 to checkpoint"
        );
        checkpoints_enabled = false;
    }
    if checkpoints_enabled {
        // Sweep temp files a crashed predecessor left next to the
        // checkpoint (scoped to this checkpoint's name, so nothing else in
        // a shared directory is touched).
        let swept =
            paragraph_core::artifact::clean_orphaned_tmp_for(std::path::Path::new(&ckpt_path));
        if swept > 0 {
            eprintln!("removed {swept} orphaned checkpoint temp file(s) for {ckpt_path}");
        }
    }
    let save_checkpoint_degraded =
        |analyzer: &LiveWell, enabled: &mut bool, failures: &mut Vec<String>| {
            if !*enabled {
                return;
            }
            if let Err(e) = save_checkpoint_instrumented(analyzer, &ckpt_path, &setup) {
                eprintln!("warning: checkpoint save failed ({e}); continuing without checkpoints");
                failures.push(format!("checkpoint {ckpt_path}: {e}"));
                *enabled = false;
            }
        };
    // Power-of-two stride between beat checks: one mask-and-branch per
    // record when idle, so a plain run stays within the <2% overhead budget.
    const BEAT_STRIDE: u64 = 1 << 16;
    {
        let mut span = paragraph_core::span!("analyze");
        span.field("records", (records.len() - done) as u64);
        // Chunk 0 — everything before the first cut; the whole trace when
        // running sequentially — is processed right here by the (possibly
        // resumed) primary analyzer with the usual checkpoint/heartbeat
        // cadence, while worker segments run concurrently and splice in
        // at the end. Heartbeats fold in worker progress via a shared
        // counter so the line tracks whole-run completion.
        let seq_end = cuts.first().copied().unwrap_or(records.len()) as u64;
        let worker_progress = std::sync::atomic::AtomicU64::new(0);
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = cuts
                .iter()
                .zip(cuts.iter().skip(1).chain(std::iter::once(&records.len())))
                .enumerate()
                .map(|(i, (&lo, &hi))| {
                    let worker_config = &worker_config;
                    let worker_progress = &worker_progress;
                    scope.spawn(move || {
                        // Each worker gets its own timeline lane, named so
                        // Perfetto shows the segment fan-out.
                        if let Some(timeline) = telemetry::timeline::timeline_active() {
                            timeline.set_thread_name(&format!("analyze-{}", i + 1));
                        }
                        let mut tspan = telemetry::timeline::timeline_span("segment");
                        tspan.arg("records", (hi - lo) as u64);
                        paragraph_core::parallel::run_segment(
                            &records[lo..hi],
                            worker_config,
                            worker_progress,
                        )
                    })
                })
                .collect();
            // Feed the analyzer whole slices, cut only where a checkpoint
            // or heartbeat is due — the per-record loop body costs more
            // than the placement math for cheap records.
            let mut n = done as u64;
            while n < seq_end {
                let mut next = seq_end;
                if let Some(every) = opts.checkpoint_every {
                    next = next.min((n / every + 1) * every);
                }
                next = next.min((n / BEAT_STRIDE + 1) * BEAT_STRIDE);
                {
                    // One timeline slice per batch — stage attribution at
                    // checkpoint/beat boundaries, nothing per record.
                    let mut tspan = telemetry::timeline::timeline_span("livewell");
                    tspan.arg("records", next - n);
                    analyzer.process_slice(&records[n as usize..next as usize]);
                }
                n = next;
                if let Some(every) = opts.checkpoint_every {
                    if n.is_multiple_of(every) {
                        save_checkpoint_degraded(
                            &analyzer,
                            &mut checkpoints_enabled,
                            &mut artifact_failures,
                        );
                    }
                }
                if n & (BEAT_STRIDE - 1) == 0 {
                    let extra = worker_progress.load(std::sync::atomic::Ordering::Relaxed);
                    progress_beat(
                        &mut reporter,
                        &analyzer,
                        loaded.bytes,
                        records.len(),
                        extra,
                        false,
                    );
                    if let Some(timeline) = telemetry::timeline::timeline_active() {
                        let (seen, _, critical_path, _) = analyzer.snapshot();
                        timeline.counter("livewell.records", seen.saturating_add(extra));
                        timeline.counter("livewell.critical_path", critical_path);
                    }
                }
            }
            // Chunk 0 is done; keep heartbeats flowing while the worker
            // segments drain, then collect their outcomes in trace order.
            while handles.iter().any(|h| !h.is_finished()) {
                std::thread::sleep(Duration::from_millis(25));
                progress_beat(
                    &mut reporter,
                    &analyzer,
                    loaded.bytes,
                    records.len(),
                    worker_progress.load(std::sync::atomic::Ordering::Relaxed),
                    false,
                );
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        if !outcomes.is_empty() {
            if outcomes.iter().all(Option::is_some) {
                let mut tspan = telemetry::timeline::timeline_span("merge");
                tspan.arg("segments", outcomes.len() as u64);
                for seg in outcomes.iter().flatten() {
                    analyzer.merge_segment(seg);
                }
            } else {
                // Unreachable by construction (worker configs keep exact
                // profiles, the only way a segment declines to produce an
                // outcome), but never leave a silent gap: chunk 0's state
                // is exactly the right starting point to redo the tail.
                eprintln!(
                    "warning: a parallel segment returned no outcome; \
                     re-analyzing the tail sequentially"
                );
                analyzer.process_slice(&records[seq_end as usize..]);
            }
        }
    }
    if checkpoints_enabled {
        save_checkpoint_degraded(&analyzer, &mut checkpoints_enabled, &mut artifact_failures);
        if checkpoints_enabled {
            eprintln!("checkpoint written to {ckpt_path}");
        }
    }
    // The final heartbeat is unconditional so short runs still show one.
    // Merged worker records are inside the analyzer by now, so no extra.
    progress_beat(
        &mut reporter,
        &analyzer,
        loaded.bytes,
        records.len(),
        0,
        true,
    );

    let report = {
        let _span = paragraph_core::span!("report");
        let _tspan = telemetry::timeline::timeline_span("report");
        analyzer.finish()
    };
    print_report(&report, opts, &mut artifact_failures);
    if let Some(path) = &opts.timeline_out {
        export_timeline_degraded(path, &mut artifact_failures);
    }

    if setup.enabled {
        let registry = telemetry::global();
        registry.emit(
            "run_end",
            &[
                ("records", Value::U64(report.total_records())),
                ("placed", Value::U64(report.placed_ops())),
                ("critical_path", Value::U64(report.critical_path_length())),
            ],
        );
        registry.emit_final_dump();
        if let Err(e) = registry.flush_sink() {
            eprintln!("warning: telemetry log failed ({e}); analysis output is complete");
            artifact_failures.push(format!("telemetry log: {e}"));
        }
        if let Some(path) = &setup.metrics_out {
            match write_metrics_snapshot(path) {
                Ok(()) => eprintln!("metrics snapshot written to {path}"),
                Err(e) => {
                    eprintln!("warning: metrics snapshot failed ({e})");
                    artifact_failures.push(format!("metrics {path}: {e}"));
                }
            }
        }
        if let Some(path) = &opts.telemetry_out {
            eprintln!("telemetry log written to {path}");
        }
    }
    if !artifact_failures.is_empty() {
        return Err(CliError::Io(format!(
            "analysis completed, but {} artifact(s) failed: {}",
            artifact_failures.len(),
            artifact_failures.join("; ")
        )));
    }
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), CliError> {
    let workload = opts.build_workload().map_err(usage_err)?;
    let path = opts
        .out
        .as_deref()
        .ok_or_else(|| usage_err("trace needs --out FILE"))?;
    let file = File::create(path).map_err(|e| io_err(path, e))?;
    let mut vm = workload.vm();
    match opts.format.as_deref().unwrap_or("binary") {
        "binary" => {
            let mut writer = TraceWriter::new(BufWriter::new(file), vm.segment_map())
                .map_err(|e| io_err(path, e))?;
            let mut write_error = None;
            let outcome = vm
                .run_traced(opts.fuel(), |record| {
                    if write_error.is_none() {
                        if let Err(e) = writer.write_record(record) {
                            write_error = Some(e);
                        }
                    }
                })
                .map_err(|e| CliError::Analysis(format!("{}: {e}", workload.id())))?;
            if let Some(e) = write_error {
                return Err(io_err(path, e));
            }
            let written = writer.finish().map_err(|e| io_err(path, e))?;
            println!(
                "{}: {} records written to {path} ({:?})",
                workload.id(),
                written,
                outcome.reason()
            );
        }
        "csv" => {
            // Interop format: one row per record, for pandas/awk-style
            // downstream analysis. Sources are ';'-joined locations.
            use std::io::Write as _;
            let mut out = BufWriter::new(file);
            let mut write_error: Option<std::io::Error> = None;
            writeln!(out, "pc,class,srcs,dest,taken,target").map_err(|e| io_err(path, e))?;
            let mut written = 0u64;
            let outcome = vm
                .run_traced(opts.fuel(), |record| {
                    if write_error.is_some() {
                        return;
                    }
                    let srcs: Vec<String> = record.srcs().iter().map(|s| s.to_string()).collect();
                    let dest = record.dest().map(|d| d.to_string()).unwrap_or_default();
                    let (taken, target) = match record.branch_info() {
                        Some(info) => (
                            if info.taken { "1" } else { "0" }.to_owned(),
                            info.target.to_string(),
                        ),
                        None => (String::new(), String::new()),
                    };
                    if let Err(e) = writeln!(
                        out,
                        "{},{},{},{dest},{taken},{target}",
                        record.pc(),
                        record.class(),
                        srcs.join(";")
                    ) {
                        write_error = Some(e);
                    }
                    written += 1;
                })
                .map_err(|e| CliError::Analysis(format!("{}: {e}", workload.id())))?;
            if let Some(e) = write_error {
                return Err(io_err(path, e));
            }
            out.flush().map_err(|e| io_err(path, e))?;
            println!(
                "{}: {} records written to {path} as CSV ({:?})",
                workload.id(),
                written,
                outcome.reason()
            );
        }
        other => return Err(usage_err(format!("unknown trace format `{other}`"))),
    }
    Ok(())
}

/// `paragraph ingest --text FILE --out FILE`: converts an external
/// line-oriented text trace (docs/ingest.md) into the binary v2 format.
/// Streaming — the input is never buffered whole — and governed, so a
/// hostile file is rejected with exit 7 rather than exhausting memory.
fn cmd_ingest(opts: &Options) -> Result<(), CliError> {
    use paragraph_trace::ingest::{ingest_text, IngestError, IngestErrorKind};
    let text_path = opts
        .text
        .as_deref()
        .ok_or_else(|| usage_err("ingest needs --text FILE"))?;
    let out_path = opts
        .out
        .as_deref()
        .ok_or_else(|| usage_err("ingest needs --out FILE"))?;
    let input: Box<dyn std::io::BufRead> = if text_path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        let file = File::open(text_path).map_err(|e| io_err(text_path, e))?;
        Box::new(BufReader::new(file))
    };
    let out = File::create(out_path).map_err(|e| io_err(out_path, e))?;
    let mut governor = ResourceGovernor::new(Limits::from_env());
    let classify = |e: IngestError| -> CliError {
        if let Some(v) = e.limit_violation() {
            return input_rejected(text_path, v.limit, v.what, v.actual, v.cap, &e);
        }
        match e.kind() {
            IngestErrorKind::Io(_) => CliError::Io(format!("{text_path}: {e}")),
            _ => CliError::CorruptTrace(format!("{text_path}: {e}")),
        }
    };
    let stats = ingest_text(input, BufWriter::new(out), &mut governor).map_err(classify)?;
    println!(
        "{text_path}: {} records from {} lines ({} comment/blank) written to {out_path}",
        stats.records, stats.lines, stats.skipped_lines
    );
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), CliError> {
    init_timeline(opts);
    let path = opts
        .asm
        .as_deref()
        .ok_or_else(|| usage_err("run needs --asm FILE"))?;
    let source = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    // Assembly files are front-door input too: assemble under limits so a
    // hostile `.space` declaration is a typed rejection, not an allocation.
    let program = {
        let _tspan = telemetry::timeline::timeline_span("assemble");
        paragraph_asm::assemble_with_limits(
            &source,
            paragraph_asm::DEFAULT_DATA_BASE,
            &paragraph_asm::AsmLimits::from_env(),
        )
        .map_err(|e| {
            if let paragraph_asm::AsmErrorKind::LimitExceeded {
                limit,
                what,
                actual,
                cap,
            } = *e.kind()
            {
                input_rejected(path, limit, what, actual, cap, &e)
            } else {
                CliError::Analysis(format!("{path}: {e}"))
            }
        })?
    };
    let mut vm = Vm::new(program);
    vm.extend_input(opts.inputs.iter().copied());
    let outcome = {
        let mut tspan = telemetry::timeline::timeline_span("vm.run");
        let outcome = vm
            .run(opts.fuel())
            .map_err(|e| CliError::Analysis(format!("{path}: {e}")))?;
        tspan.arg("instructions", outcome.executed());
        outcome
    };
    print!("{}", vm.output());
    println!(
        "[{} instructions, {:?}]",
        outcome.executed(),
        outcome.reason()
    );
    if let Some(out) = &opts.timeline_out {
        export_timeline(out)?;
    }
    Ok(())
}

fn cmd_disasm(opts: &Options) -> Result<(), CliError> {
    let workload = opts.build_workload().map_err(usage_err)?;
    print!("{}", workload.source());
    Ok(())
}

fn cmd_dot(opts: &Options) -> Result<(), CliError> {
    let LoadedTrace {
        records, segments, ..
    } = load_records(opts)?;
    if records.len() > 200_000 {
        return Err(usage_err(format!(
            "{} records is too many for an explicit DDG export; lower --size/--fuel",
            records.len()
        )));
    }
    let config = opts.config(segments);
    let ddg = paragraph_core::Ddg::from_records(&records, &config);
    let dot = ddg.to_dot();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, dot).map_err(|e| io_err(path, e))?;
            println!(
                "{} nodes, {} edges written to {path}",
                ddg.len(),
                ddg.edges().len()
            );
        }
        None => print!("{dot}"),
    }
    Ok(())
}

fn cmd_stats(opts: &Options) -> Result<(), CliError> {
    // Telemetry-artifact modes: summarize a JSONL event log, or validate a
    // Prometheus snapshot. Both exit non-zero on malformed input, so the CI
    // smoke job can use them as parsers.
    if let Some(path) = &opts.stats_telemetry {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        // Telemetry logs are routinely truncated mid-line by a crash or a
        // full disk; by default the readable prefix is still summarized and
        // each bad line is warned about. `--strict` restores fail-fast for
        // CI, which wants to prove a healthy run wrote a clean log.
        let events = if opts.strict {
            telemetry::summary::parse_jsonl(&text)
                .map_err(|e| CliError::CorruptTrace(format!("{path}: {e}")))?
        } else {
            let (events, skipped) = telemetry::summary::parse_jsonl_lossy(&text);
            for bad in &skipped {
                eprintln!("warning: {path}: line {} skipped: {}", bad.line, bad.reason);
            }
            if !skipped.is_empty() {
                eprintln!("skipped_lines: {}", skipped.len());
            }
            events
        };
        let summary = telemetry::summary::summarize(&events);
        print!("{}", telemetry::summary::render_table(&summary));
        return Ok(());
    }
    if let Some(path) = &opts.stats_metrics {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        let samples = telemetry::prom::validate(&text)
            .map_err(|e| CliError::CorruptTrace(format!("{path}: {e}")))?;
        println!("{path}: valid Prometheus exposition, {samples} samples");
        return Ok(());
    }

    let LoadedTrace {
        records,
        recovery: stats,
        ..
    } = load_records(opts)?;
    if let Some(stats) = &stats {
        print_recovery_stats(stats);
    }
    let stats = paragraph_trace::TraceStats::from_records(&records);
    print!("{stats}");
    println!(
        "type: {} ({:.1}% of placed operations are floating point)",
        stats.benchmark_type(),
        100.0 * stats.fp_fraction()
    );
    Ok(())
}

fn cmd_report(opts: &Options) -> Result<(), CliError> {
    let LoadedTrace {
        records, segments, ..
    } = load_records(opts)?;
    if records.len() > 500_000 {
        return Err(usage_err(format!(
            "{} records is too many to materialize; lower --size/--fuel or use --take",
            records.len()
        )));
    }
    let config = opts.config(segments);
    let ddg = paragraph_core::Ddg::from_records(&records, &config);
    let (true_e, storage_e, control_e) = ddg.edge_counts();
    println!("explicit DDG under: {config}");
    println!("  nodes                 : {}", ddg.len());
    println!("  edges                 : {true_e} true, {storage_e} storage, {control_e} control");
    println!("  height (crit path)    : {}", ddg.height());
    println!("  width                 : {}", ddg.width());
    println!(
        "  available parallelism : {:.2}",
        ddg.available_parallelism()
    );
    let lifetimes = ddg.value_lifetimes();
    println!(
        "  value lifetimes       : {} values, mean {:.2}, p50 {}, p99 {}, max {}",
        lifetimes.count(),
        lifetimes.mean(),
        lifetimes.percentile(0.5).unwrap_or(0),
        lifetimes.percentile(0.99).unwrap_or(0),
        lifetimes.max().unwrap_or(0)
    );
    let sharing = ddg.sharing_degrees();
    println!(
        "  degree of sharing     : mean {:.2}, p99 {}, max {}",
        sharing.mean(),
        sharing.percentile(0.99).unwrap_or(0),
        sharing.max().unwrap_or(0)
    );
    let slack = ddg.slack_distribution();
    println!(
        "  scheduling slack      : {:.1}% critical (slack 0), mean {:.2}, max {}",
        100.0 * slack.frequency(0) as f64 / slack.count().max(1) as f64,
        slack.mean(),
        slack.max().unwrap_or(0)
    );
    let occupancy = ddg.storage_occupancy();
    let peak = occupancy.iter().copied().max().unwrap_or(0);
    let mean = if occupancy.is_empty() {
        0.0
    } else {
        occupancy.iter().sum::<u64>() as f64 / occupancy.len() as f64
    };
    println!("  storage occupancy     : peak {peak} live values, mean {mean:.1}");
    Ok(())
}

/// `paragraph profile T.json`: summarize a flight-recorder timeline —
/// per-stage self-time, lane utilization, slowest slices. With `--diff B`
/// compares two timelines; with `--bench-compare BASELINE` switches to
/// bench-log regression checking instead.
fn cmd_profile(opts: &Options) -> Result<(), CliError> {
    use telemetry::tracefmt;
    if let Some(baseline) = &opts.bench_compare {
        return cmd_profile_bench_compare(opts, baseline);
    }
    let path = opts.positional.first().ok_or_else(|| {
        usage_err("profile needs a timeline file (paragraph profile t.json; see --timeline-out)")
    })?;
    let summary = load_timeline_summary(path)?;
    match &opts.diff {
        Some(other) => {
            let candidate = load_timeline_summary(other)?;
            println!("A: {path}");
            println!("B: {other}");
            print!("{}", tracefmt::render_diff(&summary, &candidate));
        }
        None => {
            println!("{path}:");
            print!(
                "{}",
                tracefmt::render_profile(&summary, opts.top.unwrap_or(10))
            );
        }
    }
    Ok(())
}

/// Reads, validates, and summarizes one timeline file. Malformed
/// trace-event JSON is typed corruption (exit 4), like every other
/// damaged artifact.
fn load_timeline_summary(path: &str) -> Result<telemetry::tracefmt::ProfileSummary, CliError> {
    use telemetry::tracefmt;
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    tracefmt::validate(&text).map_err(|e| CliError::CorruptTrace(format!("{path}: {e}")))?;
    let events = tracefmt::parse_chrome_trace(&text)
        .map_err(|e| CliError::CorruptTrace(format!("{path}: {e}")))?;
    Ok(tracefmt::summarize(&events))
}

/// `paragraph profile CURRENT --bench-compare BASELINE`: compares bench-log
/// rows (`BENCH.hotpath.json` / `BENCH.sweep.json` JSONL) keyed by
/// bench name + mode/grid, last row per key. Any key whose `after_ns`
/// slows down by more than `--bench-threshold` percent (default 20) fails
/// the check with exit 5 — the perf-regression gate.
fn cmd_profile_bench_compare(opts: &Options, baseline_path: &str) -> Result<(), CliError> {
    let current_path = opts.positional.first().ok_or_else(|| {
        usage_err("profile --bench-compare needs the current bench log as an argument")
    })?;
    let threshold_pct = opts.bench_threshold.unwrap_or(20.0);
    let baseline = read_bench_rows(baseline_path)?;
    let current = read_bench_rows(current_path)?;
    if baseline.is_empty() {
        return Err(CliError::CorruptTrace(format!(
            "{baseline_path}: no bench rows (expected JSONL with \"bench\" and \"after_ns\")"
        )));
    }
    println!("bench-compare: {current_path} vs {baseline_path} (threshold +{threshold_pct:.0}%)");
    let mut regressions: Vec<String> = Vec::new();
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for (key, base) in &baseline {
        let Some(cur) = current.get(key) else {
            println!("  {key:<34} missing from current log");
            continue;
        };
        // Wall clocks from differently-sized boxes are not comparable:
        // a 0.71x parallel-analyze row from a single-core runner would
        // "regress" every multi-core run. Rows that recorded their core
        // count only gate against rows from a same-sized box; rows
        // predating the field still compare (nothing better exists).
        if let (Some(base_np), Some(cur_np)) = (base.nproc, cur.nproc) {
            if base_np != cur_np {
                skipped += 1;
                println!("  {key:<34} skipped (nproc {base_np} vs {cur_np}: different machines)");
                continue;
            }
        }
        compared += 1;
        let (base_ns, cur_ns) = (base.after_ns, cur.after_ns);
        let delta_pct = if base_ns > 0.0 {
            100.0 * (cur_ns - base_ns) / base_ns
        } else {
            0.0
        };
        let verdict = if delta_pct > threshold_pct {
            regressions.push(format!("{key} ({delta_pct:+.1}%)"));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {key:<34} base {base_ns:>12.0}ns  cur {cur_ns:>12.0}ns  {delta_pct:>+7.1}%  {verdict}"
        );
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            println!("  {key:<34} new (no baseline)");
        }
    }
    if compared == 0 {
        if skipped > 0 {
            // Every common key came from a differently-sized box; there is
            // nothing comparable, which is not a regression.
            println!("note: all {skipped} common key(s) skipped (core-count mismatch)");
            return Ok(());
        }
        return Err(CliError::Analysis(format!(
            "no common bench keys between {current_path} and {baseline_path}"
        )));
    }
    if !regressions.is_empty() {
        return Err(CliError::Analysis(format!(
            "bench regression above +{threshold_pct:.0}%: {}",
            regressions.join(", ")
        )));
    }
    Ok(())
}

/// One bench-log row as the compare gate sees it.
#[derive(Debug, Clone, Copy)]
struct BenchRow {
    /// The measured time being gated.
    after_ns: f64,
    /// Core count of the box the row was recorded on, when the row
    /// carries one (rows predate the field).
    nproc: Option<f64>,
}

/// Parses a bench log (JSONL, one row per run) into key → [`BenchRow`],
/// last row per key winning. Key = `bench/mode` or `bench/grid`.
fn read_bench_rows(path: &str) -> Result<std::collections::BTreeMap<String, BenchRow>, CliError> {
    use telemetry::tracefmt::{parse_json, JsonValue};
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut rows = std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = parse_json(line)
            .map_err(|e| CliError::CorruptTrace(format!("{path}: line {}: {e}", lineno + 1)))?;
        let Some(bench) = row.get("bench").and_then(JsonValue::as_str) else {
            return Err(CliError::CorruptTrace(format!(
                "{path}: line {}: missing \"bench\"",
                lineno + 1
            )));
        };
        let Some(after_ns) = row.get("after_ns").and_then(JsonValue::as_f64) else {
            return Err(CliError::CorruptTrace(format!(
                "{path}: line {}: missing \"after_ns\"",
                lineno + 1
            )));
        };
        let variant = row
            .get("mode")
            .or_else(|| row.get("grid"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        let nproc = row.get("nproc").and_then(JsonValue::as_f64);
        rows.insert(format!("{bench}/{variant}"), BenchRow { after_ns, nproc });
    }
    Ok(rows)
}

fn cmd_compare(opts: &Options) -> Result<(), CliError> {
    use paragraph_core::machine::Machine;
    let LoadedTrace {
        records, segments, ..
    } = load_records(opts)?;
    println!(
        "{:<9} {:>12} {:>14} {:>12}  configuration",
        "machine", "ops/cycle", "crit path", "% of limit"
    );
    let limit = analyze_refs(
        &records,
        &AnalysisConfig::dataflow_limit().with_segments(segments),
    )
    .available_parallelism();
    for machine in Machine::generations() {
        let config = machine.configure().with_segments(segments);
        let report = analyze_refs(&records, &config);
        println!(
            "{:<9} {:>12.2} {:>14} {:>11.2}%  {}",
            machine.name(),
            report.available_parallelism(),
            report.critical_path_length(),
            100.0 * report.available_parallelism() / limit,
            machine.description()
        );
    }
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), CliError> {
    if !opts.workloads.is_empty() {
        return cmd_sweep_grid(opts);
    }
    init_timeline(opts);
    let LoadedTrace {
        records, segments, ..
    } = load_records(opts)?;
    let windows = if opts.windows.is_empty() {
        vec![1, 10, 100, 1000, 10_000, 100_000]
    } else {
        opts.windows.clone()
    };
    let full = {
        let _tspan = telemetry::timeline::timeline_span("sweep.window");
        analyze_refs(&records, &opts.config(segments))
    };
    let total = full.available_parallelism();
    println!(
        "{:>10}  {:>14}  {:>12}  {:>8}",
        "window", "critical path", "parallelism", "% of max"
    );
    for &w in &windows {
        let config = opts.config(segments).with_window(WindowSize::bounded(w));
        let report = {
            let mut tspan = match telemetry::timeline::timeline_active() {
                Some(timeline) => timeline.span_labeled("sweep.window", Some(&format!("w{w}"))),
                None => telemetry::timeline::timeline_span("sweep.window"),
            };
            tspan.arg("window", w as u64);
            analyze_refs(&records, &config)
        };
        println!(
            "{w:>10}  {:>14}  {:>12.2}  {:>7.2}%",
            report.critical_path_length(),
            report.available_parallelism(),
            100.0 * report.available_parallelism() / total
        );
    }
    println!(
        "{:>10}  {:>14}  {:>12.2}  {:>8}",
        "inf",
        full.critical_path_length(),
        total,
        "100.00%"
    );
    if let Some(out) = &opts.timeline_out {
        export_timeline(out)?;
    }
    Ok(())
}

/// `sweep --workloads a,b,c`: the parallel (workload × window) grid on the
/// sweep engine. Each workload's trace is generated once into the shared
/// arena; the cells fan out across `--jobs` workers, and the results (and
/// any `--out` artifacts) are byte-identical for every job count.
fn cmd_sweep_grid(opts: &Options) -> Result<(), CliError> {
    use paragraph_bench::scheduler::sweep_manifest_json;
    use paragraph_bench::{run_sweep, Study, SweepCell, SweepOptions};
    use std::path::PathBuf;

    if opts.trace.is_some() {
        return Err(usage_err(
            "--trace cannot be combined with --workloads (the grid sweep \
             regenerates each workload's trace into the arena)",
        ));
    }
    if opts.window.is_some() {
        return Err(usage_err(
            "use --windows (the ladder) instead of --window with --workloads",
        ));
    }
    let setup = init_telemetry(opts)?;
    init_timeline(opts);
    let windows = if opts.windows.is_empty() {
        vec![1, 10, 100, 1000, 10_000, 100_000]
    } else {
        opts.windows.clone()
    };
    // The scheduler applies each workload's own segment map; the base
    // config carries only the command-line machine model.
    let base = opts.config(SegmentMap::default());
    let mut cells = Vec::with_capacity(opts.workloads.len() * (windows.len() + 1));
    for &id in &opts.workloads {
        for &w in &windows {
            cells.push(SweepCell::new(
                id,
                format!("w{w}"),
                base.clone().with_window(WindowSize::bounded(w)),
            ));
        }
        cells.push(SweepCell::new(id, "full", base.clone()));
    }

    let out_dir = opts.out.as_deref().map(PathBuf::from);
    let study = Study::new(
        opts.fuel(),
        100,
        out_dir.clone().unwrap_or_else(|| PathBuf::from("results")),
    )
    .with_size_override(opts.size)
    .with_seed_override(opts.seed);
    let sweep_opts = SweepOptions {
        jobs: opts.jobs.unwrap_or_else(paragraph_bench::jobs_from_env),
        arena_budget_bytes: 0,
        // Stage markers key on (workload, label) only — safe for the fixed
        // fig7/fig8 grids, but an interrupted CLI sweep rerun with
        // different machine flags would alias. Each CLI sweep is
        // self-contained instead.
        reuse_stages: false,
        retries: opts.retries.unwrap_or(SweepOptions::default().retries),
        retry_backoff_ms: opts
            .retry_backoff_ms
            .unwrap_or(SweepOptions::default().retry_backoff_ms),
    };
    // Cells are supervised inside run_sweep: a VM fault or analyzer panic
    // is caught, retried, and at worst quarantines that one cell — the
    // sweep itself always completes.
    if let Some(timeline) = telemetry::timeline::timeline_active() {
        timeline.instant_with_args("sweep.start", None, &[("cells", cells.len() as u64)]);
    }
    let outcome = run_sweep(&study, "sweep", &cells, &sweep_opts);
    if let Some(timeline) = telemetry::timeline::timeline_active() {
        timeline.instant_with_args("sweep.done", None, &[("cells", outcome.cells.len() as u64)]);
    }

    let ladder = windows.len() + 1;
    println!(
        "{:<11} {:>10}  {:>14}  {:>12}  {:>8}",
        "workload", "window", "critical path", "parallelism", "% of max"
    );
    for (w_idx, &id) in opts.workloads.iter().enumerate() {
        let row = &outcome.cells[w_idx * ladder..(w_idx + 1) * ladder];
        let total = row[ladder - 1]
            .outcome()
            .map_or(f64::NAN, |c| c.metrics.parallelism);
        let window_name = |i: usize| {
            if i == ladder - 1 {
                "inf".to_owned()
            } else {
                windows[i].to_string()
            }
        };
        for (i, result) in row.iter().enumerate() {
            match result.outcome() {
                Some(cell) => println!(
                    "{:<11} {:>10}  {:>14}  {:>12.2}  {:>7.2}%",
                    id.name(),
                    window_name(i),
                    cell.metrics.critical_path,
                    cell.metrics.parallelism,
                    100.0 * cell.metrics.parallelism / total
                ),
                None => println!(
                    "{:<11} {:>10}  {:>14}  {:>12}  {:>8}",
                    id.name(),
                    window_name(i),
                    "quarantined",
                    "-",
                    "-"
                ),
            }
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| io_err(&dir.display().to_string(), e))?;
        // Healthy cells' artifacts land atomically and byte-identically to
        // a fault-free run; quarantined cells simply have no artifacts.
        for result in &outcome.cells {
            let Some(cell) = result.outcome() else {
                continue;
            };
            let stem = format!("{}@{}", cell.workload.name(), cell.label);
            let json_path = dir.join(format!("{stem}.report.json"));
            paragraph_core::artifact::write_atomic_bytes(&json_path, cell.report_json.as_bytes())
                .map_err(|e| io_err(&json_path.display().to_string(), e))?;
            let csv_path = dir.join(format!("{stem}.profile.csv"));
            paragraph_core::artifact::write_atomic(&csv_path, |out| cell.profile.write_csv(out))
                .map_err(|e| io_err(&csv_path.display().to_string(), e))?;
        }
        let manifest = dir.join("sweep.json");
        paragraph_core::artifact::write_atomic_bytes(
            &manifest,
            sweep_manifest_json("sweep", &outcome).as_bytes(),
        )
        .map_err(|e| io_err(&manifest.display().to_string(), e))?;
    }
    eprintln!(
        "sweep: {} cells on {} worker(s) in {:.2}s (arena: {} decode(s), {} hit(s), {} eviction(s))",
        outcome.cells.len(),
        outcome.jobs,
        outcome.wall_ns as f64 / 1e9,
        outcome.arena.misses,
        outcome.arena.hits,
        outcome.arena.evictions,
    );
    if let Some(path) = &setup.metrics_out {
        write_metrics_snapshot(path)?;
    }
    if let Some(path) = &opts.timeline_out {
        export_timeline(path)?;
    }
    if outcome.quarantined() > 0 {
        let details: Vec<String> = outcome
            .cells
            .iter()
            .filter(|c| c.is_quarantined())
            .map(|c| {
                format!(
                    "{}@{} after {} attempt(s): {}",
                    c.workload.name(),
                    c.label,
                    c.attempts,
                    c.error.as_deref().unwrap_or("unknown error")
                )
            })
            .collect();
        return Err(CliError::Quarantined(format!(
            "sweep degraded — {} of {} cell(s) quarantined ({}); healthy cells' artifacts are complete",
            outcome.quarantined(),
            outcome.cells.len(),
            details.join("; ")
        )));
    }
    Ok(())
}

/// `paragraph serve` — the multi-tenant analysis daemon. Binds, installs
/// the signal handlers, runs the accept loop until SIGTERM/SIGINT or
/// `POST /shutdown`, then drains: in-flight work finishes, live sessions
/// are checkpointed crash-consistently, and the process exits 0.
fn cmd_serve(opts: &Options) -> Result<(), CliError> {
    // A daemon serving untrusted uploads must not silently weaken its
    // admission policy: where the one-shot commands warn and fall back on
    // a malformed PARAGRAPH_MAX_* / PARAGRAPH_DEADLINE_MS override, serve
    // refuses to start.
    let env_limits =
        Limits::from_env_checked().map_err(|e| usage_err(format!("refusing to start: {e}")))?;
    // Env overrides tighten/adjust the strict upload defaults only where
    // the operator actually set a variable; unset variables keep strict.
    let strict = Limits::strict();
    let defaults = Limits::default();
    let limits = Limits {
        max_records: pick_override(
            env_limits.max_records,
            defaults.max_records,
            strict.max_records,
        ),
        max_alloc_bytes: pick_override(
            env_limits.max_alloc_bytes,
            defaults.max_alloc_bytes,
            strict.max_alloc_bytes,
        ),
        max_decode_bytes: pick_override(
            env_limits.max_decode_bytes,
            defaults.max_decode_bytes,
            strict.max_decode_bytes,
        ),
        max_declared_len: pick_override(
            env_limits.max_declared_len,
            defaults.max_declared_len,
            strict.max_declared_len,
        ),
        deadline: if env_limits.deadline == defaults.deadline {
            strict.deadline
        } else {
            env_limits.deadline
        },
    };
    let fault = paragraph_serve::RequestFault::from_env()
        .map_err(|e| usage_err(format!("refusing to start: {e}")))?;
    let mut serve_opts = paragraph_serve::ServeOptions {
        limits,
        fault,
        external_shutdown: Some(Box::new(signal_lite::shutdown_requested)),
        ..paragraph_serve::ServeOptions::default()
    };
    serve_opts.addr = opts.addr.clone().unwrap_or_else(|| "127.0.0.1:7307".into());
    serve_opts.uds = opts.uds.clone().map(std::path::PathBuf::from);
    if let Some(n) = opts.workers {
        serve_opts.workers = n;
    }
    if let Some(n) = opts.queue {
        serve_opts.queue_capacity = n;
    }
    if let Some(n) = opts.max_live_sessions {
        serve_opts.max_live_sessions = n;
    }
    if let Some(dir) = &opts.spool {
        serve_opts.spool = std::path::PathBuf::from(dir);
    }
    serve_opts.deadline = opts.deadline_ms.map(Duration::from_millis);
    if let Some(mb) = opts.max_body_mb {
        serve_opts.max_body_bytes = mb.saturating_mul(1024 * 1024);
    }
    serve_opts.ready_file = opts.ready_file.clone().map(std::path::PathBuf::from);
    if !signal_lite::install_shutdown_handlers() {
        eprintln!("warning: signal handlers unavailable; use POST /shutdown to drain");
    }
    let server = paragraph_serve::Server::bind(serve_opts)
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    eprintln!("listening on {}", server.endpoint());
    let summary = server
        .run()
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    if let Some(sig) = signal_lite::shutdown_signal() {
        eprintln!("drained on signal {sig}");
    }
    eprintln!(
        "served {} request(s), shed {}, recycled {} worker(s), checkpointed {} session(s)",
        summary.requests, summary.shed, summary.workers_recycled, summary.sessions_checkpointed
    );
    if !summary.checkpoint_failures.is_empty() {
        return Err(CliError::Io(format!(
            "drain completed, but {} session checkpoint(s) failed: {}",
            summary.checkpoint_failures.len(),
            summary.checkpoint_failures.join("; ")
        )));
    }
    Ok(())
}

/// An env override for one limit field: `strict` unless the operator set
/// the variable (detected as: the checked env value differs from the
/// plain default).
fn pick_override(from_env: u64, default: u64, strict: u64) -> u64 {
    if from_env == default {
        strict
    } else {
        from_env
    }
}

/// `paragraph client ENDPOINT METHOD PATH [--body FILE]` — one request
/// against a running daemon. The response body goes to stdout; the HTTP
/// status maps back onto the CLI exit codes (see the README table), so a
/// script drives the daemon and the one-shot commands with one dispatch.
fn cmd_client(opts: &Options) -> Result<(), CliError> {
    let [endpoint, method, path] = opts.positional.as_slice() else {
        return Err(usage_err(
            "client needs ENDPOINT METHOD PATH (e.g. `client http://127.0.0.1:7307 GET /healthz`)",
        ));
    };
    let endpoint = paragraph_serve::Endpoint::parse(endpoint).map_err(usage_err)?;
    let body = match opts.body.as_deref() {
        None => Vec::new(),
        Some("-") => {
            use std::io::Read;
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| io_err("stdin", e))?;
            buf
        }
        Some(path) => std::fs::read(path).map_err(|e| io_err(path, e))?,
    };
    let resp = paragraph_serve::request(&endpoint, method, path, &body)
        .map_err(|e| CliError::Io(format!("request failed: {e}")))?;
    let text = resp.body_text();
    if (200..300).contains(&resp.status) {
        print!("{text}");
        if !text.is_empty() && !text.ends_with('\n') {
            println!();
        }
        return Ok(());
    }
    // Non-2xx: the body (a one-line JSON diagnostic) goes to stderr and
    // the status picks the exit code from the same taxonomy the one-shot
    // commands use.
    let message = format!("daemon answered {}: {}", resp.status, text.trim_end());
    Err(match resp.status {
        404 | 405 => usage_err(message),
        400 => CliError::CorruptTrace(message),
        413 | 422 => CliError::InputRejected {
            message,
            report: text.trim_end().to_owned(),
        },
        429 | 503 => {
            let retry = resp.retry_after.unwrap_or(1);
            CliError::ServerBusy(format!("{message} (retry after {retry}s)"))
        }
        _ => CliError::Analysis(message),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    /// The heartbeat's byte attribution must survive totals whose product
    /// `total_bytes * seen` exceeds `u64` — the former `saturating_mul`
    /// pinned it at `u64::MAX / total_records` from that point on.
    #[test]
    fn proportional_bytes_survives_u64_overflow() {
        let total_bytes = 1u64 << 40; // a 1 TiB trace
        let total_records = 1u64 << 30;
        let seen = 1u64 << 29; // halfway: product is 2^69, overflows u64
        assert_eq!(
            proportional_bytes(total_bytes, seen, total_records),
            total_bytes / 2
        );
        // Small inputs are exact, and a zero record total stays zero.
        assert_eq!(proportional_bytes(1000, 250, 1000), 250);
        assert_eq!(proportional_bytes(1000, 250, 0), 0);
        // Completion attributes every byte.
        assert_eq!(
            proportional_bytes(total_bytes, total_records, total_records),
            total_bytes
        );
    }

    #[test]
    fn parses_workload_and_switches() {
        let opts = parse(&[
            "--workload",
            "cc1",
            "--size",
            "12",
            "--rename",
            "regs",
            "--window",
            "1024",
            "--optimistic",
            "--units",
            "4",
            "--no-disambiguation",
            "--value-stats",
        ])
        .unwrap();
        assert_eq!(opts.workload, Some(WorkloadId::Cc1));
        assert_eq!(opts.size, Some(12));
        assert_eq!(opts.rename, Some(RenameSet::registers_only()));
        assert_eq!(opts.window, Some(1024));
        assert!(opts.optimistic);
        assert_eq!(opts.units, Some(4));
        assert!(opts.no_disambiguation);
        assert!(opts.value_stats);
    }

    #[test]
    fn config_reflects_options() {
        let opts = parse(&["--rename", "none", "--window", "64", "--units", "2"]).unwrap();
        let config = opts.config(SegmentMap::all_data());
        assert_eq!(config.renames(), RenameSet::none());
        assert_eq!(config.window(), WindowSize::bounded(64));
        assert_eq!(config.issue_limit(), Some(2));
    }

    #[test]
    fn branch_policies_parse() {
        assert_eq!(
            parse_branch_policy("perfect").unwrap(),
            BranchPolicy::Perfect
        );
        assert_eq!(
            parse_branch_policy("stall").unwrap(),
            BranchPolicy::StallAlways
        );
        assert_eq!(
            parse_branch_policy("btfn").unwrap(),
            BranchPolicy::Predict(PredictorKind::Btfn)
        );
        assert_eq!(
            parse_branch_policy("bimodal:12").unwrap(),
            BranchPolicy::Predict(PredictorKind::Bimodal { index_bits: 12 })
        );
        assert_eq!(
            parse_branch_policy("gshare:8").unwrap(),
            BranchPolicy::Predict(PredictorKind::Gshare { index_bits: 8 })
        );
        assert!(parse_branch_policy("oracle").is_err());
        assert!(parse_branch_policy("bimodal:x").is_err());
    }

    #[test]
    fn unknown_flags_and_values_error() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--workload", "gcc"]).is_err());
        assert!(parse(&["--size"]).is_err());
        assert!(parse(&["--rename", "everything"]).is_err());
    }

    #[test]
    fn numbers_accept_underscores() {
        let opts = parse(&["--fuel", "1_000_000"]).unwrap();
        assert_eq!(opts.fuel, Some(1_000_000));
    }

    #[test]
    fn skip_and_take_parse() {
        let opts = parse(&["--skip", "100", "--take", "50"]).unwrap();
        assert_eq!(opts.skip, Some(100));
        assert_eq!(opts.take, Some(50));
    }

    #[test]
    fn lists_parse() {
        let opts = parse(&["--input", "1, 2,3", "--windows", "10,100"]).unwrap();
        assert_eq!(opts.inputs, vec![1, 2, 3]);
        assert_eq!(opts.windows, vec![10, 100]);
    }

    #[test]
    fn fuel_defaults_to_the_paper_cap() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.fuel(), paragraph_vm::DEFAULT_FUEL);
    }

    #[test]
    fn workload_requires_flag() {
        let opts = parse(&[]).unwrap();
        assert!(opts.build_workload().is_err());
    }

    #[test]
    fn fault_tolerance_flags_parse() {
        let opts = parse(&[
            "--recover",
            "--checkpoint-every",
            "10_000",
            "--checkpoint",
            "state.pgcp",
            "--resume",
            "old.pgcp",
            "--live-well-cap",
            "4096",
        ])
        .unwrap();
        assert!(opts.recover);
        assert_eq!(opts.checkpoint_every, Some(10_000));
        assert_eq!(opts.checkpoint.as_deref(), Some("state.pgcp"));
        assert_eq!(opts.resume.as_deref(), Some("old.pgcp"));
        assert_eq!(opts.live_well_cap, Some(4096));
        let config = opts.config(SegmentMap::all_data());
        assert_eq!(config.live_well_cap(), Some(4096));
    }

    #[test]
    fn zero_counts_are_rejected() {
        assert!(parse(&["--checkpoint-every", "0"]).is_err());
        assert!(parse(&["--live-well-cap", "0"]).is_err());
    }

    #[test]
    fn checkpoint_path_derives_from_the_trace() {
        let opts = parse(&["--trace", "run.pgtr"]).unwrap();
        assert_eq!(checkpoint_path(&opts), "run.pgtr.pgcp");
        let opts = parse(&["--checkpoint", "x.pgcp"]).unwrap();
        assert_eq!(checkpoint_path(&opts), "x.pgcp");
        let opts = parse(&[]).unwrap();
        assert_eq!(checkpoint_path(&opts), "paragraph.pgcp");
    }

    #[test]
    fn exit_codes_are_distinct_by_class() {
        assert_eq!(
            CliError::Usage(String::new()).exit_code(),
            ExitCode::from(2)
        );
        assert_eq!(CliError::Io(String::new()).exit_code(), ExitCode::from(3));
        assert_eq!(
            CliError::CorruptTrace(String::new()).exit_code(),
            ExitCode::from(4)
        );
        assert_eq!(
            CliError::Analysis(String::new()).exit_code(),
            ExitCode::from(5)
        );
        assert_eq!(
            CliError::Quarantined(String::new()).exit_code(),
            ExitCode::from(6)
        );
        assert_eq!(
            CliError::InputRejected {
                message: String::new(),
                report: String::new()
            }
            .exit_code(),
            ExitCode::from(7)
        );
    }

    #[test]
    fn ingest_and_rejection_flags_parse() {
        let opts = parse(&[
            "--text",
            "in.pgtxt",
            "--out",
            "out.pgtr",
            "--reject-report",
            "why.json",
            "--strict",
        ])
        .unwrap();
        assert_eq!(opts.text.as_deref(), Some("in.pgtxt"));
        assert_eq!(opts.out.as_deref(), Some("out.pgtr"));
        assert_eq!(opts.reject_report.as_deref(), Some("why.json"));
        assert!(opts.strict);
        assert!(parse(&["--text"]).is_err());
    }

    #[test]
    fn rejection_report_is_one_json_object() {
        let err = input_rejected(
            "a \"b\"\\c.pgtr",
            "max-declared-len",
            "chunk payload length",
            9,
            4,
            "boom",
        );
        let CliError::InputRejected { message, report } = err else {
            panic!("wrong variant");
        };
        assert!(message.contains("input rejected"));
        assert!(report.starts_with('{') && report.ends_with('}'));
        assert!(report.contains("\"limit\":\"max-declared-len\""));
        assert!(report.contains("\"actual\":9"));
        assert!(report.contains("\"cap\":4"));
        assert!(report.contains("a \\\"b\\\"\\\\c.pgtr"));
    }

    #[test]
    fn supervision_flags_parse() {
        let opts = parse(&["--retries", "5", "--retry-backoff-ms", "100"]).unwrap();
        assert_eq!(opts.retries, Some(5));
        assert_eq!(opts.retry_backoff_ms, Some(100));
        assert!(parse(&["--retries"]).is_err());
        assert!(parse(&["--retry-backoff-ms", "fast"]).is_err());
    }
}

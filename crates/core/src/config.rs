//! Analysis configuration: the paper's switches.

use crate::branch::BranchPolicy;
use crate::memmodel::MemoryModel;
use paragraph_isa::LatencyModel;
use paragraph_trace::{Loc, Segment, SegmentMap};
use std::fmt;

/// Which storage classes are renamed (storage dependencies removed).
///
/// Renaming assigns a fresh storage location to every value created, giving
/// the execution the single-assignment property and removing all WAR/WAW
/// ordering for that storage class. The paper studies four combinations
/// (Table 4): no renaming, registers only, registers + stack, and registers +
/// all memory.
///
/// # Examples
///
/// ```
/// use paragraph_core::RenameSet;
///
/// let regs_only = RenameSet::registers_only();
/// assert!(regs_only.registers());
/// assert!(!regs_only.stack());
/// assert!(!regs_only.data());
/// assert_eq!(RenameSet::all().to_string(), "reg/mem renamed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RenameSet {
    registers: bool,
    stack: bool,
    data: bool,
}

impl RenameSet {
    /// Rename nothing: all storage dependencies remain in the DDG.
    pub fn none() -> RenameSet {
        RenameSet {
            registers: false,
            stack: false,
            data: false,
        }
    }

    /// Rename registers only ("Regs Renamed" in Table 4).
    pub fn registers_only() -> RenameSet {
        RenameSet {
            registers: true,
            ..RenameSet::none()
        }
    }

    /// Rename registers and the stack segment ("Regs/Stack Renamed").
    pub fn registers_and_stack() -> RenameSet {
        RenameSet {
            registers: true,
            stack: true,
            data: false,
        }
    }

    /// Rename everything ("Reg/Mem Renamed"): the pure-dataflow condition.
    pub fn all() -> RenameSet {
        RenameSet {
            registers: true,
            stack: true,
            data: true,
        }
    }

    /// The four conditions of Table 4, in the paper's column order.
    pub fn table4_conditions() -> [RenameSet; 4] {
        [
            RenameSet::none(),
            RenameSet::registers_only(),
            RenameSet::registers_and_stack(),
            RenameSet::all(),
        ]
    }

    /// Whether register storage dependencies are removed.
    pub fn registers(self) -> bool {
        self.registers
    }

    /// Whether stack-segment storage dependencies are removed.
    pub fn stack(self) -> bool {
        self.stack
    }

    /// Whether non-stack-memory (data + heap) storage dependencies are
    /// removed.
    pub fn data(self) -> bool {
        self.data
    }

    /// Overrides the register switch.
    pub fn with_registers(mut self, on: bool) -> RenameSet {
        self.registers = on;
        self
    }

    /// Overrides the stack switch.
    pub fn with_stack(mut self, on: bool) -> RenameSet {
        self.stack = on;
        self
    }

    /// Overrides the non-stack-memory switch.
    pub fn with_data(mut self, on: bool) -> RenameSet {
        self.data = on;
        self
    }

    /// Whether a write to `dest` is renamed (carries no storage dependency)
    /// under this rename set, given the memory segment map.
    pub fn renames(self, dest: Loc, segments: &SegmentMap) -> bool {
        match dest {
            Loc::IntReg(_) | Loc::FpReg(_) => self.registers,
            Loc::Mem(addr) => match segments.classify(addr) {
                Segment::Stack => self.stack,
                Segment::Data | Segment::Heap => self.data,
            },
        }
    }

    /// The paper's Table 4 column label for this condition.
    pub fn paper_label(self) -> &'static str {
        match (self.registers, self.stack, self.data) {
            (false, false, false) => "no renaming",
            (true, false, false) => "regs renamed",
            (true, true, false) => "regs/stack renamed",
            (true, true, true) => "reg/mem renamed",
            _ => "custom renaming",
        }
    }
}

impl Default for RenameSet {
    /// Everything renamed (the dataflow-limit condition).
    fn default() -> RenameSet {
        RenameSet::all()
    }
}

impl fmt::Display for RenameSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_label())
    }
}

/// How system calls are modelled (the paper's *System Calls Stall* switch).
///
/// Paragraph does not know the side effects of a system call, so it either
/// assumes the call modified every live value (a *firewall* in the DDG), or
/// that it modified nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyscallPolicy {
    /// Conservative: each system call places a firewall immediately after the
    /// deepest computation yet placed; no later instruction may be placed
    /// above it.
    #[default]
    Conservative,
    /// Optimistic: system calls are assumed to modify nothing and are
    /// ignored (not placed in the DDG).
    Optimistic,
}

impl fmt::Display for SyscallPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyscallPolicy::Conservative => "conservative",
            SyscallPolicy::Optimistic => "optimistic",
        })
    }
}

/// The instruction window: how many contiguous trace instructions are
/// visible at once when placing values into the DDG (Figure 6).
///
/// # Examples
///
/// ```
/// use paragraph_core::WindowSize;
///
/// assert!(WindowSize::Infinite.is_infinite());
/// assert_eq!(WindowSize::bounded(128).limit(), Some(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowSize {
    /// The whole trace is visible (no control dependencies from the window).
    #[default]
    Infinite,
    /// Only this many contiguous instructions are visible at a time.
    Bounded(usize),
}

impl WindowSize {
    /// A bounded window of `size` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero; a window must hold at least the instruction
    /// being placed.
    pub fn bounded(size: usize) -> WindowSize {
        assert!(size > 0, "window size must be positive");
        WindowSize::Bounded(size)
    }

    /// Whether the window spans the whole trace.
    pub fn is_infinite(self) -> bool {
        matches!(self, WindowSize::Infinite)
    }

    /// The window bound, or `None` if infinite.
    pub fn limit(self) -> Option<usize> {
        match self {
            WindowSize::Infinite => None,
            WindowSize::Bounded(n) => Some(n),
        }
    }
}

impl fmt::Display for WindowSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSize::Infinite => f.write_str("infinite"),
            WindowSize::Bounded(n) => write!(f, "{n}"),
        }
    }
}

/// Full configuration of one DDG analysis run.
///
/// Combines the paper's switches (§3.2): syscall policy, renaming, window
/// size — plus the latency model (Table 1), the memory segment map used to
/// classify stack vs. non-stack addresses, and the parallelism-profile
/// resolution.
///
/// # Examples
///
/// ```
/// use paragraph_core::{AnalysisConfig, RenameSet, SyscallPolicy, WindowSize};
///
/// let config = AnalysisConfig::dataflow_limit()
///     .with_renames(RenameSet::registers_only())
///     .with_window(WindowSize::bounded(1000))
///     .with_syscall_policy(SyscallPolicy::Optimistic);
/// assert_eq!(config.window().limit(), Some(1000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    renames: RenameSet,
    syscalls: SyscallPolicy,
    window: WindowSize,
    latency: LatencyModel,
    segments: SegmentMap,
    profile_bins: usize,
    branches: BranchPolicy,
    issue_limit: Option<usize>,
    value_stats: bool,
    memory: MemoryModel,
    live_well_cap: Option<usize>,
}

/// Default number of parallelism-profile bins before coarsening.
pub const DEFAULT_PROFILE_BINS: usize = 4096;

impl AnalysisConfig {
    /// The paper's dataflow-limit condition (Table 3 "Conservative"): all
    /// renaming enabled, infinite window, conservative system calls, Table 1
    /// latencies.
    pub fn dataflow_limit() -> AnalysisConfig {
        AnalysisConfig {
            renames: RenameSet::all(),
            syscalls: SyscallPolicy::Conservative,
            window: WindowSize::Infinite,
            latency: LatencyModel::paper(),
            segments: SegmentMap::all_data(),
            profile_bins: DEFAULT_PROFILE_BINS,
            branches: BranchPolicy::Perfect,
            issue_limit: None,
            value_stats: false,
            memory: MemoryModel::Perfect,
            live_well_cap: None,
        }
    }

    /// The rename switches.
    pub fn renames(&self) -> RenameSet {
        self.renames
    }

    /// The system-call policy.
    pub fn syscall_policy(&self) -> SyscallPolicy {
        self.syscalls
    }

    /// The instruction window.
    pub fn window(&self) -> WindowSize {
        self.window
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The memory segment map.
    pub fn segments(&self) -> &SegmentMap {
        &self.segments
    }

    /// Maximum number of parallelism-profile bins before the profile
    /// coarsens its bin width.
    pub fn profile_bins(&self) -> usize {
        self.profile_bins
    }

    /// How conditional branches constrain placement.
    pub fn branch_policy(&self) -> BranchPolicy {
        self.branches
    }

    /// Maximum operations that may *start* in any single DDG level, or
    /// `None` for unlimited functional units. This is the paper's "machines
    /// that have a limited number of ALUs" throttle (Figure 4, streaming).
    pub fn issue_limit(&self) -> Option<usize> {
        self.issue_limit
    }

    /// Whether the analyzer collects value-lifetime and degree-of-sharing
    /// distributions (§2.3) during the pass.
    pub fn value_stats(&self) -> bool {
        self.value_stats
    }

    /// The memory disambiguation model.
    pub fn memory_model(&self) -> MemoryModel {
        self.memory
    }

    /// Maximum number of memory entries the live well may hold, or `None`
    /// for unbounded. This is the paper's working-set concern ("a very
    /// large memory (32 MBytes) was required to hold the working set of
    /// Paragraph") turned into a knob: under a cap the analyzer evicts the
    /// coldest values, trading exactness for bounded memory — evictions are
    /// counted as an accuracy caveat in the report.
    pub fn live_well_cap(&self) -> Option<usize> {
        self.live_well_cap
    }

    /// Overrides the rename switches.
    pub fn with_renames(mut self, renames: RenameSet) -> AnalysisConfig {
        self.renames = renames;
        self
    }

    /// Overrides the system-call policy.
    pub fn with_syscall_policy(mut self, policy: SyscallPolicy) -> AnalysisConfig {
        self.syscalls = policy;
        self
    }

    /// Overrides the instruction window.
    pub fn with_window(mut self, window: WindowSize) -> AnalysisConfig {
        self.window = window;
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> AnalysisConfig {
        self.latency = latency;
        self
    }

    /// Overrides the memory segment map (normally taken from the VM).
    pub fn with_segments(mut self, segments: SegmentMap) -> AnalysisConfig {
        self.segments = segments;
        self
    }

    /// Overrides the profile resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn with_profile_bins(mut self, bins: usize) -> AnalysisConfig {
        assert!(bins > 0, "profile must have at least one bin");
        self.profile_bins = bins;
        self
    }

    /// Overrides the branch policy.
    pub fn with_branch_policy(mut self, policy: BranchPolicy) -> AnalysisConfig {
        self.branches = policy;
        self
    }

    /// Limits how many operations may start in any single DDG level.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_issue_limit(mut self, limit: usize) -> AnalysisConfig {
        assert!(limit > 0, "issue limit must be positive");
        self.issue_limit = Some(limit);
        self
    }

    /// Enables collection of value-lifetime and sharing distributions.
    pub fn with_value_stats(mut self, on: bool) -> AnalysisConfig {
        self.value_stats = on;
        self
    }

    /// Overrides the memory disambiguation model.
    pub fn with_memory_model(mut self, model: MemoryModel) -> AnalysisConfig {
        self.memory = model;
        self
    }

    /// Caps the live well's memory table at `cap` entries; the coldest
    /// entries are evicted when the cap is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_live_well_cap(mut self, cap: usize) -> AnalysisConfig {
        assert!(cap > 0, "live-well cap must be positive");
        self.live_well_cap = Some(cap);
        self
    }
}

impl Default for AnalysisConfig {
    /// Same as [`AnalysisConfig::dataflow_limit`].
    fn default() -> AnalysisConfig {
        AnalysisConfig::dataflow_limit()
    }
}

impl fmt::Display for AnalysisConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {} syscalls, window {}",
            self.renames, self.syscalls, self.window
        )?;
        if self.branches != BranchPolicy::Perfect {
            write!(f, ", {} branches", self.branches)?;
        }
        if let Some(limit) = self.issue_limit {
            write!(f, ", {limit}-wide issue")?;
        }
        if self.memory.is_conservative() {
            write!(f, ", {}", self.memory)?;
        }
        if let Some(cap) = self.live_well_cap {
            write!(f, ", live well capped at {cap}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_conditions_are_ordered_weakest_to_strongest() {
        let conds = RenameSet::table4_conditions();
        assert_eq!(conds[0], RenameSet::none());
        assert_eq!(conds[3], RenameSet::all());
        assert_eq!(conds[1].paper_label(), "regs renamed");
        assert_eq!(conds[2].paper_label(), "regs/stack renamed");
    }

    #[test]
    fn rename_classification_uses_segment_map() {
        let segments = SegmentMap::new(100, 200);
        let rs = RenameSet::registers_and_stack();
        assert!(rs.renames(Loc::int(5), &segments));
        assert!(rs.renames(Loc::fp(5), &segments));
        assert!(rs.renames(Loc::mem(250), &segments)); // stack
        assert!(!rs.renames(Loc::mem(150), &segments)); // heap -> data switch
        assert!(!rs.renames(Loc::mem(50), &segments)); // data
    }

    #[test]
    fn heap_counts_as_non_stack_data() {
        let segments = SegmentMap::new(100, 200);
        let data_only = RenameSet::none().with_data(true);
        assert!(data_only.renames(Loc::mem(150), &segments));
        assert!(!data_only.renames(Loc::mem(250), &segments));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        WindowSize::bounded(0);
    }

    #[test]
    fn config_builder_chains() {
        let c = AnalysisConfig::dataflow_limit()
            .with_window(WindowSize::bounded(64))
            .with_syscall_policy(SyscallPolicy::Optimistic)
            .with_profile_bins(16);
        assert_eq!(c.window(), WindowSize::Bounded(64));
        assert_eq!(c.syscall_policy(), SyscallPolicy::Optimistic);
        assert_eq!(c.profile_bins(), 16);
    }

    #[test]
    fn display_mentions_every_switch() {
        let text = AnalysisConfig::dataflow_limit().to_string();
        assert!(text.contains("renamed"));
        assert!(text.contains("conservative"));
        assert!(text.contains("infinite"));
    }

    #[test]
    fn custom_rename_combo_has_label() {
        let odd = RenameSet::none().with_stack(true);
        assert_eq!(odd.paper_label(), "custom renaming");
    }
}

//! Memory disambiguation models.
//!
//! The paper's analyses assume *perfect* memory disambiguation — a load
//! depends only on the store that actually produced its word ("perfect
//! control flow and memory disambiguation is assumed in the dataflow
//! analysis") — and it contrasts its results with limit studies (Wall,
//! ASPLOS 1991; Smith/Johnson/Horowitz) that vary "memory disambiguation
//! strategies" among their constraints. This module provides that axis:
//!
//! * [`MemoryModel::Perfect`] — the paper's setting: memory dependencies
//!   are tracked per word address.
//! * [`MemoryModel::NoDisambiguation`] — the pessimistic hardware baseline:
//!   addresses are never compared, so every load may depend on *every*
//!   earlier store, and every store must follow every earlier load and
//!   store. This is what a sequential machine without a disambiguating
//!   load/store queue must assume.
//!
//! Under `NoDisambiguation` the constraint applies regardless of the
//! renaming switches: renaming removes storage reuse you can *identify*,
//! and without disambiguation no memory reuse can be identified.

use std::fmt;

/// How memory dependencies are disambiguated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Dependencies tracked by exact word address (the paper's setting).
    #[default]
    Perfect,
    /// No address comparison: loads conservatively depend on all earlier
    /// stores; stores on all earlier loads and stores.
    NoDisambiguation,
}

impl MemoryModel {
    /// Whether this model orders memory operations conservatively.
    pub fn is_conservative(self) -> bool {
        matches!(self, MemoryModel::NoDisambiguation)
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemoryModel::Perfect => "perfect disambiguation",
            MemoryModel::NoDisambiguation => "no disambiguation",
        })
    }
}

/// Running conservative memory-ordering state shared by the streaming and
/// explicit analyzers.
#[derive(Debug, Clone, Default)]
pub(crate) struct MemOrdering {
    /// Deepest completion level of any store so far, with its node id (the
    /// explicit builder threads node ids; the live well passes `usize::MAX`).
    pub deepest_store: Option<(i64, usize)>,
    /// Deepest completion level of any load so far, with its node id.
    pub deepest_load: Option<(i64, usize)>,
}

impl MemOrdering {
    /// The floor a load must respect: all earlier stores.
    pub fn load_floor(&self) -> Option<(i64, usize)> {
        self.deepest_store
    }

    /// The floor a store must respect: all earlier loads and stores.
    pub fn store_floor(&self) -> Option<(i64, usize)> {
        match (self.deepest_store, self.deepest_load) {
            (Some(s), Some(l)) => Some(if s.0 >= l.0 { s } else { l }),
            (s, l) => s.or(l),
        }
    }

    /// Records a placed load.
    pub fn observe_load(&mut self, level: i64, node: usize) {
        if self.deepest_load.is_none_or(|(l, _)| level > l) {
            self.deepest_load = Some((level, node));
        }
    }

    /// Records a placed store.
    pub fn observe_store(&mut self, level: i64, node: usize) {
        if self.deepest_store.is_none_or(|(l, _)| level > l) {
            self.deepest_store = Some((level, node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_track_deepest() {
        let mut ord = MemOrdering::default();
        assert_eq!(ord.load_floor(), None);
        assert_eq!(ord.store_floor(), None);
        ord.observe_load(5, 1);
        assert_eq!(ord.load_floor(), None); // loads don't constrain loads
        assert_eq!(ord.store_floor(), Some((5, 1)));
        ord.observe_store(3, 2);
        assert_eq!(ord.load_floor(), Some((3, 2)));
        assert_eq!(ord.store_floor(), Some((5, 1)));
        ord.observe_store(9, 3);
        assert_eq!(ord.load_floor(), Some((9, 3)));
        assert_eq!(ord.store_floor(), Some((9, 3)));
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryModel::Perfect.to_string(), "perfect disambiguation");
        assert!(MemoryModel::NoDisambiguation.is_conservative());
    }
}

//! Convenience drivers over the streaming analyzer.

use crate::config::AnalysisConfig;
use crate::livewell::LiveWell;
use crate::report::AnalysisReport;
use paragraph_trace::{TraceRecord, TraceStats};

/// Analyzes an owned iterator of trace records under `config`.
///
/// # Examples
///
/// ```
/// use paragraph_core::{analyze, AnalysisConfig};
/// use paragraph_trace::synthetic;
///
/// let report = analyze(synthetic::diamond(8), &AnalysisConfig::dataflow_limit());
/// assert!(report.available_parallelism() > 1.0);
/// ```
pub fn analyze<I>(records: I, config: &AnalysisConfig) -> AnalysisReport
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut analyzer = LiveWell::new(config.clone());
    for record in records {
        analyzer.process(&record);
    }
    analyzer.finish()
}

/// Analyzes a borrowed slice/iterator of trace records under `config`.
pub fn analyze_refs<'a, I>(records: I, config: &AnalysisConfig) -> AnalysisReport
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut analyzer = LiveWell::new(config.clone());
    analyzer.process_all(records);
    analyzer.finish()
}

/// Analyzes a contiguous slice of records under `config` — the sweep
/// engine's entry point: one arena-resident decode (`Arc<[TraceRecord]>`)
/// feeds any number of analyzer passes without per-pass iterator plumbing.
pub fn analyze_slice(records: &[TraceRecord], config: &AnalysisConfig) -> AnalysisReport {
    let mut analyzer = LiveWell::new(config.clone());
    analyzer.process_slice(records);
    analyzer.finish()
}

/// Analyzes a trace while also collecting first-order statistics, in one
/// pass.
pub fn analyze_with_stats<'a, I>(
    records: I,
    config: &AnalysisConfig,
) -> (AnalysisReport, TraceStats)
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut analyzer = LiveWell::new(config.clone());
    let mut stats = TraceStats::new();
    for record in records {
        stats.observe(record);
        analyzer.process(record);
    }
    (analyzer.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_trace::synthetic;

    #[test]
    fn analyze_and_analyze_refs_agree() {
        let trace = synthetic::random_trace(500, 9);
        let config = AnalysisConfig::dataflow_limit();
        let a = analyze(trace.clone(), &config);
        let b = analyze_refs(&trace, &config);
        assert_eq!(a.critical_path_length(), b.critical_path_length());
        assert_eq!(a.placed_ops(), b.placed_ops());
    }

    #[test]
    fn stats_and_report_agree_on_counts() {
        let trace = synthetic::random_trace(500, 10);
        let (report, stats) = analyze_with_stats(&trace, &AnalysisConfig::dataflow_limit());
        assert_eq!(report.total_records(), stats.total());
        assert_eq!(report.placed_ops(), stats.placed());
        assert_eq!(report.syscalls(), stats.syscalls());
    }
}

//! A discrete distribution type shared by the lifetime, sharing and
//! branch-behaviour analyses.

use std::collections::BTreeMap;

/// A discrete distribution over `u64` values (lifetimes, sharing degrees...).
///
/// # Examples
///
/// ```
/// use paragraph_core::Distribution;
///
/// let mut d = Distribution::new();
/// for v in [0, 0, 3, 5] {
///     d.record(v);
/// }
/// assert_eq!(d.count(), 4);
/// assert_eq!(d.mean(), 2.0);
/// assert_eq!(d.max(), Some(5));
/// assert_eq!(d.frequency(0), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Distribution {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Distribution {
    /// An empty distribution.
    pub fn new() -> Distribution {
        Distribution::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_many(value, 1);
    }

    /// Records `n` observations of `value` at once.
    pub fn record_many(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations of exactly `value`.
    pub fn frequency(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// The smallest value `v` such that at least `p` (in `[0,1]`) of the
    /// observations are `<= v`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let threshold = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&value, &n) in &self.counts {
            seen += n;
            if seen >= threshold {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, frequency)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &n)| (v, n))
    }

    /// Folds another distribution into this one: afterwards `self` is
    /// exactly the distribution that would result from recording both
    /// observation sets into one instance. Merging is commutative and
    /// associative (per-value counts add), so segment-parallel analyses
    /// can combine per-segment distributions in any order and still match
    /// the sequential oracle bit for bit.
    pub fn merge(&mut self, other: &Distribution) {
        for (value, count) in other.iter() {
            self.record_many(value, count);
        }
    }

    /// Population standard deviation (0 when fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .counts
            .iter()
            .map(|(&v, &n)| {
                let d = v as f64 - mean;
                d * d * n as f64
            })
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }

    /// Number of distinct observed values.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Writes the distribution as CSV (`value,count`), one row per distinct
    /// value.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_csv<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        writeln!(out, "value,count")?;
        for (value, count) in self.iter() {
            writeln!(out, "{value},{count}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} observations, mean {:.2}, sd {:.2}, max {}",
            self.total,
            self.mean(),
            self.stddev(),
            self.max().unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut d = Distribution::new();
        for _ in 0..10 {
            d.record(7);
        }
        assert_eq!(d.stddev(), 0.0);
        assert_eq!(d.distinct_values(), 1);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let mut d = Distribution::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            d.record(v);
        }
        // Classic example: mean 5, population sd 2.
        assert_eq!(d.mean(), 5.0);
        assert!((d.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_lists_every_distinct_value() {
        let mut d = Distribution::new();
        d.record(1);
        d.record(1);
        d.record(3);
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "value,count\n1,2\n3,1\n");
    }

    #[test]
    fn display_is_informative() {
        let mut d = Distribution::new();
        d.record(4);
        assert!(d.to_string().contains("1 observations"));
    }

    /// SplitMix64 — the crate-standard minimal PRNG for deterministic
    /// property tests.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// merge(a, b) must equal recording the union of the two observation
    /// streams — the property the parallel analyzer's seam reconciliation
    /// rests on. Checked structurally (`Eq` covers counts, total and sum)
    /// over randomized splits, plus commutativity.
    #[test]
    fn merge_equals_recording_the_union() {
        for seed in 0..8u64 {
            let mut state = seed;
            let n = 1 + (splitmix(&mut state) % 200) as usize;
            let values: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 32).collect();
            let split = (splitmix(&mut state) as usize) % (n + 1);

            let mut union = Distribution::new();
            for &v in &values {
                union.record(v);
            }
            let mut a = Distribution::new();
            for &v in &values[..split] {
                a.record(v);
            }
            let mut b = Distribution::new();
            for &v in &values[split..] {
                b.record(v);
            }

            let mut ab = a.clone();
            ab.merge(&b);
            assert_eq!(ab, union, "seed {seed}: merge(a,b) != union");
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ba, union, "seed {seed}: merge is not commutative");
            assert_eq!(ab.mean(), union.mean());
            assert_eq!(ab.percentile(0.5), union.percentile(0.5));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut d = Distribution::new();
        d.record_many(3, 5);
        let before = d.clone();
        d.merge(&Distribution::new());
        assert_eq!(d, before);
        let mut empty = Distribution::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}

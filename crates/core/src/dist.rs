//! A discrete distribution type shared by the lifetime, sharing and
//! branch-behaviour analyses.

use std::collections::BTreeMap;

/// A discrete distribution over `u64` values (lifetimes, sharing degrees...).
///
/// # Examples
///
/// ```
/// use paragraph_core::Distribution;
///
/// let mut d = Distribution::new();
/// for v in [0, 0, 3, 5] {
///     d.record(v);
/// }
/// assert_eq!(d.count(), 4);
/// assert_eq!(d.mean(), 2.0);
/// assert_eq!(d.max(), Some(5));
/// assert_eq!(d.frequency(0), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Distribution {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Distribution {
    /// An empty distribution.
    pub fn new() -> Distribution {
        Distribution::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_many(value, 1);
    }

    /// Records `n` observations of `value` at once.
    pub fn record_many(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations of exactly `value`.
    pub fn frequency(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// The smallest value `v` such that at least `p` (in `[0,1]`) of the
    /// observations are `<= v`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let threshold = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&value, &n) in &self.counts {
            seen += n;
            if seen >= threshold {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, frequency)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &n)| (v, n))
    }

    /// Population standard deviation (0 when fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .counts
            .iter()
            .map(|(&v, &n)| {
                let d = v as f64 - mean;
                d * d * n as f64
            })
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }

    /// Number of distinct observed values.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Writes the distribution as CSV (`value,count`), one row per distinct
    /// value.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_csv<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        writeln!(out, "value,count")?;
        for (value, count) in self.iter() {
            writeln!(out, "{value},{count}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} observations, mean {:.2}, sd {:.2}, max {}",
            self.total,
            self.mean(),
            self.stddev(),
            self.max().unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut d = Distribution::new();
        for _ in 0..10 {
            d.record(7);
        }
        assert_eq!(d.stddev(), 0.0);
        assert_eq!(d.distinct_values(), 1);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let mut d = Distribution::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            d.record(v);
        }
        // Classic example: mean 5, population sd 2.
        assert_eq!(d.mean(), 5.0);
        assert!((d.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_lists_every_distinct_value() {
        let mut d = Distribution::new();
        d.record(1);
        d.record(1);
        d.record(3);
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "value,count\n1,2\n3,1\n");
    }

    #[test]
    fn display_is_informative() {
        let mut d = Distribution::new();
        d.record(4);
        assert!(d.to_string().contains("1 observations"));
    }
}

//! The explicit (materialized) dynamic dependency graph.
//!
//! The live well answers the two headline questions (profile, critical path)
//! in a single streaming pass. For bounded traces it is also useful to
//! materialize the graph itself — "the nodes of the graph represent the
//! computation that occurred during the execution of an instruction, and the
//! edges represent the dependencies" — which unlocks the rest of the paper's
//! §2.3 analyses: value lifetimes, degree of sharing, storage occupancy, and
//! throttling the DDG onto machine models with limited resources (see
//! [`crate::schedule`]).
//!
//! The builder uses the same placement rule as [`LiveWell`](crate::LiveWell)
//! and the two are cross-validated in tests: for any trace and configuration
//! they must agree on every placement.

use crate::branch::{BranchPolicy, Predictor};
use crate::config::{AnalysisConfig, SyscallPolicy};
use crate::dist::Distribution;
use crate::fasthash::FastMap;
use crate::memmodel::MemOrdering;
use crate::profile::ParallelismProfile;
use crate::window::WindowLimiter;
use paragraph_isa::OpClass;
use paragraph_trace::{Loc, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Index of a node in a [`Ddg`].
pub type NodeId = usize;

/// The kind of dependency an edge represents (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// True (read-after-write) data dependency.
    True,
    /// Storage (write-after-read or write-after-write) dependency.
    Storage,
    /// Control dependency, modelled by a firewall (system call or
    /// instruction-window displacement).
    Control,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DepKind::True => "true",
            DepKind::Storage => "storage",
            DepKind::Control => "control",
        })
    }
}

/// One node of the DDG: a dynamic, value-creating instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdgNode {
    /// The node's index.
    pub id: NodeId,
    /// Position of the instruction in the trace (0-based).
    pub trace_index: u64,
    /// The instruction's program counter.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Completion level (the `Ldest` of the placement rule).
    pub level: u64,
    /// The location whose value this node created, if any.
    pub dest: Option<Loc>,
}

/// One edge of the DDG. The operation at `to` depends on the operation at
/// `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The depended-upon node.
    pub from: NodeId,
    /// The dependent node.
    pub to: NodeId,
    /// What kind of dependency forces the order.
    pub kind: DepKind,
}

#[derive(Debug, Clone)]
struct ValueState {
    /// Node that created the value; `None` for preexisting values.
    creator: Option<NodeId>,
    avail: i64,
    deepest_use: i64,
    readers: Vec<NodeId>,
}

impl ValueState {
    fn preexisting() -> ValueState {
        ValueState {
            creator: None,
            avail: -1,
            deepest_use: -1,
            readers: Vec::new(),
        }
    }
}

/// Incremental builder of an explicit [`Ddg`].
///
/// Applies the identical placement rule as the streaming analyzer, but also
/// records every node and typed edge.
///
/// Intended for bounded traces (it holds the whole graph in memory); for
/// 100M-instruction runs use [`LiveWell`](crate::LiveWell).
///
/// # Examples
///
/// ```
/// use paragraph_core::{AnalysisConfig, DdgBuilder};
/// use paragraph_trace::synthetic;
///
/// let mut builder = DdgBuilder::new(AnalysisConfig::dataflow_limit());
/// for record in synthetic::figure1() {
///     builder.process(&record);
/// }
/// let ddg = builder.finish();
/// assert_eq!(ddg.len(), 8);
/// assert_eq!(ddg.height(), 4);
/// ```
#[derive(Debug)]
pub struct DdgBuilder {
    config: AnalysisConfig,
    nodes: Vec<DdgNode>,
    edges: Vec<Edge>,
    values: FastMap<Loc, ValueState>,
    floor: i64,
    floor_source: Option<NodeId>,
    deepest: i64,
    deepest_node: Option<NodeId>,
    window: WindowLimiter<NodeId>,
    predictor: Option<Predictor>,
    level_starts: FastMap<i64, u32>,
    mem_ordering: MemOrdering,
    lifetimes: Distribution,
    sharing: Distribution,
    live_intervals: Vec<(u64, u64)>,
    trace_index: u64,
    total_records: u64,
}

impl DdgBuilder {
    /// Creates a builder for one pass under `config`.
    pub fn new(config: AnalysisConfig) -> DdgBuilder {
        let predictor = match config.branch_policy() {
            BranchPolicy::Predict(kind) => Some(Predictor::new(kind)),
            _ => None,
        };
        DdgBuilder {
            window: WindowLimiter::new(config.window()),
            predictor,
            level_starts: FastMap::default(),
            mem_ordering: MemOrdering::default(),
            config,
            nodes: Vec::new(),
            edges: Vec::new(),
            values: FastMap::default(),
            floor: -1,
            floor_source: None,
            deepest: -1,
            deepest_node: None,
            lifetimes: Distribution::new(),
            sharing: Distribution::new(),
            live_intervals: Vec::new(),
            trace_index: 0,
            total_records: 0,
        }
    }

    /// Folds a displaced value into the lifetime/sharing distributions.
    fn retire(
        lifetimes: &mut Distribution,
        sharing: &mut Distribution,
        live_intervals: &mut Vec<(u64, u64)>,
        state: &ValueState,
    ) {
        if state.creator.is_some() {
            let created = state.avail as u64;
            let last_use = state.deepest_use.max(state.avail) as u64;
            lifetimes.record(last_use - created);
            sharing.record(state.readers.len() as u64);
            live_intervals.push((created, last_use));
        }
    }

    /// Processes one trace record; returns the new node's id if the record
    /// was placed.
    pub fn process(&mut self, record: &TraceRecord) -> Option<NodeId> {
        let trace_index = self.trace_index;
        self.trace_index += 1;
        self.total_records += 1;
        let class = record.class();

        // Window admission displaces the oldest visible instruction first;
        // the displaced op becomes a firewall bounding this placement.
        if let Some((displaced_level, displaced_node)) = self.window.make_room() {
            if displaced_level > self.floor {
                self.floor = displaced_level;
                self.floor_source = Some(displaced_node);
            }
        }

        let skip = !class.creates_value()
            || (class == OpClass::Syscall
                && self.config.syscall_policy() == SyscallPolicy::Optimistic);
        if skip {
            if class == OpClass::Branch {
                self.observe_branch(record);
            }
            self.window.push(None);
            return None;
        }

        let id = self.nodes.len();

        // Gather constraints; remember which predecessor binds for the
        // critical-path witness and which edges to emit.
        let mut base = self.floor;
        for &src in record.srcs() {
            let state = self
                .values
                .entry(src)
                .or_insert_with(ValueState::preexisting);
            base = base.max(state.avail);
        }
        let mut storage_preds: Vec<NodeId> = Vec::new();
        if let Some(dest) = record.dest() {
            if !self.config.renames().renames(dest, self.config.segments()) {
                if let Some(old) = self.values.get(&dest) {
                    base = base.max(old.deepest_use);
                    storage_preds.extend(old.creator);
                    storage_preds.extend(old.readers.iter().copied());
                }
            }
        }
        if self.config.memory_model().is_conservative() {
            let bound = match class {
                OpClass::Load => self.mem_ordering.load_floor(),
                OpClass::Store => self.mem_ordering.store_floor(),
                _ => None,
            };
            if let Some((bound_level, node)) = bound {
                base = base.max(bound_level);
                if node != usize::MAX {
                    // Conservative aliasing order: modelled as a storage
                    // dependence on the deepest earlier memory operation.
                    storage_preds.push(node);
                }
            }
        }
        let top = i64::from(self.config.latency().latency(class));
        let level = if let Some(limit) = self.config.issue_limit() {
            // Resource dependency: slide the start level to the first with a
            // free issue slot (same rule as the streaming analyzer).
            let mut start = base + 1;
            while self
                .level_starts
                .get(&start)
                .is_some_and(|&n| n as usize >= limit)
            {
                start += 1;
            }
            *self.level_starts.entry(start).or_insert(0) += 1;
            start + top - 1
        } else {
            base + top
        };

        // True edges, one per source value with a creating node.
        for &src in record.srcs() {
            if let Some(state) = self.values.get_mut(&src) {
                state.deepest_use = state.deepest_use.max(level);
                if let Some(creator) = state.creator {
                    self.edges.push(Edge {
                        from: creator,
                        to: id,
                        kind: DepKind::True,
                    });
                }
                state.readers.push(id);
            }
        }
        // Storage edges from the displaced value's creator and readers.
        storage_preds.sort_unstable();
        storage_preds.dedup();
        for from in storage_preds {
            if from != id {
                self.edges.push(Edge {
                    from,
                    to: id,
                    kind: DepKind::Storage,
                });
            }
        }
        // Control edge when the firewall floor binds the placement.
        if let Some(source) = self.floor_source {
            let bound_by_floor = base == self.floor;
            if bound_by_floor && source != id {
                self.edges.push(Edge {
                    from: source,
                    to: id,
                    kind: DepKind::Control,
                });
            }
        }

        if let Some(dest) = record.dest() {
            let old = self.values.insert(
                dest,
                ValueState {
                    creator: Some(id),
                    avail: level,
                    deepest_use: level,
                    readers: Vec::new(),
                },
            );
            if let Some(old) = old {
                Self::retire(
                    &mut self.lifetimes,
                    &mut self.sharing,
                    &mut self.live_intervals,
                    &old,
                );
            }
        }

        self.nodes.push(DdgNode {
            id,
            trace_index,
            pc: record.pc(),
            class,
            level: level as u64,
            dest: record.dest(),
        });
        if self.config.memory_model().is_conservative() {
            match class {
                OpClass::Load => self.mem_ordering.observe_load(level, id),
                OpClass::Store => self.mem_ordering.observe_store(level, id),
                _ => {}
            }
        }
        if level > self.deepest {
            self.deepest = level;
            self.deepest_node = Some(id);
        }

        if class == OpClass::Syscall && self.config.syscall_policy() == SyscallPolicy::Conservative
        {
            // The firewall sits immediately after the deepest computation
            // yet placed; that node carries the control edges, so the
            // materialized graph enforces the same bound as the floor.
            self.floor = self.deepest;
            self.floor_source = self.deepest_node;
        }

        self.window.push(Some((level, id)));

        Some(id)
    }

    /// Handles a conditional branch under the configured branch policy; the
    /// firewall is anchored at the creator of the branch's deepest source so
    /// the materialized graph carries the control edge.
    fn observe_branch(&mut self, record: &TraceRecord) {
        let mispredicted = match self.config.branch_policy() {
            BranchPolicy::Perfect => false,
            BranchPolicy::StallAlways => true,
            BranchPolicy::Predict(_) => match (record.branch_info(), self.predictor.as_mut()) {
                (Some(info), Some(predictor)) => {
                    !predictor.predict_and_train(record.pc(), info.taken, info.target)
                }
                _ => false,
            },
        };
        if mispredicted {
            let mut resolve = self.floor;
            let mut anchor = None;
            for &src in record.srcs() {
                let state = self
                    .values
                    .entry(src)
                    .or_insert_with(ValueState::preexisting);
                if state.avail > resolve {
                    resolve = state.avail;
                    anchor = state.creator;
                }
            }
            let resolve = resolve + 1;
            for &src in record.srcs() {
                if let Some(state) = self.values.get_mut(&src) {
                    state.deepest_use = state.deepest_use.max(resolve);
                }
            }
            if resolve > self.floor {
                self.floor = resolve;
                self.floor_source = anchor.or(self.floor_source);
            }
        }
    }

    /// Processes every record of an iterator.
    pub fn process_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        for record in records {
            self.process(record);
        }
    }

    /// Finishes the pass and returns the graph.
    pub fn finish(mut self) -> Ddg {
        // Retire the values still live at the end of the trace.
        let values = std::mem::take(&mut self.values);
        for state in values.values() {
            Self::retire(
                &mut self.lifetimes,
                &mut self.sharing,
                &mut self.live_intervals,
                state,
            );
        }
        Ddg {
            nodes: self.nodes,
            edges: self.edges,
            total_records: self.total_records,
            lifetimes: self.lifetimes,
            sharing: self.sharing,
            live_intervals: self.live_intervals,
        }
    }
}

/// A materialized dynamic dependency graph: a partially ordered, directed,
/// acyclic graph of dynamic operations and typed dependencies.
#[derive(Debug, Clone)]
pub struct Ddg {
    nodes: Vec<DdgNode>,
    edges: Vec<Edge>,
    total_records: u64,
    lifetimes: Distribution,
    sharing: Distribution,
    live_intervals: Vec<(u64, u64)>,
}

impl Ddg {
    /// Builds the graph of `records` under `config` in one call.
    pub fn from_records<'a, I>(records: I, config: &AnalysisConfig) -> Ddg
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut builder = DdgBuilder::new(config.clone());
        builder.process_all(records);
        builder.finish()
    }

    /// Number of nodes (placed operations).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total trace records observed, including unplaced control records.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The nodes, in trace order.
    pub fn nodes(&self) -> &[DdgNode] {
        &self.nodes
    }

    /// One node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &DdgNode {
        &self.nodes[id]
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The critical path length (height of the topologically sorted graph):
    /// one past the deepest completion level.
    pub fn height(&self) -> u64 {
        self.nodes.iter().map(|n| n.level + 1).max().unwrap_or(0)
    }

    /// The widest level's operation count.
    pub fn width(&self) -> u64 {
        self.parallelism_profile()
            .exact_counts()
            .map(|c| c.into_iter().max().unwrap_or(0))
            .unwrap_or_else(|| self.parallelism_profile().peak_avg_ops_per_level().round() as u64)
    }

    /// The parallelism profile of the graph.
    pub fn parallelism_profile(&self) -> ParallelismProfile {
        let bins = (self.height() as usize).max(1);
        let mut profile = ParallelismProfile::new(bins);
        for node in &self.nodes {
            profile.record(node.level);
        }
        profile
    }

    /// Available parallelism: nodes divided by height (0 when empty).
    pub fn available_parallelism(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.len() as f64 / self.height() as f64
        }
    }

    /// One longest dependency chain through the graph, as node ids in
    /// execution order.
    ///
    /// Ties are broken toward earlier trace order. Empty for an empty graph.
    pub fn critical_path(&self) -> Vec<NodeId> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        // Predecessors by node.
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            preds[e.to].push(e.from);
        }
        // Start from the deepest node (earliest among ties).
        let Some(mut current) = self
            .nodes
            .iter()
            .max_by_key(|n| (n.level, std::cmp::Reverse(n.id)))
            .map(|n| n.id)
        else {
            return Vec::new();
        };
        let mut path = vec![current];
        loop {
            // Deepest predecessor, earliest among ties.
            let next = preds[current]
                .iter()
                .copied()
                .max_by_key(|&p| (self.nodes[p].level, std::cmp::Reverse(p)));
            match next {
                Some(p) => {
                    path.push(p);
                    current = p;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Distribution of value lifetimes: for each value created in the graph,
    /// the number of levels from its creation to its last use (0 if never
    /// used). §2.3: "useful in determining the amount of temporary storage
    /// required to exploit the parallelism in the DDG."
    pub fn value_lifetimes(&self) -> &Distribution {
        &self.lifetimes
    }

    /// Distribution of the degree of sharing: for each created value, how
    /// many operations consumed it. §2.3: "how many operations can be
    /// 'fired' when a token is created."
    pub fn sharing_degrees(&self) -> Distribution {
        self.sharing.clone()
    }

    /// Storage occupancy per level: how many values are live (created but
    /// not yet past their last use) in each level. This is the paper's
    /// "memory requirement profile" / the dataflow literature's waiting-token
    /// profile.
    pub fn storage_occupancy(&self) -> Vec<u64> {
        let height = self.height() as usize;
        if height == 0 {
            return Vec::new();
        }
        let mut delta = vec![0i64; height + 1];
        for &(created, last_use) in &self.live_intervals {
            delta[created as usize] += 1;
            delta[(last_use as usize + 1).min(height)] -= 1;
        }
        let mut out = Vec::with_capacity(height);
        let mut live = 0i64;
        for d in delta.iter().take(height) {
            live += d;
            out.push(live as u64);
        }
        out
    }

    /// Distribution of scheduling slack: for each node, how many levels it
    /// could be delayed without lengthening the critical path (its latest
    /// feasible completion minus its ASAP completion).
    ///
    /// Slack 0 marks the critical operations; the paper's "bursty"
    /// profiles correspond to most operations having large slack (they
    /// crowd the early levels only because the dataflow machine runs
    /// everything as soon as possible).
    pub fn slack_distribution(&self) -> Distribution {
        let mut dist = Distribution::new();
        if self.nodes.is_empty() {
            return dist;
        }
        let height = self.height();
        // Latest completion per node via a reverse pass: a node must finish
        // early enough for each successor to still meet its own deadline.
        let mut latest: Vec<u64> = self.nodes.iter().map(|_| height - 1).collect();
        let mut succs: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            // The successor completes `gap` levels after this node at the
            // earliest, where `gap` is their ASAP spacing (conservative for
            // heterogeneous latencies, exact for the placement rule used).
            let gap = self.nodes[e.to]
                .level
                .saturating_sub(self.nodes[e.from].level);
            succs[e.from].push((e.to, gap));
        }
        for id in (0..self.nodes.len()).rev() {
            for &(succ, gap) in &succs[id] {
                latest[id] = latest[id].min(latest[succ].saturating_sub(gap));
            }
        }
        for (id, node) in self.nodes.iter().enumerate() {
            dist.record(latest[id] - node.level);
        }
        dist
    }

    /// Number of edges of each kind, in `(true, storage, control)` order.
    pub fn edge_counts(&self) -> (u64, u64, u64) {
        let mut t = 0;
        let mut s = 0;
        let mut c = 0;
        for e in &self.edges {
            match e.kind {
                DepKind::True => t += 1,
                DepKind::Storage => s += 1,
                DepKind::Control => c += 1,
            }
        }
        (t, s, c)
    }

    /// Renders the graph in Graphviz DOT format. Nodes are ranked by DDG
    /// level; storage edges are drawn dashed gray (the paper's "small, gray
    /// bubble"), control edges dotted.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph ddg {\n  rankdir=TB;\n  node [shape=box];\n");
        let mut by_level: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for node in &self.nodes {
            by_level.entry(node.level).or_default().push(node.id);
            let label = match node.dest {
                Some(dest) => format!("{} -> {}", node.class, dest),
                None => node.class.to_string(),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"#{} {} (L{})\"];",
                node.id, node.trace_index, label, node.level
            );
        }
        for (_, ids) in by_level {
            let _ = write!(out, "  {{ rank=same;");
            for id in ids {
                let _ = write!(out, " n{id};");
            }
            out.push_str(" }\n");
        }
        for e in &self.edges {
            let style = match e.kind {
                DepKind::True => "solid",
                DepKind::Storage => "dashed\", color=\"gray40",
                DepKind::Control => "dotted",
            };
            let _ = writeln!(out, "  n{} -> n{} [style=\"{}\"];", e.from, e.to, style);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RenameSet, WindowSize};
    use crate::livewell::LiveWell;
    use paragraph_trace::synthetic;

    fn build(records: &[TraceRecord], config: &AnalysisConfig) -> Ddg {
        Ddg::from_records(records, config)
    }

    #[test]
    fn figure1_graph_shape() {
        let ddg = build(&synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        assert_eq!(ddg.len(), 8);
        assert_eq!(ddg.height(), 4);
        assert_eq!(ddg.width(), 4);
        let (t, s, c) = ddg.edge_counts();
        // adds read 2 loads each (4) + r6 reads r4,r5 (2) + store reads r6
        // (1) = 7 true edges; no storage/control.
        assert_eq!((t, s, c), (7, 0, 0));
    }

    #[test]
    fn figure2_has_storage_edges_without_renaming() {
        let config = AnalysisConfig::dataflow_limit().with_renames(RenameSet::none());
        let ddg = build(&synthetic::figure2(), &config);
        assert_eq!(ddg.height(), 6);
        let (_, storage, _) = ddg.edge_counts();
        assert!(storage > 0, "register reuse must materialize storage edges");
    }

    #[test]
    fn builder_matches_livewell_on_random_traces() {
        for seed in 0..6u64 {
            let trace = synthetic::random_trace(1200, seed);
            for config in [
                AnalysisConfig::dataflow_limit(),
                AnalysisConfig::dataflow_limit().with_renames(RenameSet::none()),
                AnalysisConfig::dataflow_limit().with_renames(RenameSet::registers_only()),
                AnalysisConfig::dataflow_limit().with_window(WindowSize::bounded(16)),
                AnalysisConfig::dataflow_limit()
                    .with_syscall_policy(SyscallPolicy::Optimistic)
                    .with_window(WindowSize::bounded(64)),
            ] {
                let mut lw = LiveWell::new(config.clone());
                let mut builder = DdgBuilder::new(config.clone());
                for record in &trace {
                    let a = lw.process(record);
                    let b = builder.process(record).map(|id| {
                        // builder returns node id; compare levels instead
                        id
                    });
                    assert_eq!(a.is_some(), b.is_some());
                }
                let ddg = builder.finish();
                let report = lw.finish();
                assert_eq!(
                    ddg.height(),
                    report.critical_path_length(),
                    "seed {seed} config {config}"
                );
                assert_eq!(ddg.len() as u64, report.placed_ops());
                let ddg_profile = ddg.parallelism_profile();
                if let (Some(a), Some(b)) =
                    (ddg_profile.exact_counts(), report.profile().exact_counts())
                {
                    assert_eq!(a, b, "profiles must agree (seed {seed})");
                }
            }
        }
    }

    #[test]
    fn critical_path_is_a_real_chain() {
        let trace = synthetic::random_trace(400, 3);
        let ddg = build(&trace, &AnalysisConfig::dataflow_limit());
        let path = ddg.critical_path();
        assert!(!path.is_empty());
        // The path ends at the deepest node.
        assert_eq!(ddg.node(*path.last().unwrap()).level + 1, ddg.height());
        // Consecutive path nodes are connected by an edge.
        for pair in path.windows(2) {
            assert!(
                ddg.edges()
                    .iter()
                    .any(|e| e.from == pair[0] && e.to == pair[1]),
                "critical path must follow edges"
            );
        }
        // Levels strictly increase along the path.
        for pair in path.windows(2) {
            assert!(ddg.node(pair[0]).level < ddg.node(pair[1]).level);
        }
    }

    #[test]
    fn chain_critical_path_covers_every_node() {
        let ddg = build(&synthetic::chain(30), &AnalysisConfig::dataflow_limit());
        assert_eq!(ddg.critical_path().len(), 30);
    }

    #[test]
    fn lifetimes_of_figure1() {
        let ddg = build(&synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let lifetimes = ddg.value_lifetimes();
        // 8 values created (4 loads, 3 adds, 1 store).
        assert_eq!(lifetimes.count(), 8);
        // Loads live 1 level (created 0, used 1); r4/r5 live 1; r6 lives 1;
        // the stored S is never read (lifetime 0).
        assert_eq!(lifetimes.frequency(0), 1);
        assert_eq!(lifetimes.frequency(1), 7);
    }

    #[test]
    fn sharing_counts_consumers() {
        // One producer read by three consumers.
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::compute(1, OpClass::IntAlu, &[Loc::int(1)], Loc::int(2)),
            TraceRecord::compute(2, OpClass::IntAlu, &[Loc::int(1)], Loc::int(3)),
            TraceRecord::compute(3, OpClass::IntAlu, &[Loc::int(1)], Loc::int(4)),
        ];
        let ddg = build(&records, &AnalysisConfig::dataflow_limit());
        let sharing = ddg.sharing_degrees();
        assert_eq!(sharing.frequency(3), 1); // the producer
        assert_eq!(sharing.frequency(0), 3); // the three leaves
        assert_eq!(sharing.max(), Some(3));
    }

    #[test]
    fn storage_occupancy_peaks_in_the_middle() {
        let ddg = build(&synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let occupancy = ddg.storage_occupancy();
        assert_eq!(occupancy.len(), 4);
        // Level 0 creates 4 loaded values.
        assert_eq!(occupancy[0], 4);
        // Everything created is live somewhere; the profile is nonzero.
        assert!(occupancy.iter().all(|&v| v > 0));
    }

    #[test]
    fn control_edges_appear_after_syscall_firewall() {
        let records = vec![
            TraceRecord::compute(0, OpClass::IntAlu, &[], Loc::int(1)),
            TraceRecord::syscall(1, &[], None),
            TraceRecord::compute(2, OpClass::IntAlu, &[], Loc::int(2)),
        ];
        let ddg = build(&records, &AnalysisConfig::dataflow_limit());
        let (_, _, control) = ddg.edge_counts();
        assert!(control >= 1, "firewalled op must carry a control edge");
        // The control edge points from the firewall (anchored at the deepest
        // pre-firewall node) to the op placed after it.
        assert!(ddg
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Control && e.to == 2 && ddg.node(e.from).level == 0));
    }

    #[test]
    fn slack_is_zero_along_the_critical_path() {
        let trace = synthetic::random_trace(500, 31);
        let ddg = build(&trace, &AnalysisConfig::dataflow_limit());
        let slack = ddg.slack_distribution();
        assert_eq!(slack.count(), ddg.len() as u64);
        // Every critical-path node has zero slack.
        assert!(slack.frequency(0) >= ddg.critical_path().len() as u64);
        // Slack never exceeds the graph height.
        assert!(slack.max().unwrap() < ddg.height());
    }

    #[test]
    fn chain_has_no_slack_anywhere() {
        let ddg = build(&synthetic::chain(20), &AnalysisConfig::dataflow_limit());
        let slack = ddg.slack_distribution();
        assert_eq!(slack.frequency(0), 20);
        assert_eq!(slack.max(), Some(0));
    }

    #[test]
    fn independent_ops_have_full_slack_except_none_needed() {
        // All ops are at level 0 of a height-1 graph: slack 0 for all.
        let ddg = build(
            &synthetic::independent(10),
            &AnalysisConfig::dataflow_limit(),
        );
        assert_eq!(ddg.slack_distribution().max(), Some(0));
        // A chain plus one independent leaf: the leaf can slide the whole
        // height of the chain.
        let mut records = synthetic::chain(5);
        records.push(TraceRecord::compute(99, OpClass::IntAlu, &[], Loc::int(9)));
        let ddg = build(&records, &AnalysisConfig::dataflow_limit());
        assert_eq!(ddg.slack_distribution().max(), Some(4));
        assert_eq!(ddg.slack_distribution().frequency(4), 1);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let ddg = build(&synthetic::figure1(), &AnalysisConfig::dataflow_limit());
        let dot = ddg.to_dot();
        assert!(dot.starts_with("digraph"));
        for id in 0..ddg.len() {
            assert!(dot.contains(&format!("n{id} ")));
        }
        assert!(dot.contains("rank=same"));
    }

    #[test]
    fn empty_graph_analyses_are_well_defined() {
        let ddg = build(&[], &AnalysisConfig::dataflow_limit());
        assert!(ddg.is_empty());
        assert_eq!(ddg.height(), 0);
        assert_eq!(ddg.available_parallelism(), 0.0);
        assert!(ddg.critical_path().is_empty());
        assert!(ddg.storage_occupancy().is_empty());
        assert_eq!(ddg.value_lifetimes().count(), 0);
    }

    #[test]
    fn distribution_percentiles() {
        let mut d = Distribution::new();
        for v in 1..=100u64 {
            d.record(v);
        }
        assert_eq!(d.percentile(0.5), Some(50));
        assert_eq!(d.percentile(0.99), Some(99));
        assert_eq!(d.percentile(1.0), Some(100));
        assert_eq!(d.percentile(0.0), Some(1));
        assert_eq!(Distribution::new().percentile(0.5), None);
    }
}

//! Branch prediction models for control-dependency studies.
//!
//! The paper's base analyses assume perfect control flow ("perfect control
//! flow and memory disambiguation is assumed in the dataflow analysis") but
//! §3.2 describes the extension implemented here: "The firewall can also be
//! used to represent the effect of a mispredicted conditional branch,
//! resulting in all operations after the conditional branch being placed
//! into the DDG with a control dependency to the firewall."
//!
//! Under [`BranchPolicy::Predict`], every conditional branch whose recorded
//! outcome the configured predictor misses raises the placement floor to
//! the branch's *resolution level* (the level at which its source operands
//! are available): nothing fetched after a mispredicted branch can execute
//! before the branch resolves. This is exactly the mechanism separating
//! this paper's "perfect" numbers from the branch-predicted limits of Wall
//! (ASPLOS 1991) and Smith/Johnson/Horowitz, which the paper cites for
//! comparison.
//!
//! # Examples
//!
//! ```
//! use paragraph_core::branch::{Predictor, PredictorKind};
//!
//! let mut predictor = Predictor::new(PredictorKind::Bimodal { index_bits: 4 });
//! // A loop back-edge: taken, taken, taken, ... trains quickly.
//! let mut misses = 0;
//! for _ in 0..8 {
//!     if !predictor.predict_and_train(0x40, true, 0x10) {
//!         misses += 1;
//!     }
//! }
//! assert!(misses <= 2);
//! ```

use std::fmt;

/// How conditional branches constrain the DDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchPolicy {
    /// Perfect control flow: branches never constrain placement (the
    /// paper's setting for all of its tables and figures).
    #[default]
    Perfect,
    /// Model a predictor; each mispredicted branch firewalls the graph at
    /// the branch's resolution level. Branch records without a recorded
    /// outcome are treated as correctly predicted.
    Predict(PredictorKind),
    /// Every conditional branch firewalls the graph at its resolution
    /// level: the serial-fetch lower bound (no prediction at all).
    StallAlways,
}

impl fmt::Display for BranchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchPolicy::Perfect => f.write_str("perfect"),
            BranchPolicy::Predict(kind) => write!(f, "predict({kind})"),
            BranchPolicy::StallAlways => f.write_str("stall-always"),
        }
    }
}

/// The predictor families available to [`BranchPolicy::Predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Predict every branch taken.
    AlwaysTaken,
    /// Predict every branch not taken.
    NeverTaken,
    /// Static backward-taken/forward-not-taken (loop heuristic).
    Btfn,
    /// Two-bit saturating counters indexed by the low pc bits.
    Bimodal {
        /// log2 of the counter-table size.
        index_bits: u8,
    },
    /// Two-bit counters indexed by pc XOR a global history register.
    Gshare {
        /// log2 of the counter-table size; also the history length.
        index_bits: u8,
    },
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorKind::AlwaysTaken => f.write_str("always-taken"),
            PredictorKind::NeverTaken => f.write_str("never-taken"),
            PredictorKind::Btfn => f.write_str("btfn"),
            PredictorKind::Bimodal { index_bits } => write!(f, "bimodal-{index_bits}"),
            PredictorKind::Gshare { index_bits } => write!(f, "gshare-{index_bits}"),
        }
    }
}

/// A running branch predictor.
///
/// Deterministic, allocation-free after construction, and cheap enough to
/// sit on the analyzer's per-record path.
#[derive(Debug, Clone)]
pub struct Predictor {
    kind: PredictorKind,
    counters: Vec<u8>,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Predictor {
    /// Creates a predictor of the given kind with cleared state.
    ///
    /// # Panics
    ///
    /// Panics if a table-based kind asks for more than 28 index bits.
    pub fn new(kind: PredictorKind) -> Predictor {
        let table_bits = match kind {
            PredictorKind::Bimodal { index_bits } | PredictorKind::Gshare { index_bits } => {
                assert!(index_bits <= 28, "predictor table too large");
                index_bits
            }
            _ => 0,
        };
        Predictor {
            kind,
            // Counters start weakly not-taken (01 pattern = 1).
            counters: vec![1u8; 1usize << table_bits],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The predictor kind.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.counters.len() as u64 - 1;
        let idx = match self.kind {
            PredictorKind::Gshare { .. } => (pc ^ self.history) & mask,
            _ => pc & mask,
        };
        idx as usize
    }

    /// Predicts the branch at `pc` (with static `target`), trains on the
    /// actual outcome, and returns whether the prediction was **correct**.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.predictions += 1;
        let predicted = match self.kind {
            PredictorKind::AlwaysTaken => true,
            PredictorKind::NeverTaken => false,
            PredictorKind::Btfn => target <= pc,
            PredictorKind::Bimodal { .. } | PredictorKind::Gshare { .. } => {
                self.counters[self.index(pc)] >= 2
            }
        };
        // Train.
        match self.kind {
            PredictorKind::Bimodal { .. } | PredictorKind::Gshare { .. } => {
                let idx = self.index(pc);
                let counter = &mut self.counters[idx];
                if taken {
                    *counter = (*counter + 1).min(3);
                } else {
                    *counter = counter.saturating_sub(1);
                }
            }
            _ => {}
        }
        if matches!(self.kind, PredictorKind::Gshare { .. }) {
            self.history = (self.history << 1) | u64::from(taken);
        }
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Branches mispredicted so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Fraction of branches predicted correctly (1.0 when none seen).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Mutable state for checkpointing: `(counters, history, predictions,
    /// mispredictions)`. The kind comes from the analysis configuration.
    pub(crate) fn raw_state(&self) -> (&[u8], u64, u64, u64) {
        (
            &self.counters,
            self.history,
            self.predictions,
            self.mispredictions,
        )
    }

    /// Rebuilds a predictor from checkpointed state; `None` if the counter
    /// table does not match the kind's table size.
    pub(crate) fn from_raw_state(
        kind: PredictorKind,
        counters: Vec<u8>,
        history: u64,
        predictions: u64,
        mispredictions: u64,
    ) -> Option<Predictor> {
        let fresh = Predictor::new(kind);
        if counters.len() != fresh.counters.len() || counters.iter().any(|&c| c > 3) {
            return None;
        }
        Some(Predictor {
            kind,
            counters,
            history,
            predictions,
            mispredictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_and_never_taken_are_complementary() {
        let mut at = Predictor::new(PredictorKind::AlwaysTaken);
        let mut nt = Predictor::new(PredictorKind::NeverTaken);
        for (i, taken) in [true, false, true, true].into_iter().enumerate() {
            let a = at.predict_and_train(i as u64, taken, 0);
            let n = nt.predict_and_train(i as u64, taken, 0);
            assert_ne!(a, n);
        }
        assert_eq!(at.mispredictions() + nt.mispredictions(), 4);
    }

    #[test]
    fn btfn_uses_direction() {
        let mut p = Predictor::new(PredictorKind::Btfn);
        assert!(p.predict_and_train(100, true, 50)); // backward taken: correct
        assert!(p.predict_and_train(100, false, 150)); // forward not taken: correct
        assert!(!p.predict_and_train(100, false, 50)); // backward not taken: wrong
        assert!((p.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = Predictor::new(PredictorKind::Bimodal { index_bits: 6 });
        for _ in 0..50 {
            p.predict_and_train(8, true, 0);
        }
        // After warmup, it should track a fully biased branch perfectly.
        assert!(p.mispredictions() <= 2, "{} misses", p.mispredictions());
    }

    #[test]
    fn bimodal_counters_are_per_pc() {
        let mut p = Predictor::new(PredictorKind::Bimodal { index_bits: 6 });
        for _ in 0..10 {
            p.predict_and_train(1, true, 0);
            p.predict_and_train(2, false, 0);
        }
        // Both streams are learnable independently.
        assert!(p.predict_and_train(1, true, 0));
        assert!(p.predict_and_train(2, false, 0));
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        // T,N,T,N... defeats bimodal (counters oscillate around the
        // threshold) but gshare keys on history and locks on.
        let mut gshare = Predictor::new(PredictorKind::Gshare { index_bits: 8 });
        let mut bimodal = Predictor::new(PredictorKind::Bimodal { index_bits: 8 });
        for i in 0..400u64 {
            let taken = i % 2 == 0;
            gshare.predict_and_train(4, taken, 0);
            bimodal.predict_and_train(4, taken, 0);
        }
        assert!(
            gshare.accuracy() > 0.9,
            "gshare accuracy {}",
            gshare.accuracy()
        );
        assert!(gshare.accuracy() > bimodal.accuracy());
    }

    #[test]
    fn accuracy_of_fresh_predictor_is_one() {
        assert_eq!(Predictor::new(PredictorKind::Btfn).accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "predictor table too large")]
    fn oversized_table_panics() {
        Predictor::new(PredictorKind::Bimodal { index_bits: 40 });
    }
}

//! Periodic progress heartbeat for long analyses.
//!
//! [`ProgressReporter`] throttles heartbeats to a configurable wall-clock
//! interval and formats each one as a single whole line — safe for CI logs
//! and for interleaving with other stderr diagnostics (no carriage-return
//! redraw tricks). The caller ticks it from the analysis loop; the reporter
//! decides when a tick is due and what to print. Every heartbeat carries
//! throughput in both units (records/s and bytes/s); completion and ETA
//! come from the record total when the caller knows it, and fall back to
//! the trace size in bytes when only that is known (streamed input).

use std::time::{Duration, Instant};

/// Throttled formatter for analysis heartbeat lines.
#[derive(Debug)]
pub struct ProgressReporter {
    interval: Duration,
    started: Instant,
    last_emit: Instant,
    last_records: u64,
    total_records: Option<u64>,
    total_bytes: Option<u64>,
}

/// One rendered heartbeat, plus the raw numbers for event logging.
#[derive(Debug, Clone)]
pub struct ProgressTick {
    /// Human-readable heartbeat line (no trailing newline).
    pub line: String,
    /// Records processed so far.
    pub records: u64,
    /// Instantaneous records/sec since the previous heartbeat.
    pub records_per_sec: f64,
    /// Cumulative-average bytes/sec (0 when byte accounting is
    /// unavailable).
    pub bytes_per_sec: f64,
    /// Instantaneous MB/s since the previous heartbeat (0 when byte
    /// accounting is unavailable).
    pub mb_per_sec: f64,
    /// Seconds remaining at the current rate, when a total (records or
    /// bytes) is known.
    pub eta_secs: Option<f64>,
}

impl ProgressReporter {
    /// A reporter emitting at most one heartbeat per `interval`.
    /// `total_records` (when known) enables percent-done and ETA.
    pub fn new(interval: Duration, total_records: Option<u64>) -> ProgressReporter {
        let now = Instant::now();
        ProgressReporter {
            interval,
            started: now,
            last_emit: now,
            last_records: 0,
            total_records,
            total_bytes: None,
        }
    }

    /// Sets the trace size in bytes, enabling a byte-derived ETA and
    /// percent-done when the record total is unknown (streamed input).
    pub fn with_total_bytes(mut self, total_bytes: Option<u64>) -> ProgressReporter {
        self.total_bytes = total_bytes;
        self
    }

    /// Whether enough wall-clock time has passed for another heartbeat.
    pub fn is_due(&self) -> bool {
        self.last_emit.elapsed() >= self.interval
    }

    /// Produces a heartbeat if one is due; otherwise `None`. `records` and
    /// `bytes` are cumulative; `critical_path` is the current deepest level.
    pub fn tick(&mut self, records: u64, bytes: u64, critical_path: u64) -> Option<ProgressTick> {
        if !self.is_due() {
            return None;
        }
        Some(self.force_tick(records, bytes, critical_path))
    }

    /// Produces a heartbeat unconditionally (used for the final line).
    pub fn force_tick(&mut self, records: u64, bytes: u64, critical_path: u64) -> ProgressTick {
        let now = Instant::now();
        let window = now.duration_since(self.last_emit).as_secs_f64().max(1e-9);
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let delta = records.saturating_sub(self.last_records);
        let inst_rate = delta as f64 / window;
        let avg_rate = records as f64 / elapsed;
        let bytes_per_sec = if bytes > 0 {
            bytes as f64 / elapsed
        } else {
            0.0
        };
        // ETA from cumulative averages: smoother than the instantaneous
        // window and correct-on-average for resumed runs. Prefer the
        // record total; fall back to trace size when only bytes are known.
        let eta_secs = match (self.total_records, self.total_bytes) {
            (Some(total), _) => {
                let remaining = total.saturating_sub(records);
                (avg_rate > 0.0).then(|| remaining as f64 / avg_rate)
            }
            (None, Some(total)) => {
                let remaining = total.saturating_sub(bytes);
                (bytes_per_sec > 0.0).then(|| remaining as f64 / bytes_per_sec)
            }
            (None, None) => None,
        };
        let mut line = format!(
            "progress: {records} records ({:.2}M rec/s)",
            inst_rate / 1e6
        );
        let pct = match (self.total_records, self.total_bytes) {
            (Some(0), _) => Some(100.0),
            (Some(total), _) => Some(100.0 * records as f64 / total as f64),
            (None, Some(total)) if total > 0 => Some(100.0 * bytes as f64 / total as f64),
            _ => None,
        };
        if let Some(pct) = pct {
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" {pct:.1}%"));
        }
        if bytes_per_sec > 0.0 {
            let _ = std::fmt::Write::write_fmt(
                &mut line,
                format_args!(" {:.1} MB/s", bytes_per_sec / 1e6),
            );
        }
        let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" cp={critical_path}"));
        if let Some(eta) = eta_secs {
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" eta={}", fmt_eta(eta)));
        }
        self.last_emit = now;
        self.last_records = records;
        ProgressTick {
            line,
            records,
            records_per_sec: inst_rate,
            bytes_per_sec,
            mb_per_sec: bytes_per_sec / 1e6,
            eta_secs,
        }
    }
}

/// Formats seconds as `37s`, `4m12s`, or `2h05m`.
fn fmt_eta(secs: f64) -> String {
    let s = secs.max(0.0).round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_is_always_due() {
        let mut reporter = ProgressReporter::new(Duration::ZERO, Some(100));
        let tick = reporter.tick(50, 1000, 7).expect("due immediately");
        assert_eq!(tick.records, 50);
        assert!(tick.line.contains("50 records"));
        assert!(tick.line.contains("rec/s"));
        assert!(tick.line.contains("50.0%"));
        assert!(tick.line.contains("cp=7"));
        assert!(tick.eta_secs.is_some());
        assert!(tick.bytes_per_sec > 0.0);
    }

    #[test]
    fn long_interval_suppresses_ticks() {
        let mut reporter = ProgressReporter::new(Duration::from_secs(3600), None);
        assert!(reporter.tick(1, 0, 0).is_none());
        // force_tick bypasses the throttle.
        let tick = reporter.force_tick(2, 0, 3);
        assert_eq!(tick.records, 2);
        assert!(tick.eta_secs.is_none(), "no total => no ETA");
    }

    #[test]
    fn eta_formatting_covers_all_ranges() {
        assert_eq!(fmt_eta(5.4), "5s");
        assert_eq!(fmt_eta(72.0), "1m12s");
        assert_eq!(fmt_eta(7_500.0), "2h05m");
    }

    #[test]
    fn zero_total_reports_complete() {
        let mut reporter = ProgressReporter::new(Duration::ZERO, Some(0));
        let tick = reporter.force_tick(0, 0, 0);
        assert!(tick.line.contains("100.0%"));
    }

    #[test]
    fn trace_size_drives_eta_when_record_total_is_unknown() {
        let mut reporter =
            ProgressReporter::new(Duration::ZERO, None).with_total_bytes(Some(1_000_000));
        let tick = reporter.force_tick(10, 250_000, 0);
        assert!(
            tick.eta_secs.is_some(),
            "byte total must provide a fallback ETA"
        );
        assert!(
            tick.line.contains("25.0%"),
            "percent from bytes: {}",
            tick.line
        );
        // The record total, when present, wins over the byte total.
        let mut both =
            ProgressReporter::new(Duration::ZERO, Some(100)).with_total_bytes(Some(1_000_000));
        let tick = both.force_tick(50, 250_000, 0);
        assert!(tick.line.contains("50.0%"), "{}", tick.line);
    }
}

//! Periodic progress heartbeat for long analyses.
//!
//! [`ProgressReporter`] throttles heartbeats to a configurable wall-clock
//! interval and formats each one as a single whole line — safe for CI logs
//! and for interleaving with other stderr diagnostics (no carriage-return
//! redraw tricks). The caller ticks it from the analysis loop; the reporter
//! decides when a tick is due and what to print. Every heartbeat carries
//! throughput in both units (records/s and bytes/s); completion and ETA
//! come from the record total when the caller knows it, and fall back to
//! the trace size in bytes when only that is known (streamed input).

use std::time::{Duration, Instant};

/// Throttled formatter for analysis heartbeat lines.
#[derive(Debug)]
pub struct ProgressReporter {
    interval: Duration,
    started: Instant,
    last_emit: Instant,
    last_records: u64,
    last_bytes: u64,
    /// Records/bytes already analyzed by an earlier process when this one
    /// resumed from a checkpoint. Excluded from every rate (this process
    /// did not do that work), included in percent-done (it is done).
    resumed_records: u64,
    resumed_bytes: u64,
    total_records: Option<u64>,
    total_bytes: Option<u64>,
}

/// One rendered heartbeat, plus the raw numbers for event logging.
#[derive(Debug, Clone)]
pub struct ProgressTick {
    /// Human-readable heartbeat line (no trailing newline).
    pub line: String,
    /// Records processed so far.
    pub records: u64,
    /// Instantaneous records/sec since the previous heartbeat.
    pub records_per_sec: f64,
    /// Cumulative-average bytes/sec since this process started (resumed
    /// work excluded; 0 when byte accounting is unavailable). Feeds the
    /// byte-derived ETA.
    pub bytes_per_sec: f64,
    /// Instantaneous MB/s since the previous heartbeat (0 when byte
    /// accounting is unavailable).
    pub mb_per_sec: f64,
    /// Seconds remaining at the current rate, when a total (records or
    /// bytes) is known.
    pub eta_secs: Option<f64>,
}

impl ProgressReporter {
    /// A reporter emitting at most one heartbeat per `interval`.
    /// `total_records` (when known) enables percent-done and ETA.
    pub fn new(interval: Duration, total_records: Option<u64>) -> ProgressReporter {
        let now = Instant::now();
        ProgressReporter {
            interval,
            started: now,
            last_emit: now,
            last_records: 0,
            last_bytes: 0,
            resumed_records: 0,
            resumed_bytes: 0,
            total_records,
            total_bytes: None,
        }
    }

    /// Sets the trace size in bytes, enabling a byte-derived ETA and
    /// percent-done when the record total is unknown (streamed input).
    pub fn with_total_bytes(mut self, total_bytes: Option<u64>) -> ProgressReporter {
        self.total_bytes = total_bytes;
        self
    }

    /// Marks `records`/`bytes` as already analyzed by an earlier process
    /// (checkpoint resume). Rates and the ETA then measure only the work
    /// this process performs — a resumed run otherwise reports an inflated
    /// average rate (checkpointed records divided by near-zero elapsed
    /// time) and a correspondingly underestimated ETA. Percent-done still
    /// counts the resumed work: it is genuinely complete.
    pub fn with_resumed(mut self, records: u64, bytes: u64) -> ProgressReporter {
        self.last_records = records;
        self.last_bytes = bytes;
        self.resumed_records = records;
        self.resumed_bytes = bytes;
        self
    }

    /// Whether enough wall-clock time has passed for another heartbeat.
    pub fn is_due(&self) -> bool {
        self.last_emit.elapsed() >= self.interval
    }

    /// Produces a heartbeat if one is due; otherwise `None`. `records` and
    /// `bytes` are cumulative; `critical_path` is the current deepest level.
    pub fn tick(&mut self, records: u64, bytes: u64, critical_path: u64) -> Option<ProgressTick> {
        if !self.is_due() {
            return None;
        }
        Some(self.force_tick(records, bytes, critical_path))
    }

    /// Produces a heartbeat unconditionally (used for the final line).
    pub fn force_tick(&mut self, records: u64, bytes: u64, critical_path: u64) -> ProgressTick {
        let now = Instant::now();
        let window = now.duration_since(self.last_emit).as_secs_f64().max(1e-9);
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let tick = self.compute_tick(records, bytes, critical_path, window, elapsed);
        self.last_emit = now;
        self.last_records = records;
        self.last_bytes = bytes;
        tick
    }

    /// The pure tick math, with wall-clock measurements passed in so tests
    /// can pin them. `window` is seconds since the previous heartbeat,
    /// `elapsed` seconds since this process started; both must be positive.
    fn compute_tick(
        &self,
        records: u64,
        bytes: u64,
        critical_path: u64,
        window: f64,
        elapsed: f64,
    ) -> ProgressTick {
        let inst_rate = records.saturating_sub(self.last_records) as f64 / window;
        // Instantaneous throughput from the byte delta over this heartbeat
        // window — the cumulative average belongs to the ETA below, not to
        // the "MB/s right now" slot on the line.
        let mb_per_sec = if bytes > 0 {
            bytes.saturating_sub(self.last_bytes) as f64 / window / 1e6
        } else {
            0.0
        };
        // Averages cover only this process's work: records/bytes restored
        // from a checkpoint were analyzed by an earlier process, and
        // counting them against this process's elapsed time would inflate
        // the rate and shrink the ETA.
        let avg_rate = records.saturating_sub(self.resumed_records) as f64 / elapsed;
        let bytes_per_sec = if bytes > 0 {
            bytes.saturating_sub(self.resumed_bytes) as f64 / elapsed
        } else {
            0.0
        };
        // ETA from cumulative averages: smoother than the instantaneous
        // window. Prefer the record total; fall back to trace size when
        // only bytes are known.
        let eta_secs = match (self.total_records, self.total_bytes) {
            (Some(total), _) => {
                let remaining = total.saturating_sub(records);
                (avg_rate > 0.0).then(|| remaining as f64 / avg_rate)
            }
            (None, Some(total)) => {
                let remaining = total.saturating_sub(bytes);
                (bytes_per_sec > 0.0).then(|| remaining as f64 / bytes_per_sec)
            }
            (None, None) => None,
        };
        let mut line = format!(
            "progress: {records} records ({:.2}M rec/s)",
            inst_rate / 1e6
        );
        let pct = match (self.total_records, self.total_bytes) {
            (Some(0), _) => Some(100.0),
            (Some(total), _) => Some(100.0 * records as f64 / total as f64),
            (None, Some(total)) if total > 0 => Some(100.0 * bytes as f64 / total as f64),
            _ => None,
        };
        if let Some(pct) = pct {
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" {pct:.1}%"));
        }
        if bytes > 0 {
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" {mb_per_sec:.1} MB/s"));
        }
        let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" cp={critical_path}"));
        if let Some(eta) = eta_secs {
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(" eta={}", fmt_eta(eta)));
        }
        ProgressTick {
            line,
            records,
            records_per_sec: inst_rate,
            bytes_per_sec,
            mb_per_sec,
            eta_secs,
        }
    }
}

/// Formats seconds as `37s`, `4m12s`, or `2h05m`.
fn fmt_eta(secs: f64) -> String {
    let s = secs.max(0.0).round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_is_always_due() {
        let mut reporter = ProgressReporter::new(Duration::ZERO, Some(100));
        let tick = reporter.tick(50, 1000, 7).expect("due immediately");
        assert_eq!(tick.records, 50);
        assert!(tick.line.contains("50 records"));
        assert!(tick.line.contains("rec/s"));
        assert!(tick.line.contains("50.0%"));
        assert!(tick.line.contains("cp=7"));
        assert!(tick.eta_secs.is_some());
        assert!(tick.bytes_per_sec > 0.0);
    }

    #[test]
    fn long_interval_suppresses_ticks() {
        let mut reporter = ProgressReporter::new(Duration::from_secs(3600), None);
        assert!(reporter.tick(1, 0, 0).is_none());
        // force_tick bypasses the throttle.
        let tick = reporter.force_tick(2, 0, 3);
        assert_eq!(tick.records, 2);
        assert!(tick.eta_secs.is_none(), "no total => no ETA");
    }

    #[test]
    fn eta_formatting_covers_all_ranges() {
        assert_eq!(fmt_eta(5.4), "5s");
        assert_eq!(fmt_eta(72.0), "1m12s");
        assert_eq!(fmt_eta(7_500.0), "2h05m");
    }

    #[test]
    fn zero_total_reports_complete() {
        let mut reporter = ProgressReporter::new(Duration::ZERO, Some(0));
        let tick = reporter.force_tick(0, 0, 0);
        assert!(tick.line.contains("100.0%"));
    }

    #[test]
    fn trace_size_drives_eta_when_record_total_is_unknown() {
        let mut reporter =
            ProgressReporter::new(Duration::ZERO, None).with_total_bytes(Some(1_000_000));
        let tick = reporter.force_tick(10, 250_000, 0);
        assert!(
            tick.eta_secs.is_some(),
            "byte total must provide a fallback ETA"
        );
        assert!(
            tick.line.contains("25.0%"),
            "percent from bytes: {}",
            tick.line
        );
        // The record total, when present, wins over the byte total.
        let mut both =
            ProgressReporter::new(Duration::ZERO, Some(100)).with_total_bytes(Some(1_000_000));
        let tick = both.force_tick(50, 250_000, 0);
        assert!(tick.line.contains("50.0%"), "{}", tick.line);
    }

    /// The MB/s slot must report the byte delta over the heartbeat window,
    /// not the cumulative average since start (the historical bug: a run
    /// that slows down kept printing its fast long-run average).
    #[test]
    fn mb_per_sec_is_instantaneous_not_cumulative() {
        let mut reporter =
            ProgressReporter::new(Duration::ZERO, Some(1_000)).with_total_bytes(Some(10_000_000));
        reporter.force_tick(100, 4_000_000, 0);
        // Pinned clocks: 500 KB arrived in the last 1 s window, while the
        // cumulative average over 10 s is 450 KB/s.
        let tick = reporter.compute_tick(200, 4_500_000, 0, 1.0, 10.0);
        assert_eq!(tick.mb_per_sec, 0.5, "instantaneous: 500 KB over 1 s");
        assert_eq!(tick.bytes_per_sec, 450_000.0, "cumulative feeds the ETA");
        assert!(tick.line.contains("0.5 MB/s"), "{}", tick.line);

        // A fully stalled window shows 0 MB/s even though the cumulative
        // average is still positive.
        reporter.force_tick(200, 4_500_000, 0);
        let stalled = reporter.compute_tick(200, 4_500_000, 0, 1.0, 20.0);
        assert_eq!(stalled.mb_per_sec, 0.0);
        assert!(stalled.bytes_per_sec > 0.0);
    }

    /// A resumed run must compute its average rate (and hence the ETA) from
    /// post-resume deltas only. Counting checkpointed records against this
    /// process's elapsed time inflated the rate and underestimated the ETA.
    #[test]
    fn resumed_run_eta_uses_post_resume_rate() {
        let reporter =
            ProgressReporter::new(Duration::ZERO, Some(1_000)).with_resumed(500, 2_000_000);
        // 100 records in 10 s => 10 rec/s; 400 remaining => 40 s. The
        // unseeded computation would claim 600 / 10 = 60 rec/s => 6.7 s.
        let tick = reporter.compute_tick(600, 2_400_000, 0, 10.0, 10.0);
        assert_eq!(tick.eta_secs, Some(40.0));
        assert_eq!(
            tick.bytes_per_sec, 40_000.0,
            "bytes average excludes resumed bytes"
        );
        // Percent-done still counts the resumed work.
        assert!(tick.line.contains("60.0%"), "{}", tick.line);
        // The instantaneous rate starts from the resume point, not zero.
        assert_eq!(tick.records_per_sec, 10.0);
    }
}

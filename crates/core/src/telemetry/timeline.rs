//! The flight recorder: per-thread span timelines with bounded memory.
//!
//! Aggregate counters and span totals (the [`Registry`](super::Registry))
//! say *how much* time each stage took; they cannot say *when* — which
//! sweep worker was idle while another decoded, whether checkpoint saves
//! stall the analyze loop, where a retry burned its backoff. The timeline
//! answers those questions: a low-overhead, per-thread **ring buffer** of
//! timestamped events that exports as Chrome trace-event JSON, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero effect on results.** Recording never touches stdout or any
//!    report artifact; a run with the recorder enabled is byte-identical
//!    on stdout to a plain run (asserted end to end by the CLI tests).
//! 2. **Bounded memory.** Each thread lane is a ring of at most
//!    [`Timeline::set_lane_capacity`] events; when full, the oldest events are
//!    overwritten and counted in [`LaneSnapshot::dropped`] — a timeline
//!    can run for hours without growing.
//! 3. **Cheap when off, compiled out when absent.** [`timeline_active`]
//!    is two relaxed atomic loads behind the same `telemetry` cargo
//!    feature as the metric macros; with the feature off it is a constant
//!    `None` and every recording site is dead code.
//! 4. **Batch-granular.** Events are recorded at batch/stage boundaries
//!    (a decoded block, an analyzed slice, a sweep cell), never per trace
//!    record — the per-record hot path stays branch-free.
//!
//! Each recording thread owns its lane: pushes take the lane's own mutex,
//! which is uncontended except against the final export. Spans are
//! recorded as single *complete* events at close (start + duration), so a
//! ring overwrite can never orphan half a span.
//!
//! # Examples
//!
//! ```
//! use paragraph_core::telemetry::timeline::Timeline;
//!
//! let timeline = Timeline::new();
//! timeline.enable();
//! {
//!     let mut span = timeline.span("decode");
//!     span.arg("records", 4096);
//! }
//! timeline.instant("checkpoint", None);
//! let mut json = Vec::new();
//! timeline.export_chrome_trace(&mut json).unwrap();
//! let text = String::from_utf8(json).unwrap();
//! assert!(text.contains("\"traceEvents\""));
//! assert!(text.contains("\"name\":\"decode\""));
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-lane ring capacity, in events. At batch granularity (one
/// event per 64Ki-record slice or per sweep cell) this holds hours of
/// activity in a few megabytes per lane.
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// What one timeline event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span: the event's timestamp is the span start and
    /// `dur_ns` its length (Chrome phase `X`).
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (Chrome phase `i`, thread scope).
    Instant,
    /// The origin of a flow arrow (Chrome phase `s`); `id` ties it to the
    /// matching [`EventKind::FlowFinish`].
    FlowStart {
        /// Flow identity, unique per arrow.
        id: u64,
    },
    /// The target of a flow arrow (Chrome phase `f`).
    FlowFinish {
        /// Flow identity, matching the originating [`EventKind::FlowStart`].
        id: u64,
    },
    /// A sampled counter value (Chrome phase `C`) — rendered as a
    /// counter-over-time track in Perfetto.
    Counter {
        /// The sampled value.
        value: u64,
    },
}

/// One recorded event. `name` is the static category (the profile table
/// aggregates by it); `label` optionally specializes the rendered slice
/// name (e.g. the sweep cell `xlisp@w64` under category `sweep.cell`).
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Nanoseconds since the timeline was created (span start time for
    /// complete events).
    pub ts_ns: u64,
    /// Static category name.
    pub name: &'static str,
    /// Optional dynamic label; the exported slice name becomes the label
    /// with `name` kept as the category.
    pub label: Option<Box<str>>,
    /// What the event records.
    pub kind: EventKind,
    /// Small scalar payload, exported as Chrome `args`.
    pub args: Vec<(&'static str, u64)>,
}

/// Bounded event storage of one lane: a Vec that grows to `capacity` and
/// then wraps, overwriting the oldest event.
#[derive(Debug)]
struct Ring {
    events: Vec<TimelineEvent>,
    /// Next overwrite position once `events.len() == capacity`.
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
            capacity: capacity.max(1),
        }
    }

    fn push(&mut self, event: TimelineEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Events in chronological order (unwrapping the ring).
    fn drain_ordered(&self) -> Vec<TimelineEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// One thread's recording lane.
#[derive(Debug)]
pub struct Lane {
    tid: u32,
    name: Mutex<String>,
    ring: Mutex<Ring>,
}

impl Lane {
    fn lock_ring(&self) -> MutexGuard<'_, Ring> {
        // A poisoned lane must never take the analysis down.
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Frozen contents of one lane, for export and inspection.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Lane id (the exported Chrome `tid`), assigned in registration
    /// order starting at 0.
    pub tid: u32,
    /// Lane display name (thread name, or `worker-N` when set explicitly).
    pub name: String,
    /// Events overwritten by ring wrap-around.
    pub dropped: u64,
    /// Surviving events, chronological.
    pub events: Vec<TimelineEvent>,
}

/// Monotonic source of timeline identities, so thread-local lane caches
/// can tell timelines apart (tests construct private instances).
static NEXT_TIMELINE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's lanes, one per timeline it has recorded into.
    static THREAD_LANES: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

/// A per-thread, ring-buffered event timeline.
///
/// One process-wide instance ([`timeline`]) backs the CLI and the sweep
/// scheduler; tests construct private instances. All operations are
/// `&self` and the timeline is `Sync`; each thread records into its own
/// lane, created on first use.
pub struct Timeline {
    id: u64,
    start: Instant,
    enabled: AtomicBool,
    capacity: AtomicUsize,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Timeline {
    fn default() -> Timeline {
        Timeline::new()
    }
}

impl Timeline {
    /// A fresh, disabled timeline with the default lane capacity.
    pub fn new() -> Timeline {
        Timeline {
            id: NEXT_TIMELINE_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_LANE_CAPACITY),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (the fast-path check).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Bounds every lane created *after* this call to `capacity` events
    /// (existing lanes keep their ring). Zero is clamped to one.
    pub fn set_lane_capacity(&self, capacity: usize) {
        self.capacity.store(capacity.max(1), Ordering::Relaxed);
    }

    /// Nanoseconds since the timeline was created (the event timebase).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn lock_lanes(&self) -> MutexGuard<'_, Vec<Arc<Lane>>> {
        self.lanes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// This thread's lane in this timeline, registering one on first use.
    fn lane(&self) -> Arc<Lane> {
        THREAD_LANES.with(|lanes| {
            let mut lanes = lanes.borrow_mut();
            if let Some((_, lane)) = lanes.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(lane);
            }
            let lane = {
                let mut registered = self.lock_lanes();
                let tid = u32::try_from(registered.len()).unwrap_or(u32::MAX);
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{tid}"));
                let lane = Arc::new(Lane {
                    tid,
                    name: Mutex::new(name),
                    ring: Mutex::new(Ring::new(self.capacity.load(Ordering::Relaxed))),
                });
                registered.push(Arc::clone(&lane));
                lane
            };
            lanes.push((self.id, Arc::clone(&lane)));
            lane
        })
    }

    /// Names the calling thread's lane (e.g. `worker-3`); the name shows
    /// as the Perfetto track title.
    pub fn set_thread_name(&self, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let lane = self.lane();
        *lane.name.lock().unwrap_or_else(PoisonError::into_inner) = name.to_owned();
    }

    fn push(&self, event: TimelineEvent) {
        self.lane().lock_ring().push(event);
    }

    /// Opens a span on the calling thread's lane; the guard records one
    /// complete event on drop. Inert when the timeline is disabled.
    pub fn span(&self, name: &'static str) -> TimelineSpan<'_> {
        self.span_labeled(name, None)
    }

    /// [`span`](Timeline::span) with a dynamic label — the exported slice
    /// name (the static `name` stays as the aggregation category).
    pub fn span_labeled(&self, name: &'static str, label: Option<&str>) -> TimelineSpan<'_> {
        TimelineSpan {
            timeline: self.is_enabled().then_some(self),
            name,
            label: label.map(Box::from),
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Records a point-in-time marker.
    pub fn instant(&self, name: &'static str, label: Option<&str>) {
        self.instant_with_args(name, label, &[]);
    }

    /// [`instant`](Timeline::instant) with scalar args.
    pub fn instant_with_args(
        &self,
        name: &'static str,
        label: Option<&str>,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TimelineEvent {
            ts_ns: self.elapsed_ns(),
            name,
            label: label.map(Box::from),
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Records the origin of flow arrow `id` (e.g. a failed attempt that
    /// will be retried elsewhere).
    pub fn flow_start(&self, name: &'static str, id: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(TimelineEvent {
            ts_ns: self.elapsed_ns(),
            name,
            label: None,
            kind: EventKind::FlowStart { id },
            args: Vec::new(),
        });
    }

    /// Records the target of flow arrow `id`.
    pub fn flow_finish(&self, name: &'static str, id: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(TimelineEvent {
            ts_ns: self.elapsed_ns(),
            name,
            label: None,
            kind: EventKind::FlowFinish { id },
            args: Vec::new(),
        });
    }

    /// Samples a counter value — consecutive samples of the same `name`
    /// render as a counter-over-time track.
    pub fn counter(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(TimelineEvent {
            ts_ns: self.elapsed_ns(),
            name,
            label: None,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// A point-in-time copy of every lane, in lane-id order.
    pub fn snapshot(&self) -> Vec<LaneSnapshot> {
        let lanes = self.lock_lanes();
        lanes
            .iter()
            .map(|lane| {
                let ring = lane.lock_ring();
                LaneSnapshot {
                    tid: lane.tid,
                    name: lane
                        .name
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone(),
                    dropped: ring.dropped,
                    events: ring.drain_ordered(),
                }
            })
            .collect()
    }

    /// Writes the timeline as Chrome trace-event JSON (object form, with
    /// a `traceEvents` array) — loadable in Perfetto or `chrome://tracing`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn export_chrome_trace<W: Write>(&self, mut out: W) -> std::io::Result<()> {
        let lanes = self.snapshot();
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
        let mut first = true;
        let mut emit = |out: &mut W, line: &str| -> std::io::Result<()> {
            if first {
                first = false;
            } else {
                out.write_all(b",\n")?;
            }
            out.write_all(line.as_bytes())
        };
        emit(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"paragraph\"}}",
        )?;
        for lane in &lanes {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    lane.tid,
                    json_escape(&lane.name),
                ),
            )?;
            if lane.dropped > 0 {
                emit(
                    &mut out,
                    &format!(
                        "{{\"name\":\"timeline.dropped\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":0.000,\"pid\":1,\"tid\":{},\
                         \"args\":{{\"dropped\":{}}}}}",
                        lane.tid, lane.dropped,
                    ),
                )?;
            }
        }
        for lane in &lanes {
            for event in &lane.events {
                emit(&mut out, &render_event(lane.tid, event))?;
            }
        }
        out.write_all(b"\n]}\n")
    }
}

/// Microseconds with fixed 3-decimal nanosecond precision — integer math,
/// so the rendering is deterministic across platforms.
fn fmt_ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a single-line Chrome trace-event object.
fn render_event(tid: u32, event: &TimelineEvent) -> String {
    let display_name = match &event.label {
        Some(label) => json_escape(label),
        None => json_escape(event.name),
    };
    let mut line = format!(
        "{{\"name\":\"{display_name}\",\"cat\":\"{}\",",
        json_escape(event.name)
    );
    match event.kind {
        EventKind::Complete { dur_ns } => {
            line.push_str(&format!(
                "\"ph\":\"X\",\"ts\":{},\"dur\":{},",
                fmt_ts_us(event.ts_ns),
                fmt_ts_us(dur_ns),
            ));
        }
        EventKind::Instant => {
            line.push_str(&format!(
                "\"ph\":\"i\",\"s\":\"t\",\"ts\":{},",
                fmt_ts_us(event.ts_ns)
            ));
        }
        EventKind::FlowStart { id } => {
            line.push_str(&format!(
                "\"ph\":\"s\",\"id\":{id},\"ts\":{},",
                fmt_ts_us(event.ts_ns)
            ));
        }
        EventKind::FlowFinish { id } => {
            line.push_str(&format!(
                "\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{},",
                fmt_ts_us(event.ts_ns)
            ));
        }
        EventKind::Counter { value } => {
            line.push_str(&format!(
                "\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"value\":{value}}}}}",
                fmt_ts_us(event.ts_ns)
            ));
            return line;
        }
    }
    line.push_str(&format!("\"pid\":1,\"tid\":{tid},\"args\":{{"));
    for (i, (key, value)) in event.args.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{value}", json_escape(key)));
    }
    line.push_str("}}");
    line
}

/// RAII guard for one timeline span; records a complete event on drop.
#[derive(Debug)]
pub struct TimelineSpan<'a> {
    timeline: Option<&'a Timeline>,
    name: &'static str,
    label: Option<Box<str>>,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

impl TimelineSpan<'_> {
    /// Attaches a scalar arg to the span's completion event.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.timeline.is_some() {
            self.args.push((key, value));
        }
    }

    /// Whether this guard will record anything.
    pub fn is_active(&self) -> bool {
        self.timeline.is_some()
    }
}

impl Drop for TimelineSpan<'_> {
    fn drop(&mut self) {
        let Some(timeline) = self.timeline else {
            return;
        };
        let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ts_ns = u64::try_from(
            self.start
                .saturating_duration_since(timeline.start)
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        timeline.push(TimelineEvent {
            ts_ns,
            name: self.name,
            label: self.label.take(),
            kind: EventKind::Complete { dur_ns },
            args: std::mem::take(&mut self.args),
        });
    }
}

static GLOBAL_TIMELINE: OnceLock<Timeline> = OnceLock::new();

/// The process-wide timeline backing the CLI and the sweep scheduler.
/// Created disabled on first use; [`Timeline::enable`] starts recording.
pub fn timeline() -> &'static Timeline {
    GLOBAL_TIMELINE.get_or_init(Timeline::new)
}

/// The global timeline, only if it exists *and* is enabled — the
/// recording fast path (two relaxed loads). A constant `None` when the
/// `telemetry` feature is off, which dead-code-eliminates every site.
#[inline]
pub fn timeline_active() -> Option<&'static Timeline> {
    #[cfg(feature = "telemetry")]
    {
        let timeline = GLOBAL_TIMELINE.get()?;
        timeline.is_enabled().then_some(timeline)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        None
    }
}

/// Opens a span on the global timeline (inert when recording is off).
#[inline]
pub fn timeline_span(name: &'static str) -> TimelineSpan<'static> {
    match timeline_active() {
        Some(timeline) => timeline.span(name),
        None => TimelineSpan {
            timeline: None,
            name,
            label: None,
            start: Instant::now(),
            args: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_records_nothing() {
        let timeline = Timeline::new();
        {
            let span = timeline.span("nothing");
            assert!(!span.is_active());
        }
        timeline.instant("also-nothing", None);
        timeline.counter("nope", 1);
        assert!(timeline.snapshot().is_empty(), "no lane should register");
    }

    #[test]
    fn spans_record_complete_events_with_args() {
        let timeline = Timeline::new();
        timeline.enable();
        {
            let mut span = timeline.span_labeled("sweep.cell", Some("xlisp@w64"));
            span.arg("records", 17);
        }
        let lanes = timeline.snapshot();
        assert_eq!(lanes.len(), 1);
        let event = &lanes[0].events[0];
        assert_eq!(event.name, "sweep.cell");
        assert_eq!(event.label.as_deref(), Some("xlisp@w64"));
        assert!(matches!(event.kind, EventKind::Complete { .. }));
        assert_eq!(event.args, vec![("records", 17)]);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let timeline = Timeline::new();
        timeline.enable();
        timeline.set_lane_capacity(4);
        for i in 0..10 {
            timeline.instant_with_args("tick", None, &[("i", i)]);
        }
        let lanes = timeline.snapshot();
        assert_eq!(lanes[0].events.len(), 4);
        assert_eq!(lanes[0].dropped, 6);
        // The survivors are the newest four, in chronological order.
        let seen: Vec<u64> = lanes[0].events.iter().map(|e| e.args[0].1).collect();
        assert_eq!(seen, vec![6, 7, 8, 9]);
    }

    #[test]
    fn each_thread_gets_its_own_lane() {
        let timeline = Timeline::new();
        timeline.enable();
        timeline.instant("main-event", None);
        std::thread::scope(|scope| {
            for worker in 0..3u64 {
                let timeline = &timeline;
                scope.spawn(move || {
                    timeline.set_thread_name(&format!("worker-{worker}"));
                    timeline.instant_with_args("worker-event", None, &[("worker", worker)]);
                });
            }
        });
        let lanes = timeline.snapshot();
        assert_eq!(lanes.len(), 4, "main + three workers");
        let tids: Vec<u32> = lanes.iter().map(|l| l.tid).collect();
        assert_eq!(tids, vec![0, 1, 2, 3]);
        let worker_lanes: Vec<&LaneSnapshot> = lanes
            .iter()
            .filter(|l| l.name.starts_with("worker-"))
            .collect();
        assert_eq!(worker_lanes.len(), 3);
        for lane in worker_lanes {
            assert_eq!(lane.events.len(), 1);
        }
    }

    #[test]
    fn export_is_valid_chrome_trace_json() {
        let timeline = Timeline::new();
        timeline.enable();
        {
            let mut span = timeline.span("analyze");
            span.arg("records", 100);
            let _nested = timeline.span_labeled("sweep.cell", Some("a\"b"));
        }
        timeline.instant("checkpoint", None);
        timeline.flow_start("retry", 7);
        timeline.flow_finish("retry", 7);
        timeline.counter("arena.hits", 3);
        let mut out = Vec::new();
        timeline.export_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let events = crate::telemetry::tracefmt::parse_chrome_trace(&text)
            .expect("export must parse as Chrome trace-event JSON");
        // 1 process_name + 1 thread_name + 6 recorded events.
        assert_eq!(events.len(), 8);
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"s\""));
        assert!(text.contains("\"ph\":\"f\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("a\\\"b"), "labels are JSON-escaped");
    }

    #[test]
    fn timestamps_render_as_fixed_point_microseconds() {
        assert_eq!(fmt_ts_us(0), "0.000");
        assert_eq!(fmt_ts_us(999), "0.999");
        assert_eq!(fmt_ts_us(1_000), "1.000");
        assert_eq!(fmt_ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn global_timeline_is_inert_until_enabled() {
        timeline().disable();
        assert!(timeline_active().is_none());
        let span = timeline_span("inert");
        assert!(!span.is_active());
    }

    #[test]
    fn dropped_events_surface_in_the_export() {
        let timeline = Timeline::new();
        timeline.enable();
        timeline.set_lane_capacity(2);
        for _ in 0..5 {
            timeline.instant("tick", None);
        }
        let mut out = Vec::new();
        timeline.export_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("timeline.dropped"));
        assert!(text.contains("\"dropped\":3"));
    }
}
